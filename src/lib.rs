//! # JEM-Mapper suite
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! *"An Efficient Parallel Sketch-based Algorithm for Mapping Long Reads to
//! Contigs"* (Rahman, Bhowmik, Kalyanaraman — IPDPSW 2023).
//!
//! ## Quickstart
//!
//! ```
//! use jem::prelude::*;
//!
//! // Simulate a tiny genome, contigs, and HiFi long reads.
//! let genome = Genome::random(50_000, 0.5, 1);
//! let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 2);
//! let reads = simulate_hifi(&genome, &HifiProfile { coverage: 3.0, ..Default::default() }, 3);
//!
//! // Map long-read end segments to contigs with the JEM sketch.
//! let config = MapperConfig { ell: 500, ..MapperConfig::default() };
//! let mapper = JemMapper::build(&contig_records(&contigs), &config);
//! let mappings = mapper.map_reads(&read_records(&reads));
//! assert!(!mappings.is_empty());
//! ```

pub use jem_baseline as baseline;
pub use jem_core as core;
pub use jem_dbg as dbg;
pub use jem_eval as eval;
pub use jem_index as index;
pub use jem_psim as psim;
pub use jem_seq as seq;
pub use jem_serve as serve;
pub use jem_sim as sim;
pub use jem_sketch as sketch;

/// Convenient single import for examples and downstream users.
pub mod prelude {
    pub use jem_core::{JemMapper, MapperConfig, Mapping};
    pub use jem_seq::{FastaReader, FastaWriter, SeqRecord};
    pub use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };
    pub use jem_sketch::{JemParams, MinimizerParams};
}
