#!/usr/bin/env python3
"""Gate sketch-kernel throughput against the committed baseline.

Compares the ``minimizers``, ``select``, and ``map`` stage throughput
(bases/sec) of a fresh
``jem bench sketch`` run against ``results/BENCH_sketch.baseline.json`` and
fails when any gated stage regresses by more than the allowed fraction
(default 15%). Improvements never fail the gate, but a large one prints a
reminder to refresh the baseline so the gate keeps teeth.

The baseline tracks the CI runner class. To refresh it (new runner
hardware, or an accepted kernel change), run on CI-class hardware:

    cargo build --release -p jem-cli
    ./target/release/jem bench sketch --genome-len 200000 --coverage 2 \
        --iters 2 --out results/BENCH_sketch.baseline.json

and commit the result together with the change that moved the numbers.

Usage: check_bench.py CURRENT.json BASELINE.json [--max-regression 0.15]
"""

import argparse
import json
import sys

GATED_STAGES = ("minimizers", "select", "map")


def throughput(report, stage):
    try:
        return int(report["stages"][stage]["bases_per_sec"])
    except (KeyError, TypeError, ValueError) as exc:
        sys.exit(f"error: malformed bench report, no stages.{stage}.bases_per_sec: {exc}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_sketch.json from this run")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="allowed fractional slowdown per stage (default 0.15)",
    )
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    for report, name in ((current, args.current), (baseline, args.baseline)):
        if report.get("schema_version") != 1:
            sys.exit(f"error: {name}: unsupported schema_version {report.get('schema_version')!r}")

    failures = []
    print(f"{'stage':<10} {'baseline':>14} {'current':>14} {'delta':>8}")
    for stage in GATED_STAGES:
        base = throughput(baseline, stage)
        cur = throughput(current, stage)
        if base <= 0:
            sys.exit(f"error: baseline throughput for {stage} is {base}, refresh the baseline")
        delta = cur / base - 1.0
        print(f"{stage:<10} {base:>14,} {cur:>14,} {delta:>+7.1%}")
        if delta < -args.max_regression:
            failures.append(
                f"{stage}: {cur:,} bases/s is {-delta:.1%} below the baseline "
                f"{base:,} (allowed: {args.max_regression:.0%})"
            )
        elif delta > args.max_regression:
            print(
                f"note: {stage} improved {delta:.1%}; consider refreshing the baseline "
                f"(see ci/check_bench.py header) so the gate keeps teeth"
            )

    if failures:
        for f in failures:
            print(f"REGRESSION {f}", file=sys.stderr)
        sys.exit(1)
    print("bench gate ok: no stage regressed more than "
          f"{args.max_regression:.0%} vs {args.baseline}")


if __name__ == "__main__":
    main()
