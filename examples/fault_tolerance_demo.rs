//! Fault-tolerance demo: inject crashes, corrupted sketch streams and a
//! straggler into the simulated BSP world, recover with the resilient
//! driver, and show that the mapping output is byte-identical to the
//! fault-free run — only the (simulated) makespan degrades.
//!
//! Run: `cargo run --release --example fault_tolerance_demo`

use jem::prelude::*;
use jem_core::{run_distributed, run_distributed_resilient, ResilienceOptions};
use jem_psim::{CostModel, ExecMode, FaultPlan};

fn main() {
    let genome = Genome::random(300_000, 0.5, 41);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 42);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 6.0,
            ..Default::default()
        },
        43,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    let config = MapperConfig::default();
    let cost = CostModel::ethernet_10g();
    let p = 8;
    println!(
        "{} contigs, {} reads, p = {p}, 10GbE cost model\n",
        contigs.len(),
        reads.len()
    );

    // Reference: the fault-free distributed run.
    let clean = run_distributed(
        &subjects,
        &query_reads,
        &config,
        p,
        cost,
        ExecMode::Sequential,
    );
    println!(
        "fault-free  makespan {:.4}s, {} mappings",
        clean.report.makespan_secs(),
        clean.mappings.len()
    );

    // Adversarial plan: two ranks crash mid-pipeline, one rank's encoded
    // sketch stream arrives damaged, and one rank runs 20x slow.
    let plan = FaultPlan::none()
        .with_crash("subject sketch", 2)
        .with_crash("query map", 5)
        .with_corrupt("subject sketch", 3)
        .with_straggle("input load", 6, 20.0)
        .with_corruption_seed(7);
    println!("fault plan: {plan}");

    let opts = ResilienceOptions {
        plan,
        ..Default::default()
    };
    let faulty = run_distributed_resilient(
        &subjects,
        &query_reads,
        &config,
        p,
        cost,
        ExecMode::Sequential,
        &opts,
    )
    .expect("six of eight ranks survive, so the run must succeed");

    let fs = &faulty.report.fault_stats;
    println!(
        "with faults makespan {:.4}s, {} mappings",
        faulty.report.makespan_secs(),
        faulty.mappings.len()
    );
    println!("recovery: {fs}");

    assert_eq!(
        faulty.mappings, clean.mappings,
        "recovered output must be identical to the fault-free run"
    );
    assert!(
        faulty.report.makespan_secs() > clean.report.makespan_secs(),
        "faults must cost simulated time"
    );
    println!("\nmappings identical to the fault-free run; only the makespan degraded");
}
