//! Quickstart: simulate a small dataset, map long-read end segments to
//! contigs with JEM-mapper, and score the result against the ground truth.
//!
//! Run: `cargo run --release --example quickstart`

use jem::prelude::*;
use jem_core::{mapping_pairs, write_mappings_tsv};
use jem_eval::{Benchmark, MappingMetrics};
use jem_sim::SegmentEnd;

fn main() {
    // 1. Simulate a 200 kb genome, a fragmented contig set, and HiFi reads.
    let genome = Genome::random(200_000, 0.5, 7);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 8);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 5.0,
            ..Default::default()
        },
        9,
    );
    println!(
        "genome: {} bp, contigs: {}, reads: {}",
        genome.len(),
        contigs.len(),
        reads.len()
    );

    // 2. Build the JEM-mapper index over the contigs (paper defaults:
    //    k=16, w=100, T=30, ell=1000).
    let config = MapperConfig::default();
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    let mapper = JemMapper::build(&subjects, &config);

    // 3. Map every read's end segments.
    let mappings = mapper.map_reads(&query_reads);
    println!("mapped {} end segments", mappings.len());

    // 4. Print the first few mappings as TSV.
    let mut tsv = Vec::new();
    write_mappings_tsv(
        &mut tsv,
        &mappings[..mappings.len().min(5)],
        &query_reads,
        &mapper,
    )
    .expect("in-memory write");
    print!("{}", String::from_utf8_lossy(&tsv));

    // 5. Score against the simulated truth (Fig. 4 benchmark).
    let mut queries = Vec::new();
    for r in &reads {
        let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, config.ell);
        queries.push((format!("{}/prefix", r.id), (s as u64, e as u64)));
        if r.len() > config.ell {
            let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, config.ell);
            queries.push((format!("{}/suffix", r.id), (s as u64, e as u64)));
        }
    }
    let subject_coords: Vec<(String, (u64, u64))> = contigs
        .iter()
        .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
        .collect();
    let bench = Benchmark::from_coordinates(&queries, &subject_coords, config.k as u64);
    let pairs = mapping_pairs(&mappings, &query_reads, &mapper);
    let m = MappingMetrics::classify(&pairs, &bench);
    println!(
        "precision {:.2}%  recall {:.2}%  (TP {}, FP {}, FN {})",
        m.precision() * 100.0,
        m.recall() * 100.0,
        m.tp,
        m.fp,
        m.fn_
    );
}
