//! Distributed-memory demo: run the paper's S1–S4 parallel algorithm on
//! the simulated BSP world at several process counts and print the
//! per-step breakdown (a miniature Table II + Fig. 7a).
//!
//! Run: `cargo run --release --example distributed_demo`

use jem::prelude::*;
use jem_core::run_distributed;
use jem_psim::{CostModel, ExecMode};

fn main() {
    let genome = Genome::random(300_000, 0.5, 41);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 42);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 6.0,
            ..Default::default()
        },
        43,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    let config = MapperConfig::default();
    let cost = CostModel::ethernet_10g();
    println!(
        "{} contigs, {} reads, 10GbE cost model\n",
        contigs.len(),
        reads.len()
    );

    println!("| p | makespan (s) | input | sketch | gather+table | query map | comm % |");
    println!("|---|---|---|---|---|---|---|");
    let mut first_mappings = None;
    for p in [1usize, 4, 16, 64] {
        let o = run_distributed(
            &subjects,
            &query_reads,
            &config,
            p,
            cost,
            ExecMode::Sequential,
        );
        let b = o.breakdown();
        println!(
            "| {p} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.1}% |",
            o.report.makespan_secs(),
            b.input_load,
            b.subject_sketch,
            b.sketch_gather + b.table_build,
            b.query_map,
            o.report.comm_fraction() * 100.0
        );
        match &first_mappings {
            None => first_mappings = Some(o.mappings),
            Some(expect) => assert_eq!(
                &o.mappings, expect,
                "the mapping result must be identical at every p"
            ),
        }
    }
    println!(
        "\n{} mappings — identical at every process count (determinism check passed)",
        first_mappings.map(|m| m.len()).unwrap_or(0)
    );
}
