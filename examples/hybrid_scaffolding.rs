//! Hybrid scaffolding: the application the paper's mapping step exists for.
//!
//! Long reads whose prefix maps to one contig and suffix to another *link*
//! those contigs (Fig. 1 of the paper). This example maps end segments with
//! JEM-mapper, collects contig links, greedily chains them into scaffolds,
//! and reports how much the N50 improves over the raw contig set.
//!
//! Run: `cargo run --release --example hybrid_scaffolding`

use jem::prelude::*;
use jem_core::ReadEnd;
use std::collections::HashMap;

fn n50(mut lens: Vec<usize>) -> usize {
    lens.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = lens.iter().sum();
    let mut acc = 0;
    for l in &lens {
        acc += l;
        if acc * 2 >= total {
            return *l;
        }
    }
    0
}

fn main() {
    // Simulate a genome with a fragmented assembly and decent HiFi coverage.
    let genome = Genome::random(400_000, 0.45, 11);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 12);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 8.0,
            ..Default::default()
        },
        13,
    );
    println!("contigs: {}  reads: {}", contigs.len(), reads.len());

    // Map end segments.
    let config = MapperConfig::default();
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let mappings = mapper.map_reads(&read_records(&reads));

    // Collect links: a read whose two ends map to *different* contigs
    // bridges them. Count support per (min, max) contig pair.
    let mut per_read: HashMap<u32, [Option<u32>; 2]> = HashMap::new();
    for m in &mappings {
        let slot = match m.end {
            ReadEnd::Prefix => 0,
            ReadEnd::Suffix => 1,
        };
        per_read.entry(m.read_idx).or_default()[slot] = Some(m.subject);
    }
    let mut links: HashMap<(u32, u32), u32> = HashMap::new();
    for ends in per_read.values() {
        if let [Some(a), Some(b)] = ends {
            if a != b {
                *links.entry((*a.min(b), *a.max(b))).or_insert(0) += 1;
            }
        }
    }
    // Keep links with ≥2 supporting reads (standard scaffolding hygiene).
    let strong: Vec<((u32, u32), u32)> = links
        .iter()
        .filter(|(_, &c)| c >= 2)
        .map(|(&k, &c)| (k, c))
        .collect();
    println!(
        "contig links: {} total, {} with >=2 read support",
        links.len(),
        strong.len()
    );

    // Greedy chaining: sort links by support, join contigs whose endpoints
    // are still free (each contig joins at most two scaffolds ends).
    let mut degree = vec![0u8; contigs.len()];
    let mut dsu: Vec<u32> = (0..contigs.len() as u32).collect();
    fn find(dsu: &mut Vec<u32>, x: u32) -> u32 {
        if dsu[x as usize] != x {
            let root = find(dsu, dsu[x as usize]);
            dsu[x as usize] = root;
        }
        dsu[x as usize]
    }
    let mut sorted = strong.clone();
    sorted.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
    let mut joins = 0;
    for ((a, b), _) in sorted {
        if degree[a as usize] >= 2 || degree[b as usize] >= 2 {
            continue;
        }
        let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
        if ra == rb {
            continue; // would close a cycle
        }
        dsu[ra as usize] = rb;
        degree[a as usize] += 1;
        degree[b as usize] += 1;
        joins += 1;
    }

    // Scaffold lengths = sum of member contig lengths (gaps ignored).
    let mut scaffold_len: HashMap<u32, usize> = HashMap::new();
    for (i, c) in contigs.iter().enumerate() {
        let root = find(&mut dsu, i as u32);
        *scaffold_len.entry(root).or_insert(0) += c.len();
    }
    let contig_n50 = n50(contigs.iter().map(|c| c.len()).collect());
    let scaffold_n50 = n50(scaffold_len.values().copied().collect());
    println!("joins made: {joins}");
    println!(
        "contig   N50: {contig_n50} bp  ({} sequences)",
        contigs.len()
    );
    println!(
        "scaffold N50: {scaffold_n50} bp  ({} scaffolds)",
        scaffold_len.len()
    );
    assert!(
        scaffold_n50 >= contig_n50,
        "scaffolding should not reduce N50"
    );
    println!(
        "N50 improvement: {:.2}x",
        scaffold_n50 as f64 / contig_n50 as f64
    );
}
