//! The paper's full data-preparation pipeline, end to end:
//! genome → Illumina short reads (ART substitute) → de Bruijn assembly
//! (Minia substitute) → contigs → map HiFi long-read end segments to the
//! *assembled* contigs with JEM-mapper.
//!
//! Run: `cargo run --release --example assembly_pipeline`

use jem::prelude::*;
use jem_dbg::{assemble, AssemblyParams};
use jem_sim::{simulate_illumina, IlluminaProfile};

fn main() {
    // 1. Genome.
    let genome = Genome::random(150_000, 0.5, 21);
    println!("genome: {} bp", genome.len());

    // 2. Short reads (100 bp, 30x, 0.5% substitution error).
    let short_reads = simulate_illumina(&genome, &IlluminaProfile::default(), 22);
    println!(
        "short reads: {} x {} bp",
        short_reads.len(),
        short_reads[0].seq.len()
    );

    // 3. Assemble with the de Bruijn substrate.
    let read_seqs: Vec<Vec<u8>> = short_reads.into_iter().map(|r| r.seq).collect();
    let params = AssemblyParams {
        k: 31,
        min_abundance: 3,
        min_contig_len: 500,
        tip_len: 93,
    };
    let contigs = assemble(&read_seqs, &params);
    let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
    println!(
        "assembled {} contigs, {} bp total ({:.1}% of genome), longest {} bp",
        contigs.len(),
        total,
        100.0 * total as f64 / genome.len() as f64,
        contigs.iter().map(|c| c.seq.len()).max().unwrap_or(0)
    );

    // 4. HiFi long reads and JEM mapping against the *assembled* contigs.
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 5.0,
            ..Default::default()
        },
        23,
    );
    let config = MapperConfig::default();
    let mapper = JemMapper::build(&contigs, &config);
    let mappings = mapper.map_reads(&read_records(&reads));
    let n_segments: usize = reads
        .iter()
        .map(|r| if r.len() > config.ell { 2 } else { 1 })
        .sum();
    println!(
        "mapped {}/{} end segments ({:.1}%)",
        mappings.len(),
        n_segments,
        100.0 * mappings.len() as f64 / n_segments as f64
    );
    let strong = mappings
        .iter()
        .filter(|m| m.hits as usize >= config.trials / 2)
        .count();
    println!(
        "{strong} mappings supported by a majority of the {} trials",
        config.trials
    );
}
