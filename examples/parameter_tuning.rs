//! Parameter exploration: how k, w and T trade quality against work.
//!
//! Sweeps each parameter around the paper's defaults on a small simulated
//! dataset and prints precision/recall plus sketch-table size — a compact
//! version of the ablations DESIGN.md calls out.
//!
//! Run: `cargo run --release --example parameter_tuning`

use jem::prelude::*;
use jem_core::mapping_pairs;
use jem_eval::{Benchmark, MappingMetrics};
use jem_seq::SeqRecord;
use jem_sim::{Contig, SegmentEnd, SimulatedRead};

fn evaluate(
    contigs: &[Contig],
    reads: &[SimulatedRead],
    subjects: &[SeqRecord],
    query_reads: &[SeqRecord],
    config: &MapperConfig,
) -> (f64, f64, usize) {
    let mapper = JemMapper::build(subjects, config);
    let mappings = mapper.map_reads(query_reads);
    let mut queries = Vec::new();
    for r in reads {
        let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, config.ell);
        queries.push((format!("{}/prefix", r.id), (s as u64, e as u64)));
        if r.len() > config.ell {
            let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, config.ell);
            queries.push((format!("{}/suffix", r.id), (s as u64, e as u64)));
        }
    }
    let coords: Vec<(String, (u64, u64))> = contigs
        .iter()
        .map(|c| (c.id.clone(), (c.ref_start as u64, c.ref_end as u64)))
        .collect();
    let bench = Benchmark::from_coordinates(&queries, &coords, config.k as u64);
    let m = MappingMetrics::classify(&mapping_pairs(&mappings, query_reads, &mapper), &bench);
    (m.precision(), m.recall(), mapper.table().entry_count())
}

fn main() {
    let genome = Genome::random(250_000, 0.45, 31);
    let contigs = fragment_contigs(&genome, &ContigProfile::eukaryotic(), 32);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 4.0,
            ..Default::default()
        },
        33,
    );
    let subjects = contig_records(&contigs);
    let query_reads = read_records(&reads);
    println!("{} contigs, {} reads\n", contigs.len(), reads.len());

    println!("| param | precision | recall | table entries |");
    println!("|---|---|---|---|");
    for t in [5usize, 15, 30, 60] {
        let cfg = MapperConfig {
            trials: t,
            ..Default::default()
        };
        let (p, r, e) = evaluate(&contigs, &reads, &subjects, &query_reads, &cfg);
        println!("| T={t} | {:.2}% | {:.2}% | {e} |", p * 100.0, r * 100.0);
    }
    for w in [20usize, 50, 100, 200] {
        let cfg = MapperConfig {
            w,
            ..Default::default()
        };
        let (p, r, e) = evaluate(&contigs, &reads, &subjects, &query_reads, &cfg);
        println!("| w={w} | {:.2}% | {:.2}% | {e} |", p * 100.0, r * 100.0);
    }
    for k in [12usize, 16, 20, 24] {
        let cfg = MapperConfig {
            k,
            ..Default::default()
        };
        let (p, r, e) = evaluate(&contigs, &reads, &subjects, &query_reads, &cfg);
        println!("| k={k} | {:.2}% | {:.2}% | {e} |", p * 100.0, r * 100.0);
    }
    println!("\npaper defaults: k=16, w=100, T=30, ell=1000");
}
