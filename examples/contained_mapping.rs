//! Contained-contig detection: the extension the paper's §III-B-1 calls
//! for ("a contig may be completely contained within an interior region of
//! a long read. In such cases, an extension of the approach will be
//! needed").
//!
//! Builds a scenario where small contigs hide in read interiors, shows
//! that end-segment mapping misses them, and recovers them with the
//! whole-read tiling extension.
//!
//! Run: `cargo run --release --example contained_mapping`

use jem::prelude::*;
use jem_sim::Contig;
use std::collections::HashSet;

fn main() {
    // A genome with deliberately small contigs (≈1.5 kb) and long reads
    // (≈12 kb): most contigs a read crosses are interior.
    let genome = Genome::random(300_000, 0.5, 61);
    let profile = ContigProfile {
        mean_len: 1_500,
        std_len: 600,
        min_len: 500,
        gap_fraction: 0.1,
        error_rate: 0.0,
    };
    let contigs = fragment_contigs(&genome, &profile, 62);
    let hifi = HifiProfile {
        coverage: 2.0,
        mean_len: 12_000,
        std_len: 2_000,
        min_len: 6_000,
        error_rate: 0.001,
    };
    let reads = jem_sim::simulate_hifi(&genome, &hifi, 63);
    println!(
        "{} contigs (mean ~1.5 kb), {} reads (mean ~12 kb)",
        contigs.len(),
        reads.len()
    );

    let config = MapperConfig::default();
    let mapper = JemMapper::build(&contig_records(&contigs), &config);

    // Ground truth per read: interior contigs (fully inside, >ℓ from both
    // read ends) vs end-visible contigs.
    let interior_truth = |c: &Contig, rs: usize, re: usize| {
        c.ref_start >= rs + config.ell && c.ref_end + config.ell <= re
    };

    let mut interior_total = 0usize;
    let mut end_found = 0usize;
    let mut tiled_found = 0usize;
    for read in reads.iter().take(150) {
        let truth: HashSet<&str> = contigs
            .iter()
            .filter(|c| interior_truth(c, read.ref_start, read.ref_end))
            .map(|c| c.id.as_str())
            .collect();
        if truth.is_empty() {
            continue;
        }
        interior_total += truth.len();

        // End-segment mapping (the paper's default): two best hits only.
        let recs = read_records(std::slice::from_ref(read));
        let end_hits: HashSet<&str> = mapper
            .map_reads(&recs)
            .iter()
            .map(|m| mapper.subject_name(m.subject))
            .collect();
        end_found += truth.iter().filter(|c| end_hits.contains(**c)).count();

        // Whole-read tiling extension.
        let tiled: HashSet<&str> = mapper
            .contained_hits(&read.seq, config.ell / 2)
            .iter()
            .map(|h| mapper.subject_name(h.subject))
            .collect();
        tiled_found += truth.iter().filter(|c| tiled.contains(**c)).count();
    }

    println!("\ninterior-only contig incidences: {interior_total}");
    println!(
        "  found by end segments:  {end_found} ({:.1}%)",
        100.0 * end_found as f64 / interior_total.max(1) as f64
    );
    println!(
        "  found by tiling:        {tiled_found} ({:.1}%)",
        100.0 * tiled_found as f64 / interior_total.max(1) as f64
    );
    assert!(
        tiled_found > end_found,
        "tiling must beat end-only mapping here"
    );
}
