//! Instrumentation must be observational only: running the pipeline with a
//! live metrics recorder installed has to produce byte-identical mappings
//! to the no-op default. One test function owns the whole binary because
//! the recorder install is process-global and first-install-wins.

use jem_core::{map_reads_parallel, JemMapper, MapperConfig};
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};

#[test]
fn recorder_does_not_change_mappings() {
    let genome = Genome::random(100_000, 0.5, 31);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 32);
    let config = MapperConfig {
        k: 14,
        w: 20,
        trials: 12,
        ell: 500,
        seed: 33,
    };
    let profile = HifiProfile {
        coverage: 3.0,
        mean_len: 4_000,
        std_len: 800,
        min_len: 1_200,
        error_rate: 0.001,
    };
    let reads = read_records(&simulate_hifi(&genome, &profile, 34));

    // Pass 1: the global recorder is still the no-op default.
    assert!(
        !jem_obs::recorder().enabled(),
        "test binary must start uninstrumented"
    );
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let baseline_seq = mapper.map_reads(&reads);
    let baseline_par = map_reads_parallel(&mapper, &reads);

    // Pass 2: identical pipeline with a live recorder collecting everything.
    let rec = jem_obs::install_default().expect("first install");
    let mapper = JemMapper::build(&contig_records(&contigs), &config);
    let instrumented_seq = mapper.map_reads(&reads);
    let instrumented_par = map_reads_parallel(&mapper, &reads);

    assert_eq!(instrumented_seq, baseline_seq, "sequential driver diverged");
    assert_eq!(instrumented_par, baseline_par, "parallel driver diverged");

    // And the recorder really did collect the pipeline's activity.
    let snap = rec.snapshot();
    for counter in [
        "sketch.sequences",
        "sketch.windows_scanned",
        "sketch.minimizers_kept",
        "sketch.sketches_emitted",
        "index.subjects",
        "index.keys",
        "index.entries",
        "map.segments",
        "map.mapped",
        "map.collisions_probed",
        "map.lazy_resets",
    ] {
        assert!(snap.counter(counter) > 0, "counter {counter} stayed zero");
    }
    for span in [
        "sketch/minimizers",
        "sketch/select",
        "index/build",
        "map",
        "map/parallel",
    ] {
        assert!(snap.span_ns(span) > 0, "span {span} recorded no time");
    }
    assert!(
        snap.histograms["index.bucket_occupancy"].count > 0,
        "bucket occupancy histogram empty"
    );
    // The snapshot survives its own JSON round trip.
    let json = snap.to_json();
    let back = jem_obs::Snapshot::from_json(&json).expect("snapshot JSON parses");
    assert_eq!(back, snap);
}
