//! Pins the zero-copy property of the v4 mmap load path through the
//! metrics it emits: loading a JEMIDX v4 artifact from disk must copy
//! **zero** posting-arena bytes (`persist.arena_copy_bytes` stays 0 and
//! `persist.load_mmap` fires), while the legacy v3 stream load reports
//! its full body copy. One test function owns the whole binary because
//! the recorder install is process-global and first-install-wins.

#![cfg(unix)]

use jem_core::{load_index_path, save_index, save_index_v3, JemMapper, MapperConfig};
use jem_seq::SeqRecord;
use std::path::PathBuf;

#[test]
fn v4_mmap_load_copies_no_arena_bytes() {
    let rec = jem_obs::install_default().expect("this binary owns the recorder");

    let subjects = vec![
        SeqRecord::new(
            "c0",
            b"ACGTACGTACGGTTACGGATCCGTAGGCTAACGTACCGTAGGCATCAGT".to_vec(),
        ),
        SeqRecord::new(
            "c1",
            b"TTGACCATGGACCGTATTGCACCGGATGCAACGGTATCAGGCCATGATC".to_vec(),
        ),
    ];
    let config = MapperConfig {
        k: 9,
        w: 6,
        trials: 4,
        ell: 40,
        seed: 5,
    };
    let mapper = JemMapper::build(&subjects, &config);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));

    // v4: mmap route, zero bytes copied out of the artifact.
    let v4 = dir.join("metrics-v4.jem");
    let mut out = std::fs::File::create(&v4).unwrap();
    save_index(&mut out, &mapper).unwrap();
    drop(out);
    load_index_path(&v4).unwrap();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("persist.load_v4"), 1);
    assert_eq!(
        snap.counter("persist.load_mmap"),
        1,
        "v4 must take the mmap route"
    );
    assert_eq!(snap.counter("persist.load_owned"), 0);
    assert_eq!(
        snap.counter("persist.arena_copy_bytes"),
        0,
        "a v4 mmap load must not copy the posting arena"
    );

    // v3 for contrast: the stream load has to copy its whole body.
    let v3 = dir.join("metrics-v3.jem");
    let mut out = std::fs::File::create(&v3).unwrap();
    save_index_v3(&mut out, &mapper).unwrap();
    drop(out);
    load_index_path(&v3).unwrap();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("persist.load_v3"), 1);
    assert!(
        snap.counter("persist.arena_copy_bytes") > 0,
        "the v3 load copies its body and must say so"
    );
}
