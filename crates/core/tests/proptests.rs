//! Property-based tests for the mapping core.

use jem_core::{
    make_segments, map_reads_parallel, run_distributed, run_distributed_resilient, JemMapper,
    MapperConfig, ReadEnd, ResilienceOptions,
};
use jem_psim::{CostModel, ExecMode, FaultPlan};
use jem_seq::SeqRecord;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn segmentation_invariants(
        reads in prop::collection::vec(dna(0, 3000), 0..12),
        ell in 1usize..1500,
    ) {
        let recs: Vec<SeqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, seq)| SeqRecord::new(format!("r{i}"), seq))
            .collect();
        let segs = make_segments(&recs, ell);
        for s in &segs {
            let read = &recs[s.read_idx as usize];
            prop_assert!(s.seq.len() <= ell);
            prop_assert!(!s.seq.is_empty());
            match s.end {
                ReadEnd::Prefix => prop_assert_eq!(&s.seq[..], &read.seq[..s.seq.len()]),
                ReadEnd::Suffix => {
                    prop_assert_eq!(&s.seq[..], &read.seq[read.seq.len() - s.seq.len()..]);
                    prop_assert!(read.seq.len() > ell, "suffix only for long reads");
                }
            }
        }
        // Per read: 0 segments (empty), 1 (short) or 2 (long).
        for (i, r) in recs.iter().enumerate() {
            let count = segs.iter().filter(|s| s.read_idx as usize == i).count();
            let expect = if r.seq.is_empty() { 0 } else if r.seq.len() <= ell { 1 } else { 2 };
            prop_assert_eq!(count, expect);
        }
    }

    #[test]
    fn drivers_agree_on_random_data(
        subjects in prop::collection::vec(dna(300, 1500), 1..8),
        reads in prop::collection::vec(dna(100, 2500), 0..8),
        p in 1usize..6,
    ) {
        let subject_recs: Vec<SeqRecord> = subjects
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("c{i}"), s))
            .collect();
        let read_recs: Vec<SeqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("r{i}"), s))
            .collect();
        let config = MapperConfig { k: 11, w: 8, trials: 6, ell: 400, seed: 3 };
        let mapper = JemMapper::build(&subject_recs, &config);
        let mut sequential = mapper.map_reads(&read_recs);
        sequential.sort_unstable();
        let parallel = map_reads_parallel(&mapper, &read_recs);
        prop_assert_eq!(&parallel, &sequential);
        let distributed = run_distributed(
            &subject_recs,
            &read_recs,
            &config,
            p,
            CostModel::zero(),
            ExecMode::Sequential,
        );
        prop_assert_eq!(&distributed.mappings, &sequential);
    }

    #[test]
    fn resilient_driver_survives_random_fault_plans(
        subjects in prop::collection::vec(dna(300, 1200), 1..6),
        reads in prop::collection::vec(dna(100, 2000), 0..6),
        p in 2usize..6,
        seed in any::<u64>(),
        n_corrupt in 0usize..3,
    ) {
        let subject_recs: Vec<SeqRecord> = subjects
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("c{i}"), s))
            .collect();
        let read_recs: Vec<SeqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("r{i}"), s))
            .collect();
        let config = MapperConfig { k: 11, w: 8, trials: 6, ell: 400, seed: 3 };
        let expected = run_distributed(
            &subject_recs,
            &read_recs,
            &config,
            p,
            CostModel::zero(),
            ExecMode::Sequential,
        )
        .mappings;
        // Crash anywhere between 1 and p-1 ranks at random steps, plus a
        // few corrupted sketch payloads; output must be untouched.
        let steps = ["input load", "subject sketch", "query map"];
        let n_crashes = 1 + (seed as usize) % (p - 1).max(1);
        let plan = FaultPlan::random(seed, p, &steps, n_crashes, n_corrupt);
        let opts = ResilienceOptions { plan: plan.clone(), ..Default::default() };
        let outcome = run_distributed_resilient(
            &subject_recs,
            &read_recs,
            &config,
            p,
            CostModel::zero(),
            ExecMode::Sequential,
            &opts,
        )
        .expect("a surviving rank remains, so the run must succeed");
        prop_assert_eq!(&outcome.mappings, &expected, "plan: {}", plan);
        let fs = outcome.report.fault_stats;
        prop_assert_eq!(fs.crashes, plan.crashed_ranks());
        if plan.crashed_ranks() > 0 {
            prop_assert!(fs.retries >= 1, "crashes must force retries: {}", fs);
            prop_assert!(fs.reassigned_blocks >= 1, "crashes must reassign blocks: {}", fs);
        }
    }

    #[test]
    fn mapping_fields_always_valid(
        subjects in prop::collection::vec(dna(300, 1200), 1..6),
        reads in prop::collection::vec(dna(100, 2000), 0..6),
    ) {
        let subject_recs: Vec<SeqRecord> = subjects
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("c{i}"), s))
            .collect();
        let read_recs: Vec<SeqRecord> = reads
            .into_iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("r{i}"), s))
            .collect();
        let config = MapperConfig { k: 9, w: 6, trials: 5, ell: 300, seed: 8 };
        let mapper = JemMapper::build(&subject_recs, &config);
        for m in mapper.map_reads(&read_recs) {
            prop_assert!((m.read_idx as usize) < read_recs.len());
            prop_assert!((m.subject as usize) < mapper.n_subjects());
            prop_assert!(m.hits >= 1 && m.hits as usize <= config.trials);
        }
    }

    #[test]
    fn query_from_subject_maps_to_it(
        subject in dna(2000, 4000),
        offset_frac in 0.0f64..0.7,
    ) {
        // An error-free window of a lone subject must map to it with
        // majority trial support.
        let config = MapperConfig { k: 11, w: 8, trials: 8, ell: 500, seed: 1 };
        let offset = (subject.len() as f64 * offset_frac) as usize;
        let end = (offset + 500).min(subject.len());
        let query = subject[offset..end].to_vec();
        let mapper = JemMapper::build(&[SeqRecord::new("c0", subject)], &config);
        let mut counter = mapper.new_counter();
        let result = mapper.map_segment(&query, 0, &mut counter);
        prop_assert!(result.is_some(), "verbatim window must map");
        let (s, hits) = result.unwrap();
        prop_assert_eq!(s, 0);
        prop_assert!(hits >= 4, "expected majority support, got {hits}/8");
    }
}
