//! JEMIDX v4 ⇄ v3 format-compatibility suite.
//!
//! Pins the tentpole guarantees of the flat v4 layout:
//!
//! * a v3 artifact and its v4 upgrade produce **byte-identical** mapping
//!   TSV output (and both match the in-memory mapper);
//! * save → load (mmap path) → save is **byte-identical** — the canonical
//!   writer makes the artifact a fixed point of the round trip;
//! * corrupt or truncated artifacts fail with typed errors, never panics
//!   — fuzzed here with proptest over random bit flips and truncations,
//!   mirroring the `fuzz_frames` discipline of the serve protocol.

use jem_core::{
    load_index, load_index_path, save_index, save_index_v3, write_mappings_tsv, JemMapper,
    MapperConfig,
};
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;

/// A deterministic small world: contigs to index, reads to map.
fn world() -> (JemMapper, Vec<SeqRecord>) {
    let genome = Genome::random(60_000, 0.5, 71);
    let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 72);
    let config = MapperConfig {
        k: 14,
        w: 20,
        trials: 10,
        ell: 500,
        seed: 73,
    };
    let reads = read_records(&simulate_hifi(
        &genome,
        &HifiProfile {
            coverage: 2.0,
            ..Default::default()
        },
        74,
    ));
    (JemMapper::build(&contig_records(&contigs), &config), reads)
}

fn tsv(mapper: &JemMapper, reads: &[SeqRecord]) -> Vec<u8> {
    let mappings = mapper.map_reads(reads);
    let mut out = Vec::new();
    write_mappings_tsv(&mut out, &mappings, reads, mapper).unwrap();
    out
}

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

fn save_to(path: &PathBuf, bytes: &[u8]) {
    std::fs::write(path, bytes).unwrap();
}

fn v4_bytes(mapper: &JemMapper) -> Vec<u8> {
    let mut out = Vec::new();
    save_index(&mut out, mapper).unwrap();
    out
}

fn v3_bytes(mapper: &JemMapper) -> Vec<u8> {
    let mut out = Vec::new();
    save_index_v3(&mut out, mapper).unwrap();
    out
}

#[test]
fn v3_and_its_v4_upgrade_map_byte_identically() {
    let (mapper, reads) = world();
    let expected = tsv(&mapper, &reads);

    // Persist both formats, load each through the path loader (v4 takes
    // the mmap route where supported), and map the same reads.
    let v3_path = tmp("compat-v3.jem");
    save_to(&v3_path, &v3_bytes(&mapper));
    let from_v3 = load_index_path(&v3_path).unwrap();
    assert_eq!(tsv(&from_v3, &reads), expected, "v3 output drifted");

    // The upgrade path: what `jem index --upgrade` does.
    let v4_path = tmp("compat-v4.jem");
    save_to(&v4_path, &v4_bytes(&from_v3));
    let from_v4 = load_index_path(&v4_path).unwrap();
    assert_eq!(from_v4.table().backing(), "flat");
    assert_eq!(
        tsv(&from_v4, &reads),
        expected,
        "v4 upgrade changed mapping output"
    );
}

#[test]
fn save_mmap_load_save_is_a_byte_fixed_point() {
    let (mapper, _) = world();
    let first = v4_bytes(&mapper);
    let path = tmp("compat-fixed-point.jem");
    save_to(&path, &first);
    let reloaded = load_index_path(&path).unwrap();
    assert_eq!(
        v4_bytes(&reloaded),
        first,
        "canonical writer must make save→load→save the identity"
    );
    // And the upgrade of an upgrade is still the same file.
    let twice = load_index_path(&path).unwrap();
    assert_eq!(v4_bytes(&twice), first);
}

#[test]
fn upgrading_v3_twice_is_deterministic() {
    let (mapper, _) = world();
    let v3 = v3_bytes(&mapper);
    let a = v4_bytes(&load_index(&mut Cursor::new(&v3)).unwrap());
    let b = v4_bytes(&load_index(&mut Cursor::new(&v3)).unwrap());
    assert_eq!(a, b, "upgrade must be deterministic");
    assert_eq!(a, v4_bytes(&mapper), "upgrade must equal a direct v4 save");
}

/// A small-but-real v4 artifact for the fuzz cases below (cheaper than
/// `world()` per proptest case; built once).
fn small_v4() -> Vec<u8> {
    let subjects = vec![
        SeqRecord::new(
            "c0",
            b"ACGTACGTACGGTTACGGATCCGTAGGCTAACGTACCGTAGGCATCAGT".to_vec(),
        ),
        SeqRecord::new(
            "c1",
            b"TTGACCATGGACCGTATTGCACCGGATGCAACGGTATCAGGCCATGATC".to_vec(),
        ),
    ];
    let config = MapperConfig {
        k: 9,
        w: 6,
        trials: 4,
        ell: 40,
        seed: 5,
    };
    v4_bytes(&JemMapper::build(&subjects, &config))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single bit flip anywhere in a v4 artifact is rejected with a
    /// typed error: the whole-file checksum covers the body, and the
    /// three uncovered header words (magic, length, checksum itself) are
    /// each validated directly.
    #[test]
    fn any_single_bit_flip_is_rejected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = small_v4();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        prop_assert!(
            load_index(&mut Cursor::new(&bytes)).is_err(),
            "flip at byte {pos} bit {bit} must be rejected"
        );
    }

    /// Any truncation is rejected — no prefix of a valid artifact is a
    /// valid artifact. The loader must return, not panic.
    #[test]
    fn any_truncation_is_rejected(len_frac in 0.0f64..1.0) {
        let bytes = small_v4();
        let len = (bytes.len() as f64 * len_frac) as usize;
        prop_assert!(len < bytes.len());
        prop_assert!(load_index(&mut Cursor::new(&bytes[..len])).is_err());
    }

    /// Arbitrary multi-byte corruption never panics the loader — the
    /// validator bounds every section and every posting range before any
    /// of it is dereferenced. (A result is allowed; a panic is not.)
    #[test]
    fn random_corruption_never_panics(
        edits in prop::collection::vec((0.0f64..1.0, 1u8..=255), 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut bytes = small_v4();
        for (frac, mask) in edits {
            let pos = ((bytes.len() - 1) as f64 * frac) as usize;
            bytes[pos] ^= mask;
        }
        let keep = ((bytes.len() as f64) * cut_frac) as usize;
        bytes.truncate(keep.max(1));
        let _ = load_index(&mut Cursor::new(&bytes));
    }

    /// The same discipline holds on the path loader (mmap route): random
    /// corruption of the file on disk yields an error, never a panic.
    #[test]
    fn corrupt_files_fail_typed_on_the_mmap_path(pos_frac in 0.0f64..1.0, mask in 1u8..=255) {
        let mut bytes = small_v4();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= mask;
        let path = tmp("compat-fuzz-mmap.jem");
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(load_index_path(&path).is_err());
    }
}
