//! The scratch-reuse contract, end to end: every driver that threads a
//! reused [`MapScratch`] through its mapping loop must produce Mapping sets
//! byte-identical to the fresh-allocation path, at every thread count.

use jem_core::{
    make_segments, map_reads_parallel_with, JemMapper, MapScratch, MapperConfig, Mapping,
};
use jem_seq::SeqRecord;
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
    HifiProfile,
};

fn world(seed: u64) -> (JemMapper, Vec<SeqRecord>, MapperConfig) {
    let genome = Genome::random(50_000, 0.5, seed);
    let contigs = fragment_contigs(
        &genome,
        &ContigProfile {
            error_rate: 0.0,
            ..ContigProfile::small_genome()
        },
        seed + 1,
    );
    let config = MapperConfig {
        k: 12,
        w: 9,
        trials: 10,
        ell: 350,
        seed: 3,
    };
    let profile = HifiProfile {
        coverage: 2.0,
        mean_len: 3_000,
        std_len: 700,
        min_len: 800,
        error_rate: 0.002,
    };
    let reads = read_records(&simulate_hifi(&genome, &profile, seed + 2));
    (
        JemMapper::build(&contig_records(&contigs), &config),
        reads,
        config,
    )
}

#[test]
fn reused_scratch_matches_fresh_per_segment() {
    let (mapper, reads, config) = world(17);
    let segments = make_segments(&reads, config.ell);
    assert!(segments.len() > 10, "world too small to be meaningful");

    // One scratch carried across all segments vs a fresh scratch per call.
    let mut reused = MapScratch::new();
    let mut counter_a = mapper.new_counter();
    let mut counter_b = mapper.new_counter();
    for (qid, seg) in segments.iter().enumerate() {
        let with_reuse = mapper.map_segment_with(&seg.seq, qid as u64, &mut counter_a, &mut reused);
        let fresh = mapper.map_segment(&seg.seq, qid as u64, &mut counter_b);
        assert_eq!(with_reuse, fresh, "segment {qid}");
    }
}

#[test]
fn parallel_driver_matches_sequential_at_every_thread_count() {
    let (mapper, reads, _) = world(29);
    let mut sequential: Vec<Mapping> = mapper.map_reads(&reads);
    sequential.sort_unstable();
    assert!(!sequential.is_empty());
    // Each rayon chunk owns its own scratch; no thread count may perturb
    // the output.
    for threads in [1usize, 2, 5, 13, 64] {
        assert_eq!(
            map_reads_parallel_with(&mapper, &reads, Some(threads)),
            sequential,
            "threads = {threads}"
        );
    }
}

#[test]
fn batched_scratch_reuse_matches_map_segments() {
    let (mapper, reads, config) = world(41);
    let segments = make_segments(&reads, config.ell);
    let expected = mapper.map_segments(&segments);

    // Re-run the same loop shape the serve workers use: one counter, one
    // scratch, batches of varying size with a running qid base.
    let mut counter = mapper.new_counter();
    let mut scratch = MapScratch::new();
    let mut got = Vec::new();
    let mut qid_base = 0u64;
    for chunk in segments.chunks(7) {
        for (i, seg) in chunk.iter().enumerate() {
            if let Some((subject, hits)) =
                mapper.map_segment_with(&seg.seq, qid_base + i as u64, &mut counter, &mut scratch)
            {
                got.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits,
                });
            }
        }
        qid_base += chunk.len() as u64;
    }
    assert_eq!(got, expected);
}
