//! The JEM-Mapper: index construction and best-hit query mapping.

use crate::config::MapperConfig;
use crate::segment::{make_segments, QuerySegment, ReadEnd};
use jem_index::{
    build_table_parallel_scheme, HitCounter, LazyHitCounter, SketchTable, SubjectId, TableBackend,
};
use jem_seq::SeqRecord;
use jem_sketch::{
    sketch_by_scheme, sketch_by_scheme_into, HashFamily, JemParams, JemSketch, SketchScheme,
    SketchScratch,
};

/// One reported best-hit mapping of a read end segment to a contig.
///
/// The derived `Ord` is the lexicographic order of the fields as declared —
/// `(read_idx, end, subject, hits)`. Drivers normalize their output with
/// this *total* order rather than the `(read_idx, end)` prefix alone: each
/// driver emits at most one mapping per `(read_idx, end)`, but that
/// uniqueness is an invariant of the mapping loop, not of the type, so
/// sorting by every field keeps the output deterministic even if a future
/// driver merges overlapping partial results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Mapping {
    /// Index of the source read in the query input.
    pub read_idx: u32,
    /// Which end segment was mapped.
    pub end: ReadEnd,
    /// Best-hit subject (contig) id — its index in the subject input.
    pub subject: SubjectId,
    /// Number of trials on which the subject collided with the query.
    pub hits: u32,
}

impl Mapping {
    /// Stable query key `"<read_id>/<end>"` for evaluation.
    pub fn query_key(&self, reads: &[SeqRecord]) -> String {
        format!("{}/{}", reads[self.read_idx as usize].id, self.end)
    }
}

/// Reusable per-thread scratch for the query path: the sketch buffer, the
/// sketching scratch behind it, and the per-trial collision list. One of
/// these lives beside each [`LazyHitCounter`] (one per mapping thread or
/// serve worker) so segment mapping performs no steady-state allocation.
#[derive(Clone, Debug, Default)]
pub struct MapScratch {
    sketch: JemSketch,
    scratch: SketchScratch,
    trial_subjects: Vec<SubjectId>,
}

impl MapScratch {
    /// Fresh, empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }

    /// The sketch written by the last
    /// [`JemMapper::sketch_segment_into`], alongside the reusable
    /// collision list — split borrows for lookup loops that walk the
    /// sketch while filling the list (e.g. `jem-serve`'s sharded lookup).
    pub fn parts(&mut self) -> (&JemSketch, &mut Vec<SubjectId>) {
        (&self.sketch, &mut self.trial_subjects)
    }
}

/// An immutable JEM-mapper index over a contig set, plus query drivers.
///
/// ```
/// use jem_core::{JemMapper, MapperConfig};
/// use jem_seq::SeqRecord;
///
/// let contig: Vec<u8> = (0..3000).map(|i| b"ACGT"[(i * 7 + i / 5) % 4]).collect();
/// let config = MapperConfig { k: 11, w: 8, trials: 8, ell: 400, seed: 1 };
/// let mapper = JemMapper::build(&[SeqRecord::new("c0", contig.clone())], &config);
///
/// // A verbatim window of the contig maps back to it on most trials.
/// let mut counter = mapper.new_counter();
/// let (subject, hits) = mapper.map_segment(&contig[500..900], 0, &mut counter).unwrap();
/// assert_eq!(subject, 0);
/// assert!(hits >= 6);
/// ```
#[derive(Clone, Debug)]
pub struct JemMapper {
    config: MapperConfig,
    params: JemParams,
    scheme: SketchScheme,
    family: HashFamily,
    table: TableBackend,
    subject_names: Vec<String>,
}

impl JemMapper {
    /// Build the sketch table over `subjects` (Algorithm 2, lines 1–2),
    /// using the paper's minimizer scheme with window `config.w`.
    ///
    /// Subject sketching runs in parallel (rayon). The result is fully
    /// deterministic for a given `(subjects, config)`.
    ///
    /// # Panics
    /// Panics on an invalid configuration (zero `k`/`w`/ℓ/`T`).
    pub fn build(subjects: &[SeqRecord], config: &MapperConfig) -> Self {
        Self::build_with_scheme(subjects, config, SketchScheme::Minimizer { w: config.w })
    }

    /// Build under an alternative sketch-position scheme (e.g. closed
    /// syncmers — the paper's future-work item i). `config.w` is ignored
    /// when the scheme carries its own parameters.
    ///
    /// Subjects are borrowed: sketching reads the sequence bytes in place
    /// and only the record ids are copied (into the name table).
    pub fn build_with_scheme(
        subjects: &[SeqRecord],
        config: &MapperConfig,
        scheme: SketchScheme,
    ) -> Self {
        let params = config.jem_params().expect("invalid mapper configuration");
        scheme.validate(config.k).expect("invalid sketch scheme");
        let family = config.hash_family();
        let table = build_table_parallel_scheme(subjects, config.k, config.ell, scheme, &family);
        JemMapper {
            config: *config,
            params,
            scheme,
            family,
            table: table.into(),
            subject_names: subjects.iter().map(|s| s.id.clone()).collect(),
        }
    }

    /// Rebuild a mapper around an externally constructed table (the
    /// distributed driver gathers a global table and wraps it here).
    /// Assumes the paper's minimizer scheme.
    pub fn from_table(
        table: SketchTable,
        subject_names: Vec<String>,
        config: &MapperConfig,
    ) -> Self {
        Self::from_table_with_scheme(
            table,
            subject_names,
            config,
            SketchScheme::Minimizer { w: config.w },
        )
    }

    /// [`JemMapper::from_table`] with an explicit sketch scheme (must match
    /// the scheme the table was built with).
    pub fn from_table_with_scheme(
        table: SketchTable,
        subject_names: Vec<String>,
        config: &MapperConfig,
        scheme: SketchScheme,
    ) -> Self {
        Self::from_backend_with_scheme(table.into(), subject_names, config, scheme)
    }

    /// [`JemMapper::from_table_with_scheme`] over any [`TableBackend`] —
    /// the entry point of the flat (JEMIDX v4) load path, which wraps a
    /// zero-copy [`jem_index::FlatTable`] instead of a hash table.
    pub fn from_backend_with_scheme(
        table: TableBackend,
        subject_names: Vec<String>,
        config: &MapperConfig,
        scheme: SketchScheme,
    ) -> Self {
        let params = config.jem_params().expect("invalid mapper configuration");
        scheme.validate(config.k).expect("invalid sketch scheme");
        assert_eq!(table.trials(), config.trials, "table T must match config T");
        JemMapper {
            config: *config,
            params,
            scheme,
            family: config.hash_family(),
            table,
            subject_names,
        }
    }

    /// The sketch-position scheme in effect.
    pub fn scheme(&self) -> SketchScheme {
        self.scheme
    }

    /// The validated JEM parameters `(k, w, ℓ)` of this index.
    pub fn params(&self) -> JemParams {
        self.params
    }

    /// Sketch a sequence exactly as the index was built.
    fn sketch(&self, seq: &[u8]) -> JemSketch {
        sketch_by_scheme(
            seq,
            self.config.k,
            self.scheme,
            self.config.ell,
            &self.family,
        )
    }

    /// Number of subjects indexed.
    pub fn n_subjects(&self) -> usize {
        self.subject_names.len()
    }

    /// Name of subject `id`.
    pub fn subject_name(&self, id: SubjectId) -> &str {
        &self.subject_names[id as usize]
    }

    /// All subject names, indexed by [`SubjectId`].
    pub fn subject_names(&self) -> &[String] {
        &self.subject_names
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// Borrow the underlying table backend (inspection/ablation, shard
    /// partitioning, serialization).
    pub fn table(&self) -> &TableBackend {
        &self.table
    }

    /// A hit counter sized for this index (one per mapping thread).
    pub fn new_counter(&self) -> LazyHitCounter {
        LazyHitCounter::new(self.n_subjects())
    }

    /// Sketch a query sequence exactly as this index's subjects were
    /// sketched (same scheme, parameters and hash family). Out-of-crate
    /// drivers that re-partition the lookup structure — `jem-serve`'s
    /// sharded table — go through this so their collision sets are
    /// bit-identical to [`JemMapper::map_segment`]'s.
    pub fn sketch_segment(&self, seq: &[u8]) -> JemSketch {
        self.sketch(seq)
    }

    /// Allocation-free variant of [`JemMapper::sketch_segment`]: the sketch
    /// lands in `scratch` (retrieve it via [`MapScratch::parts`]).
    pub fn sketch_segment_into(&self, seq: &[u8], scratch: &mut MapScratch) {
        sketch_by_scheme_into(
            seq,
            self.config.k,
            self.scheme,
            self.config.ell,
            &self.family,
            &mut scratch.scratch,
            &mut scratch.sketch,
        );
    }

    /// Map one end segment (Algorithm 2, lines 4–8).
    ///
    /// Returns the best `(subject, hits)` or `None` if no trial collided.
    /// `qid` must be unique per query for the lazy counter's correctness.
    pub fn map_segment(
        &self,
        seg: &[u8],
        qid: u64,
        counter: &mut LazyHitCounter,
    ) -> Option<(SubjectId, u32)> {
        let mut scratch = MapScratch::new();
        self.map_segment_with(seg, qid, counter, &mut scratch)
    }

    /// [`JemMapper::map_segment`] with caller-provided scratch — the hot
    /// loop used by [`JemMapper::map_segments`] and the serve workers.
    /// Byte-identical results; no per-segment allocation once the scratch
    /// is warm.
    pub fn map_segment_with(
        &self,
        seg: &[u8],
        qid: u64,
        counter: &mut LazyHitCounter,
        scratch: &mut MapScratch,
    ) -> Option<(SubjectId, u32)> {
        self.sketch_segment_into(seg, scratch);
        let (sketch, trial_subjects) = scratch.parts();
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            // Hits_r[t] is a *set*: a subject colliding on several sketch
            // codes within the same trial still counts once for that trial.
            trial_subjects.clear();
            for &code in codes {
                self.table.lookup_into(t, code, trial_subjects);
            }
            counter.stats.probed += trial_subjects.len() as u64;
            trial_subjects.sort_unstable();
            trial_subjects.dedup();
            for &s in trial_subjects.iter() {
                counter.record(qid, s);
            }
        }
        counter.best(qid)
    }

    /// Map one end segment and return the top `x` candidate contigs,
    /// ordered by descending hit count (ties toward smaller ids).
    ///
    /// This implements the paper's proposed recall extension ("if we are to
    /// extend our method to report a fixed number, say top x hits per read,
    /// several of the missing contig hits could possibly be recovered").
    pub fn map_segment_topk(&self, seg: &[u8], x: usize) -> Vec<(SubjectId, u32)> {
        let mut scratch = MapScratch::new();
        self.map_segment_topk_with(seg, x, &mut scratch)
    }

    /// [`JemMapper::map_segment_topk`] with caller-provided scratch: the
    /// segment is sketched through the reused buffers (block encoder,
    /// winnow scratch, trial stack) instead of the allocating path, so a
    /// top-x sweep over many segments reuses one warm scratch. Identical
    /// ranking for every input.
    pub fn map_segment_topk_with(
        &self,
        seg: &[u8],
        x: usize,
        scratch: &mut MapScratch,
    ) -> Vec<(SubjectId, u32)> {
        self.sketch_segment_into(seg, scratch);
        let (sketch, trial_subjects) = scratch.parts();
        let mut counts: std::collections::HashMap<SubjectId, u32> =
            std::collections::HashMap::new();
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            trial_subjects.clear();
            for &code in codes {
                self.table.lookup_into(t, code, trial_subjects);
            }
            trial_subjects.sort_unstable();
            trial_subjects.dedup();
            for &s in trial_subjects.iter() {
                *counts.entry(s).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(SubjectId, u32)> = counts.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(x);
        ranked
    }

    /// Map prepared segments one by one (the per-rank inner loop of S4).
    ///
    /// Counter tallies ([`jem_index::hits::HitStats`]) accumulate locally in
    /// the batch's private counter and flush to the global recorder once at
    /// the end, so instrumentation adds no per-hit synchronization.
    pub fn map_segments(&self, segments: &[QuerySegment]) -> Vec<Mapping> {
        let rec = jem_obs::recorder();
        let _span = jem_obs::Span::enter(rec, "map/segments");
        let mut counter = self.new_counter();
        let mut scratch = MapScratch::new();
        let mut out = Vec::new();
        for (qid, seg) in segments.iter().enumerate() {
            if let Some((subject, hits)) =
                self.map_segment_with(&seg.seq, qid as u64, &mut counter, &mut scratch)
            {
                out.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits,
                });
            }
        }
        if rec.enabled() {
            let stats = counter.stats.take();
            rec.add("map.segments", segments.len() as u64);
            rec.add("map.mapped", out.len() as u64);
            rec.add("map.collisions_probed", stats.probed);
            rec.add("map.lazy_resets", stats.lazy_resets);
            rec.add("map.resets_skipped", stats.resets_skipped);
            rec.add("map.ties", stats.ties);
        }
        out
    }

    /// Full sequential query driver: segment every read, map every segment.
    pub fn map_reads(&self, reads: &[SeqRecord]) -> Vec<Mapping> {
        let _span = jem_obs::span("map");
        self.map_segments(&make_segments(reads, self.config.ell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sim::{contig_records, fragment_contigs, ContigProfile, Genome};
    use jem_sketch::SketchScheme;

    fn small_config() -> MapperConfig {
        // Small ℓ/w so modest test sequences produce useful sketches.
        MapperConfig {
            k: 12,
            w: 10,
            trials: 12,
            ell: 300,
            seed: 7,
        }
    }

    fn test_world() -> (Genome, Vec<SeqRecord>) {
        let genome = Genome::random(60_000, 0.5, 99);
        let contigs = fragment_contigs(
            &genome,
            &ContigProfile {
                error_rate: 0.0,
                ..ContigProfile::small_genome()
            },
            1,
        );
        (genome, contig_records(&contigs))
    }

    #[test]
    fn build_and_inspect() {
        let (_, subjects) = test_world();
        let n = subjects.len();
        let mapper = JemMapper::build(&subjects, &small_config());
        assert_eq!(mapper.n_subjects(), n);
        assert!(mapper.table().entry_count() > 0);
        assert_eq!(mapper.subject_name(0), "contig_0");
    }

    #[test]
    fn verbatim_window_maps_to_its_contig() {
        let (genome, subjects) = test_world();
        let mapper = JemMapper::build(&subjects, &small_config());
        // Take a query straight out of contig 3's interior.
        let contig = &subjects[3];
        let query = contig.seq[..300.min(contig.seq.len())].to_vec();
        let mut counter = mapper.new_counter();
        let (best, hits) = mapper
            .map_segment(&query, 0, &mut counter)
            .expect("must map");
        assert_eq!(best, 3, "verbatim window must map to its own contig");
        assert!(
            hits >= 8,
            "most of the 12 trials should collide, got {hits}"
        );
        let _ = genome;
    }

    #[test]
    fn unrelated_sequence_rarely_maps() {
        let (_, subjects) = test_world();
        let mapper = JemMapper::build(&subjects, &small_config());
        let alien = Genome::random(300, 0.5, 777).seq;
        let mut counter = mapper.new_counter();
        match mapper.map_segment(&alien, 0, &mut counter) {
            None => {}
            Some((_, hits)) => assert!(hits <= 2, "alien sequence collided on {hits} trials"),
        }
    }

    #[test]
    fn map_reads_end_to_end() {
        let (genome, subjects) = test_world();
        let mapper = JemMapper::build(&subjects, &small_config());
        let profile = jem_sim::HifiProfile {
            coverage: 2.0,
            mean_len: 5_000,
            std_len: 1_000,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = jem_sim::read_records(&jem_sim::simulate_hifi(&genome, &profile, 5));
        let mappings = mapper.map_reads(&reads);
        assert!(!mappings.is_empty());
        // Every mapping refers to a real read and subject.
        for m in &mappings {
            assert!((m.read_idx as usize) < reads.len());
            assert!((m.subject as usize) < mapper.n_subjects());
            assert!(m.hits >= 1);
            assert!(m.hits as usize <= mapper.config().trials);
        }
        // Most segments should find some hit (contigs cover ~90% of genome).
        let n_segments = make_segments(&reads, mapper.config().ell).len();
        assert!(
            mappings.len() * 10 >= n_segments * 5,
            "only {}/{} segments mapped",
            mappings.len(),
            n_segments
        );
    }

    #[test]
    fn topk_contains_best_hit_first() {
        let (_, subjects) = test_world();
        let mapper = JemMapper::build(&subjects, &small_config());
        let query = subjects[2].seq[..300.min(subjects[2].seq.len())].to_vec();
        let mut counter = mapper.new_counter();
        let best = mapper.map_segment(&query, 0, &mut counter).expect("maps");
        let top = mapper.map_segment_topk(&query, 3);
        assert!(!top.is_empty());
        assert_eq!(top[0], best, "top-1 must agree with the best-hit driver");
        assert!(top.len() <= 3);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1, "top-k must be sorted by hits");
        }
    }

    #[test]
    fn from_table_round_trip() {
        let (_, subjects) = test_world();
        let config = small_config();
        let built = JemMapper::build(&subjects, &config);
        let names: Vec<String> = subjects.iter().map(|s| s.id.clone()).collect();
        let rebuilt = JemMapper::from_table(built.table().to_sketch_table(), names, &config);
        let query = subjects[1].seq[..250].to_vec();
        let mut c1 = built.new_counter();
        let mut c2 = rebuilt.new_counter();
        assert_eq!(
            built.map_segment(&query, 0, &mut c1),
            rebuilt.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn syncmer_scheme_maps_verbatim_windows_home() {
        let (_, subjects) = test_world();
        let config = MapperConfig {
            k: 16,
            ..small_config()
        };
        let mapper =
            JemMapper::build_with_scheme(&subjects, &config, SketchScheme::ClosedSyncmer { s: 11 });
        assert_eq!(mapper.scheme(), SketchScheme::ClosedSyncmer { s: 11 });
        let query = subjects[3].seq[..300.min(subjects[3].seq.len())].to_vec();
        let mut counter = mapper.new_counter();
        let (best, hits) = mapper
            .map_segment(&query, 0, &mut counter)
            .expect("must map");
        assert_eq!(best, 3);
        assert!(
            hits >= 8,
            "syncmer sketches should collide on most trials, got {hits}"
        );
    }

    #[test]
    #[should_panic(expected = "invalid sketch scheme")]
    fn invalid_scheme_rejected_at_build() {
        JemMapper::build_with_scheme(&[], &small_config(), SketchScheme::ClosedSyncmer { s: 99 });
    }

    #[test]
    fn empty_inputs() {
        let mapper = JemMapper::build(&[], &small_config());
        assert_eq!(mapper.n_subjects(), 0);
        let mappings = mapper.map_reads(&[]);
        assert!(mappings.is_empty());
        // Query against an empty index maps nothing.
        let mut counter = mapper.new_counter();
        assert_eq!(
            mapper.map_segment(b"ACGTACGTACGTACGT", 0, &mut counter),
            None
        );
    }
}
