//! Query segmentation: extracting long-read end segments (paper §III-B-1).
//!
//! Instead of sketching the whole long read, only its first and last ℓ
//! bases are mapped. The revised query set `Q` therefore holds up to `2m`
//! sequences of length ℓ. Reads no longer than ℓ contribute a single
//! segment (their prefix and suffix coincide).

use jem_seq::SeqRecord;

/// Which end of a long read a segment came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReadEnd {
    /// First ℓ bases.
    Prefix,
    /// Last ℓ bases.
    Suffix,
}

impl std::fmt::Display for ReadEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadEnd::Prefix => f.write_str("prefix"),
            ReadEnd::Suffix => f.write_str("suffix"),
        }
    }
}

/// One query end segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuerySegment {
    /// Index of the source read in the input read list.
    pub read_idx: u32,
    /// Which end this segment is.
    pub end: ReadEnd,
    /// The segment bases (≤ ℓ of them).
    pub seq: Vec<u8>,
}

impl QuerySegment {
    /// A stable key identifying this segment: `"<read_id>/<end>"`.
    pub fn key(&self, reads: &[SeqRecord]) -> String {
        format!("{}/{}", reads[self.read_idx as usize].id, self.end)
    }
}

/// Extract end segments of length ℓ from every read.
///
/// Empty reads are skipped; reads with `len ≤ ℓ` yield only a prefix
/// segment (the suffix would be the identical sequence).
pub fn make_segments(reads: &[SeqRecord], ell: usize) -> Vec<QuerySegment> {
    assert!(ell > 0, "segment length ell must be positive");
    let mut out = Vec::with_capacity(reads.len() * 2);
    for (i, r) in reads.iter().enumerate() {
        if r.seq.is_empty() {
            continue;
        }
        let idx = u32::try_from(i).expect("read count exceeds u32");
        if r.seq.len() <= ell {
            out.push(QuerySegment {
                read_idx: idx,
                end: ReadEnd::Prefix,
                seq: r.seq.clone(),
            });
        } else {
            out.push(QuerySegment {
                read_idx: idx,
                end: ReadEnd::Prefix,
                seq: r.seq[..ell].to_vec(),
            });
            out.push(QuerySegment {
                read_idx: idx,
                end: ReadEnd::Suffix,
                seq: r.seq[r.seq.len() - ell..].to_vec(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(id: &str, n: usize) -> SeqRecord {
        SeqRecord::new(id, (0..n).map(|i| b"ACGT"[i % 4]).collect::<Vec<u8>>())
    }

    #[test]
    fn long_read_yields_two_segments() {
        let reads = vec![read("r1", 5000)];
        let segs = make_segments(&reads, 1000);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].end, ReadEnd::Prefix);
        assert_eq!(segs[1].end, ReadEnd::Suffix);
        assert_eq!(segs[0].seq, reads[0].seq[..1000].to_vec());
        assert_eq!(segs[1].seq, reads[0].seq[4000..].to_vec());
        assert_eq!(segs[0].key(&reads), "r1/prefix");
        assert_eq!(segs[1].key(&reads), "r1/suffix");
    }

    #[test]
    fn short_read_yields_one_segment() {
        let reads = vec![read("s", 800)];
        let segs = make_segments(&reads, 1000);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].end, ReadEnd::Prefix);
        assert_eq!(segs[0].seq.len(), 800);
    }

    #[test]
    fn boundary_read_exactly_ell() {
        let reads = vec![read("b", 1000)];
        let segs = make_segments(&reads, 1000);
        assert_eq!(segs.len(), 1, "len == ell means prefix == suffix");
    }

    #[test]
    fn empty_reads_skipped() {
        let reads = vec![SeqRecord::new("e", Vec::new()), read("x", 3000)];
        let segs = make_segments(&reads, 1000);
        assert_eq!(segs.len(), 2);
        assert!(segs.iter().all(|s| s.read_idx == 1));
    }

    #[test]
    fn segment_count_bound() {
        let reads: Vec<SeqRecord> = (0..10)
            .map(|i| read(&format!("r{i}"), 100 + i * 400))
            .collect();
        let segs = make_segments(&reads, 1000);
        assert!(segs.len() <= 2 * reads.len());
        assert!(segs.iter().all(|s| s.seq.len() <= 1000));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ell_rejected() {
        make_segments(&[], 0);
    }
}
