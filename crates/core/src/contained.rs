//! Whole-read tiled mapping — the paper's contained-contig extension.
//!
//! End-segment mapping (§III-B-1) deliberately ignores read interiors,
//! which is right for scaffolding but, as the paper notes, "may not apply
//! to cases where a contig may be completely contained within an interior
//! region of a long read. In such cases, an extension of the approach will
//! be needed." This module is that extension: ℓ-length windows are tiled
//! across the *whole* read at a configurable stride and each window is
//! mapped like an end segment, so contigs landing anywhere inside the read
//! are recovered.

use crate::mapper::JemMapper;
use jem_index::SubjectId;

/// One mapped window of a tiled read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TiledMapping {
    /// Window start offset on the read.
    pub offset: u32,
    /// Best-hit subject for this window.
    pub subject: SubjectId,
    /// Trial hits supporting it.
    pub hits: u32,
}

/// A subject recovered by tiling, with the window span that found it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContainedHit {
    /// The subject (contig).
    pub subject: SubjectId,
    /// First window offset where the subject won.
    pub first_offset: u32,
    /// Last window offset (start) where the subject won.
    pub last_offset: u32,
    /// Best per-window hit count.
    pub best_hits: u32,
    /// Number of windows the subject won.
    pub windows: u32,
}

impl JemMapper {
    /// Map ℓ-length windows tiled across the whole read at `stride` bases
    /// (`stride = ℓ/2` gives every position two chances; `stride = ℓ`
    /// gives disjoint tiles). Returns one entry per mapped window, in
    /// offset order. The final partial window is included when at least
    /// `k` bases remain.
    pub fn map_read_tiled(&self, read: &[u8], stride: usize) -> Vec<TiledMapping> {
        assert!(stride >= 1, "stride must be positive");
        let ell = self.config().ell;
        let mut counter = self.new_counter();
        let mut out = Vec::new();
        let mut qid = 0u64;
        let mut offset = 0usize;
        loop {
            let end = (offset + ell).min(read.len());
            if end <= offset + self.config().k.saturating_sub(1) {
                break;
            }
            if let Some((subject, hits)) = self.map_segment(&read[offset..end], qid, &mut counter) {
                out.push(TiledMapping {
                    offset: offset as u32,
                    subject,
                    hits,
                });
            }
            qid += 1;
            if end == read.len() {
                break;
            }
            offset += stride;
        }
        out
    }

    /// Aggregate tiled mappings into per-subject hits — every contig the
    /// read touches, including those contained entirely in its interior.
    /// Sorted by first window offset (i.e. approximate order along the read).
    pub fn contained_hits(&self, read: &[u8], stride: usize) -> Vec<ContainedHit> {
        let tiles = self.map_read_tiled(read, stride);
        let mut agg: std::collections::HashMap<SubjectId, ContainedHit> =
            std::collections::HashMap::new();
        for t in &tiles {
            agg.entry(t.subject)
                .and_modify(|h| {
                    h.last_offset = t.offset;
                    h.best_hits = h.best_hits.max(t.hits);
                    h.windows += 1;
                })
                .or_insert(ContainedHit {
                    subject: t.subject,
                    first_offset: t.offset,
                    last_offset: t.offset,
                    best_hits: t.hits,
                    windows: 1,
                });
        }
        let mut hits: Vec<ContainedHit> = agg.into_values().collect();
        hits.sort_unstable_by_key(|h| (h.first_offset, h.subject));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use crate::segment::ReadEnd;
    use jem_seq::SeqRecord;
    use jem_sim::Genome;

    /// A read whose interior fully contains a small contig that neither
    /// end segment overlaps.
    fn contained_world() -> (JemMapper, Vec<u8>, MapperConfig) {
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 10,
            ell: 500,
            seed: 4,
        };
        let genome = Genome::random(10_000, 0.5, 55);
        // Read spans genome[2000..8000]; the contained contig is
        // genome[4000..5000] — entirely inside, >ℓ away from both ends.
        let read = genome.seq[2000..8000].to_vec();
        let subjects = vec![
            SeqRecord::new("left", genome.seq[1500..2900].to_vec()),
            SeqRecord::new("contained", genome.seq[4000..5000].to_vec()),
            SeqRecord::new("right", genome.seq[7200..8800].to_vec()),
        ];
        (JemMapper::build(&subjects, &config), read, config)
    }

    #[test]
    fn end_segments_miss_the_contained_contig() {
        let (mapper, read, _) = contained_world();
        let reads = vec![SeqRecord::new("r", read)];
        let mappings = mapper.map_reads(&reads);
        assert!(
            mappings.iter().all(|m| m.subject != 1),
            "end segments must not see the interior contig"
        );
        // But they do find the flanking contigs.
        assert!(mappings
            .iter()
            .any(|m| m.end == ReadEnd::Prefix && m.subject == 0));
        assert!(mappings
            .iter()
            .any(|m| m.end == ReadEnd::Suffix && m.subject == 2));
    }

    #[test]
    fn tiling_recovers_the_contained_contig() {
        let (mapper, read, config) = contained_world();
        let hits = mapper.contained_hits(&read, config.ell / 2);
        let subjects: Vec<SubjectId> = hits.iter().map(|h| h.subject).collect();
        assert!(
            subjects.contains(&1),
            "tiled mapping must recover the contained contig: {hits:?}"
        );
        assert!(subjects.contains(&0) && subjects.contains(&2));
        // Order along the read: left, contained, right.
        assert_eq!(subjects, vec![0, 1, 2]);
        // The contained contig's winning windows sit in the interior.
        let c = hits.iter().find(|h| h.subject == 1).expect("present");
        assert!(c.first_offset >= 1000, "offset {}", c.first_offset);
        assert!((c.last_offset as usize) <= read.len() - 1000);
    }

    #[test]
    fn tiled_windows_are_offset_ordered_and_bounded() {
        let (mapper, read, config) = contained_world();
        let tiles = mapper.map_read_tiled(&read, 250);
        assert!(!tiles.is_empty());
        for pair in tiles.windows(2) {
            assert!(pair[0].offset < pair[1].offset);
        }
        for t in &tiles {
            assert!((t.offset as usize) < read.len());
            assert!(t.hits >= 1 && t.hits as usize <= config.trials);
        }
    }

    #[test]
    fn short_read_single_window() {
        let (mapper, read, _) = contained_world();
        let tiles = mapper.map_read_tiled(&read[..300], 250);
        assert!(tiles.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let (mapper, read, _) = contained_world();
        mapper.map_read_tiled(&read, 0);
    }
}
