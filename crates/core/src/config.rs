//! Mapper configuration (the paper's default parameter set).

use jem_seq::SeqError;
use jem_sketch::{HashFamily, JemParams};
use serde::{Deserialize, Serialize};

/// Configuration of a JEM-mapper run.
///
/// Defaults are the paper's (§IV-A-c): `k = 16`, `T = 30`, `w = 100`,
/// `ℓ = 1000`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapperConfig {
    /// k-mer size.
    pub k: usize,
    /// Minimizer window size `w` (consecutive k-mers per window).
    pub w: usize,
    /// Number of MinHash trials `T`.
    pub trials: usize,
    /// End-segment / interval length ℓ in bases.
    pub ell: usize,
    /// Seed for the a-priori generated hash-function constants.
    pub seed: u64,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            k: 16,
            w: 100,
            trials: 30,
            ell: 1000,
            seed: 0x4a45_4d4d,
        }
    }
}

impl MapperConfig {
    /// Validate and expose the embedded sketch parameters.
    pub fn jem_params(&self) -> Result<JemParams, SeqError> {
        if self.trials == 0 {
            return Err(SeqError::InvalidParameter("trials T must be >= 1".into()));
        }
        JemParams::new(self.k, self.w, self.ell)
    }

    /// Generate the `T` hash functions for this configuration.
    pub fn hash_family(&self) -> HashFamily {
        HashFamily::generate(self.trials, self.seed)
    }

    /// Same configuration with a different trial count (Fig. 6 sweeps).
    pub fn with_trials(mut self, t: usize) -> Self {
        self.trials = t;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MapperConfig::default();
        assert_eq!((c.k, c.w, c.trials, c.ell), (16, 100, 30, 1000));
        assert!(c.jem_params().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MapperConfig {
            trials: 0,
            ..Default::default()
        }
        .jem_params()
        .is_err());
        assert!(MapperConfig {
            k: 0,
            ..Default::default()
        }
        .jem_params()
        .is_err());
        assert!(MapperConfig {
            k: 33,
            ..Default::default()
        }
        .jem_params()
        .is_err());
        assert!(MapperConfig {
            w: 0,
            ..Default::default()
        }
        .jem_params()
        .is_err());
        assert!(MapperConfig {
            ell: 0,
            ..Default::default()
        }
        .jem_params()
        .is_err());
    }

    #[test]
    fn family_is_deterministic_and_sized() {
        let c = MapperConfig::default();
        let f = c.hash_family();
        assert_eq!(f.len(), 30);
        assert_eq!(f.get(0), c.hash_family().get(0));
    }

    #[test]
    fn with_trials_adjusts_only_t() {
        let c = MapperConfig::default().with_trials(150);
        assert_eq!(c.trials, 150);
        assert_eq!(c.k, 16);
    }
}
