//! Shared-memory parallel query driver (rayon).
//!
//! Segments are distributed over the rayon pool in chunks; each worker owns
//! a private lazy hit counter (the counter is inherently per-query state, so
//! sharing one would serialize everything). Output order is normalized to
//! `(read_idx, end)` so results are identical to the sequential driver.

use crate::mapper::{JemMapper, Mapping};
use crate::segment::make_segments;
use jem_seq::SeqRecord;
use rayon::prelude::*;

/// Map all reads in parallel. Produces exactly the sequential driver's
/// result set (order-normalized).
pub fn map_reads_parallel(mapper: &JemMapper, reads: &[SeqRecord]) -> Vec<Mapping> {
    let segments = make_segments(reads, mapper.config().ell);
    let chunk = segments
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);
    let mut mappings: Vec<Mapping> = segments
        .par_chunks(chunk)
        .flat_map_iter(|chunk| mapper.map_segments(chunk))
        .collect();
    mappings.sort_unstable_by_key(|m| (m.read_idx, m.end));
    mappings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    #[test]
    fn parallel_matches_sequential() {
        let genome = Genome::random(80_000, 0.5, 3);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 4);
        let config = MapperConfig {
            k: 12,
            w: 10,
            trials: 10,
            ell: 400,
            seed: 2,
        };
        let mapper = JemMapper::build(contig_records(&contigs), &config);
        let profile = HifiProfile {
            coverage: 3.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 6));

        let mut sequential = mapper.map_reads(&reads);
        sequential.sort_unstable_by_key(|m| (m.read_idx, m.end));
        let parallel = map_reads_parallel(&mapper, &reads);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_read_set() {
        let config = MapperConfig {
            k: 8,
            w: 4,
            trials: 4,
            ell: 100,
            seed: 1,
        };
        let mapper = JemMapper::build(Vec::new(), &config);
        assert!(map_reads_parallel(&mapper, &[]).is_empty());
    }
}
