//! Shared-memory parallel query driver (rayon).
//!
//! Segments are distributed over the rayon pool in chunks; each worker owns
//! a private lazy hit counter (the counter is inherently per-query state, so
//! sharing one would serialize everything). Output order is normalized to
//! `(read_idx, end)` so results are identical to the sequential driver.

use crate::mapper::{JemMapper, Mapping};
use crate::segment::make_segments;
use jem_seq::SeqRecord;
use rayon::prelude::*;
use std::sync::Mutex;
use std::time::Instant;

/// Map all reads in parallel. Produces exactly the sequential driver's
/// result set (order-normalized). Parallel width follows the rayon pool.
pub fn map_reads_parallel(mapper: &JemMapper, reads: &[SeqRecord]) -> Vec<Mapping> {
    map_reads_parallel_with(mapper, reads, None)
}

/// [`map_reads_parallel`] with an explicit bound on parallel width.
///
/// `threads = Some(n)` splits the segment list into exactly `n` chunks, so
/// at most `n` rayon tasks run concurrently regardless of pool size (the
/// CLI's `--threads` flag additionally sizes the pool itself via
/// `RAYON_NUM_THREADS`; bounding the chunk count here keeps the limit
/// honest even when the pool was already initialized larger). `None` uses
/// one chunk per pool worker.
pub fn map_reads_parallel_with(
    mapper: &JemMapper,
    reads: &[SeqRecord],
    threads: Option<usize>,
) -> Vec<Mapping> {
    let rec = jem_obs::recorder();
    let _span = jem_obs::Span::enter(rec, "map/parallel");
    let segments = make_segments(reads, mapper.config().ell);
    let lanes = threads.unwrap_or_else(rayon::current_num_threads).max(1);
    let chunk = segments.len().div_ceil(lanes).max(1);
    // Per-chunk wall-clock, collected only when a recorder is live. The
    // spread of these is the load-imbalance signal for the shared-memory
    // driver (the distributed analogue is the per-rank step breakdown).
    let chunk_ns: Option<Mutex<Vec<u64>>> = rec.enabled().then(|| Mutex::new(Vec::new()));
    let mut mappings: Vec<Mapping> = segments
        .par_chunks(chunk)
        .flat_map_iter(|chunk_segs| {
            let start = chunk_ns.is_some().then(Instant::now);
            let out = mapper.map_segments(chunk_segs);
            if let (Some(times), Some(start)) = (&chunk_ns, start) {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                rec.observe("map.chunk_ns", ns);
                rec.observe("map.chunk_segments", chunk_segs.len() as u64);
                times.lock().expect("chunk timing lock poisoned").push(ns);
            }
            out
        })
        .collect();
    if let Some(times) = chunk_ns {
        let times = times.into_inner().expect("chunk timing lock poisoned");
        if !times.is_empty() {
            let max = *times.iter().max().expect("non-empty");
            let mean = times.iter().sum::<u64>() / times.len() as u64;
            // max/mean as permille: 1000 = perfectly balanced chunks.
            let permille = (max * 1000).checked_div(mean).unwrap_or(1000);
            rec.observe("map.imbalance_permille", permille);
        }
    }
    // Total order (see `Mapping`'s Ord doc): deterministic output without
    // relying on per-driver (read_idx, end) uniqueness.
    mappings.sort_unstable();
    mappings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    #[test]
    fn parallel_matches_sequential() {
        let genome = Genome::random(80_000, 0.5, 3);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 4);
        let config = MapperConfig {
            k: 12,
            w: 10,
            trials: 10,
            ell: 400,
            seed: 2,
        };
        let mapper = JemMapper::build(&contig_records(&contigs), &config);
        let profile = HifiProfile {
            coverage: 3.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 6));

        let mut sequential = mapper.map_reads(&reads);
        sequential.sort_unstable();
        let parallel = map_reads_parallel(&mapper, &reads);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn thread_bound_does_not_change_results() {
        let genome = Genome::random(40_000, 0.5, 11);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 12);
        let config = MapperConfig {
            k: 12,
            w: 10,
            trials: 8,
            ell: 400,
            seed: 5,
        };
        let mapper = JemMapper::build(&contig_records(&contigs), &config);
        let profile = HifiProfile {
            coverage: 2.0,
            mean_len: 3_000,
            std_len: 600,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 13));
        let unbounded = map_reads_parallel(&mapper, &reads);
        for threads in [1usize, 2, 7, 64] {
            assert_eq!(
                map_reads_parallel_with(&mapper, &reads, Some(threads)),
                unbounded,
                "threads = {threads} must not change mappings"
            );
        }
    }

    #[test]
    fn empty_read_set() {
        let config = MapperConfig {
            k: 8,
            w: 4,
            trials: 4,
            ell: 100,
            seed: 1,
        };
        let mapper = JemMapper::build(&[], &config);
        assert!(map_reads_parallel(&mapper, &[]).is_empty());
    }
}
