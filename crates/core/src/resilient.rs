//! The fault-tolerant distributed driver: S1–S4 under an adversarial
//! [`FaultPlan`], with block reassignment, corrupt-payload re-request, and
//! an optional restartable checkpoint.
//!
//! Recovery model (all work units are the `p` original S1 *blocks*, so the
//! output is independent of which rank ends up computing which block):
//!
//! * **Crashes** — a rank that dies takes its assigned blocks with it; the
//!   driver reassigns the pending blocks round-robin over the surviving
//!   ranks and replays them in a `"<step> retry n"` superstep. Retries are
//!   bounded by [`ResilienceOptions::max_retries`] and counted in the
//!   report's [`FaultStats`](jem_psim::FaultStats).
//! * **Corruption** — subject sketches travel as framed, checksummed
//!   streams ([`SketchTable::encode_framed`]); a garbled frame fails the
//!   fallible decode, leaves the global table untouched, and is
//!   re-requested from a surviving rank.
//! * **Stragglers** — need no recovery; their inflated compute time simply
//!   degrades the simulated makespan in the [`RunReport`](jem_psim::RunReport).
//! * **Checkpoint** — after the sketch-gather barrier the replicated index
//!   can be written with the persist encoding; a later run pointed at the
//!   same file skips S1–S3 entirely (a corrupt or mismatched checkpoint is
//!   ignored, never trusted).
//!
//! Invariant: any plan that leaves at least one rank alive yields mappings
//! identical to the fault-free [`run_distributed`](crate::run_distributed).
//! This holds because sketch-table union is order-independent (subject
//! lists are sorted-unique) and mappings are finally sorted by
//! `(read_idx, end)`.

use crate::config::MapperConfig;
use crate::distributed::DistributedOutcome;
use crate::mapper::{JemMapper, Mapping};
use crate::persist::{load_index, save_index};
use crate::segment::make_segments;
use jem_index::{SketchTable, SubjectId};
use jem_psim::{block_range, corrupt_u64s, CostModel, ExecMode, FaultPlan, RankOutcome, World};
use jem_seq::{SeqError, SeqRecord};
use jem_sketch::{sketch_by_jem_into, JemSketch, SketchScratch};
use std::fmt;
use std::path::PathBuf;

/// Knobs of the resilient driver.
#[derive(Clone, Debug)]
pub struct ResilienceOptions {
    /// Faults to inject (empty plan = behave like the plain driver).
    pub plan: FaultPlan,
    /// Retry supersteps allowed per pipeline step before giving up.
    pub max_retries: usize,
    /// Write the replicated index here after the sketch-gather barrier; if
    /// the file already holds a matching index, S1–S3 are skipped.
    pub checkpoint: Option<PathBuf>,
}

impl Default for ResilienceOptions {
    fn default() -> Self {
        ResilienceOptions {
            plan: FaultPlan::none(),
            max_retries: 3,
            checkpoint: None,
        }
    }
}

/// Unrecoverable failure of a resilient run.
#[derive(Debug)]
pub enum ResilienceError {
    /// Every rank crashed — nobody is left to reassign work to.
    AllRanksFailed {
        /// Pipeline step at which the last rank died.
        step: String,
    },
    /// A step kept failing past [`ResilienceOptions::max_retries`].
    RetriesExhausted {
        /// Pipeline step that could not complete.
        step: String,
        /// Attempts made (initial + retries).
        attempts: usize,
    },
    /// The checkpoint file could not be written.
    Checkpoint(SeqError),
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::AllRanksFailed { step } => {
                write!(
                    f,
                    "all ranks failed at step {step:?}; no survivor to recover on"
                )
            }
            ResilienceError::RetriesExhausted { step, attempts } => {
                write!(
                    f,
                    "step {step:?} still incomplete after {attempts} attempts"
                )
            }
            ResilienceError::Checkpoint(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Driver-side recovery counters, merged into the report's `FaultStats`.
#[derive(Default)]
struct Recovery {
    retries: usize,
    reassigned: usize,
    re_requests: usize,
}

/// Run per-block work under the fault plan, reassigning blocks of failed
/// ranks to survivors until every block has a result. Outcomes that are not
/// `Ok` (crashes — and corrupted payloads at steps with no transport
/// framing) are redone from scratch.
fn retry_blocks<T: Send>(
    world: &mut World,
    step: &str,
    n_blocks: usize,
    max_retries: usize,
    rec: &mut Recovery,
    f: impl Fn(usize) -> T + Sync,
) -> Result<Vec<T>, ResilienceError> {
    let mut done: Vec<Option<T>> = (0..n_blocks).map(|_| None).collect();
    let mut pending: Vec<usize> = (0..n_blocks).collect();
    let mut attempt = 0usize;
    while !pending.is_empty() {
        if attempt > max_retries {
            return Err(ResilienceError::RetriesExhausted {
                step: step.to_string(),
                attempts: attempt,
            });
        }
        let alive = world.alive_ranks();
        if alive.is_empty() {
            return Err(ResilienceError::AllRanksFailed {
                step: step.to_string(),
            });
        }
        // Round-robin over survivors; with everyone alive and all blocks
        // pending this is the identity assignment (block b → rank b).
        let mut assign: Vec<Vec<usize>> = vec![Vec::new(); world.ranks()];
        for (i, &b) in pending.iter().enumerate() {
            assign[alive[i % alive.len()]].push(b);
        }
        let name = if attempt == 0 {
            step.to_string()
        } else {
            rec.retries += 1;
            rec.reassigned += pending.len();
            format!("{step} retry {attempt}")
        };
        let outcomes = world.superstep_faulty(&name, |rank| {
            assign[rank].iter().map(|&b| f(b)).collect::<Vec<T>>()
        });
        let mut still = Vec::new();
        for (rank, outcome) in outcomes.into_iter().enumerate() {
            match outcome.ok() {
                Some(vals) => {
                    for (&b, v) in assign[rank].iter().zip(vals) {
                        done[b] = Some(v);
                    }
                }
                None => still.extend(assign[rank].iter().copied()),
            }
        }
        pending = still;
        attempt += 1;
    }
    Ok(done
        .into_iter()
        .map(|o| o.expect("loop exits only when all blocks are done"))
        .collect())
}

/// Try to resume from a checkpoint: the file must load, and must describe
/// exactly this run's configuration and subject set. Anything else —
/// missing file, corrupt frame, stale contigs — means "compute from
/// scratch"; a checkpoint is an optimization, never an authority.
fn try_resume(
    path: &std::path::Path,
    subjects: &[SeqRecord],
    config: &MapperConfig,
) -> Option<JemMapper> {
    let mut file = std::fs::File::open(path).ok()?;
    let mapper = load_index(&mut file).ok()?;
    if mapper.config() != config || mapper.n_subjects() != subjects.len() {
        return None;
    }
    let names_match = subjects
        .iter()
        .enumerate()
        .all(|(i, s)| mapper.subject_name(i as SubjectId) == s.id);
    names_match.then_some(mapper)
}

/// Run the distributed L2C mapping on `p` simulated ranks under a fault
/// plan, recovering from crashes and corrupted payloads.
///
/// With the empty plan this produces exactly the output and step names of
/// [`run_distributed`](crate::run_distributed); under any plan that leaves
/// at least one rank alive, the mappings are *identical* to the fault-free
/// run and the report's fault counters record the recovery work.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed_resilient(
    subjects: &[SeqRecord],
    reads: &[SeqRecord],
    config: &MapperConfig,
    p: usize,
    cost: CostModel,
    mode: ExecMode,
    opts: &ResilienceOptions,
) -> Result<DistributedOutcome, ResilienceError> {
    let params = config.jem_params().expect("invalid mapper configuration");
    let family = config.hash_family();
    let mut world = World::new(p, cost)
        .with_mode(mode)
        .with_faults(opts.plan.clone());
    let mut rec = Recovery::default();
    let seed = opts.plan.corruption_seed();

    let resumed = opts
        .checkpoint
        .as_deref()
        .and_then(|path| try_resume(path, subjects, config));

    let mapper = if let Some(mapper) = resumed {
        mapper
    } else {
        // S1 — input load, blockwise so lost blocks can be replayed.
        let blocks: Vec<(Vec<SeqRecord>, Vec<SeqRecord>)> = retry_blocks(
            &mut world,
            "input load",
            p,
            opts.max_retries,
            &mut rec,
            |b| {
                let s_range = block_range(p, subjects.len(), b);
                let q_range = block_range(p, reads.len(), b);
                (subjects[s_range].to_vec(), reads[q_range].to_vec())
            },
        )?;

        // S2 — subject sketch. Frames of corrupt-flagged ranks are garbled
        // at the delivery boundary, exactly like wire damage; detection is
        // the decoder's job, not the injector's.
        let sketch_frame = |b: usize| {
            let s_range = block_range(p, subjects.len(), b);
            let mut local = SketchTable::new(config.trials);
            let mut scratch = SketchScratch::new();
            let mut sketch = JemSketch::default();
            for (offset, rec) in blocks[b].0.iter().enumerate() {
                let id = (s_range.start + offset) as SubjectId;
                sketch_by_jem_into(&rec.seq, params, &family, &mut scratch, &mut sketch);
                local.insert_trial_lists(&sketch.per_trial, id);
            }
            local.encode_framed()
        };
        let mut frames: Vec<Option<Vec<u64>>> = (0..p).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..p).collect();
        let mut attempt = 0usize;
        while !pending.is_empty() {
            if attempt > opts.max_retries {
                return Err(ResilienceError::RetriesExhausted {
                    step: "subject sketch".to_string(),
                    attempts: attempt,
                });
            }
            let alive = world.alive_ranks();
            if alive.is_empty() {
                return Err(ResilienceError::AllRanksFailed {
                    step: "subject sketch".to_string(),
                });
            }
            let mut assign: Vec<Vec<usize>> = vec![Vec::new(); p];
            for (i, &b) in pending.iter().enumerate() {
                assign[alive[i % alive.len()]].push(b);
            }
            let name = if attempt == 0 {
                "subject sketch".to_string()
            } else {
                rec.retries += 1;
                rec.reassigned += pending.len();
                format!("subject sketch retry {attempt}")
            };
            let outcomes = world.superstep_faulty(&name, |rank| {
                assign[rank]
                    .iter()
                    .map(|&b| sketch_frame(b))
                    .collect::<Vec<Vec<u64>>>()
            });
            let mut still = Vec::new();
            for (rank, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    RankOutcome::Ok(vals) => {
                        for (&b, frame) in assign[rank].iter().zip(vals) {
                            frames[b] = Some(frame);
                        }
                    }
                    RankOutcome::Corrupt(vals) => {
                        for (&b, mut frame) in assign[rank].iter().zip(vals) {
                            corrupt_u64s(&mut frame, seed ^ b as u64);
                            frames[b] = Some(frame);
                        }
                    }
                    RankOutcome::Failed => still.extend(assign[rank].iter().copied()),
                }
            }
            pending = still;
            attempt += 1;
        }
        let frames: Vec<Vec<u64>> = frames
            .into_iter()
            .map(|f| f.expect("all frames delivered"))
            .collect();

        // S3 — gather the framed streams, then build the replicated global
        // table. A frame that fails its checksum or structural validation
        // leaves the table untouched (decode is atomic) and is re-requested.
        let gather_bytes: usize = frames.iter().map(|f| f.len() * 8).sum();
        world.charge_comm("sketch gather", gather_bytes);
        let (mut global, mut bad) = world.superstep_replicated("global table build", || {
            let mut g = SketchTable::new(config.trials);
            let mut bad = Vec::new();
            for (b, frame) in frames.iter().enumerate() {
                if g.decode_framed_into(frame).is_err() {
                    bad.push(b);
                }
            }
            (g, bad)
        });
        let mut round = 0usize;
        while !bad.is_empty() {
            round += 1;
            if round > opts.max_retries {
                return Err(ResilienceError::RetriesExhausted {
                    step: "sketch re-request".to_string(),
                    attempts: round - 1,
                });
            }
            let alive = world.alive_ranks();
            if alive.is_empty() {
                return Err(ResilienceError::AllRanksFailed {
                    step: "sketch re-request".to_string(),
                });
            }
            rec.re_requests += bad.len();
            let mut assign: Vec<Vec<usize>> = vec![Vec::new(); p];
            for (i, &b) in bad.iter().enumerate() {
                assign[alive[i % alive.len()]].push(b);
            }
            let outcomes = world.superstep_faulty(&format!("sketch re-request {round}"), |rank| {
                assign[rank]
                    .iter()
                    .map(|&b| sketch_frame(b))
                    .collect::<Vec<Vec<u64>>>()
            });
            let mut redelivered: Vec<(usize, Vec<u64>)> = Vec::new();
            let mut next_bad = Vec::new();
            for (rank, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    RankOutcome::Ok(vals) => {
                        redelivered.extend(assign[rank].iter().copied().zip(vals));
                    }
                    RankOutcome::Corrupt(vals) => {
                        for (&b, mut frame) in assign[rank].iter().zip(vals) {
                            // Vary the damage per round so a repeated fault
                            // does not replay byte-identical garbage.
                            corrupt_u64s(&mut frame, seed ^ (b as u64) ^ ((round as u64) << 32));
                            redelivered.push((b, frame));
                        }
                    }
                    RankOutcome::Failed => next_bad.extend(assign[rank].iter().copied()),
                }
            }
            let resend_bytes: usize = redelivered.iter().map(|(_, f)| f.len() * 8).sum();
            world.charge_comm("sketch re-request comm", resend_bytes);
            for (b, frame) in redelivered {
                if global.decode_framed_into(&frame).is_err() {
                    next_bad.push(b);
                }
            }
            next_bad.sort_unstable();
            bad = next_bad;
        }

        let subject_names: Vec<String> = subjects.iter().map(|s| s.id.clone()).collect();
        let mapper = JemMapper::from_table(global, subject_names, config);

        // Checkpoint the replicated index past the gather barrier.
        if let Some(path) = &opts.checkpoint {
            let mut file = std::fs::File::create(path)
                .map_err(|e| ResilienceError::Checkpoint(SeqError::from(e)))?;
            save_index(&mut file, &mapper).map_err(ResilienceError::Checkpoint)?;
        }
        mapper
    };

    // S4 — query map, blockwise with the same reassignment machinery.
    let per_block: Vec<(Vec<Mapping>, usize)> = retry_blocks(
        &mut world,
        "query map",
        p,
        opts.max_retries,
        &mut rec,
        |b| {
            let q_range = block_range(p, reads.len(), b);
            let mut segments = make_segments(&reads[q_range.clone()], config.ell);
            for s in segments.iter_mut() {
                s.read_idx += q_range.start as u32;
            }
            let n = segments.len();
            (mapper.map_segments(&segments), n)
        },
    )?;

    let result_bytes: usize = per_block
        .iter()
        .map(|(m, _)| m.len() * std::mem::size_of::<Mapping>())
        .sum();
    world.charge_comm("result gather", result_bytes);

    let n_segments = per_block.iter().map(|(_, n)| n).sum();
    let mut mappings: Vec<Mapping> = per_block.into_iter().flat_map(|(m, _)| m).collect();
    mappings.sort_unstable(); // total order; see Mapping's Ord doc

    let mut report = world.into_report();
    report.fault_stats.retries += rec.retries;
    report.fault_stats.reassigned_blocks += rec.reassigned;
    report.fault_stats.re_requests += rec.re_requests;
    // Mirror the recovery tallies into the metrics recorder; the fault side
    // (crashes/corruption/straggles) is already reported live by the world.
    let obs = jem_obs::recorder();
    if obs.enabled() {
        obs.add("psim.retries", rec.retries as u64);
        obs.add("psim.reassigned_blocks", rec.reassigned as u64);
        obs.add("psim.re_requests", rec.re_requests as u64);
    }
    Ok(DistributedOutcome {
        mappings,
        report,
        n_segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::run_distributed;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    fn world_data() -> (Vec<SeqRecord>, Vec<SeqRecord>) {
        let genome = Genome::random(60_000, 0.5, 21);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 22);
        let profile = HifiProfile {
            coverage: 2.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = simulate_hifi(&genome, &profile, 23);
        (contig_records(&contigs), read_records(&reads))
    }

    fn config() -> MapperConfig {
        MapperConfig {
            k: 12,
            w: 10,
            trials: 8,
            ell: 400,
            seed: 3,
        }
    }

    fn baseline(subjects: &[SeqRecord], reads: &[SeqRecord], p: usize) -> Vec<Mapping> {
        run_distributed(
            subjects,
            reads,
            &config(),
            p,
            CostModel::zero(),
            ExecMode::Sequential,
        )
        .mappings
    }

    fn resilient(
        subjects: &[SeqRecord],
        reads: &[SeqRecord],
        p: usize,
        opts: &ResilienceOptions,
    ) -> DistributedOutcome {
        run_distributed_resilient(
            subjects,
            reads,
            &config(),
            p,
            CostModel::zero(),
            ExecMode::Sequential,
            opts,
        )
        .expect("plan leaves survivors, run must succeed")
    }

    #[test]
    fn fault_free_run_matches_plain_driver() {
        let (subjects, reads) = world_data();
        for p in [1usize, 3, 4] {
            let expected = baseline(&subjects, &reads, p);
            let outcome = resilient(&subjects, &reads, p, &ResilienceOptions::default());
            assert_eq!(outcome.mappings, expected, "p = {p}");
            assert!(
                !outcome.report.fault_stats.any(),
                "no faults, no recovery work"
            );
            // The plain step names survive, so breakdown() still works.
            let b = outcome.breakdown();
            assert!(b.subject_sketch >= 0.0 && b.query_map >= 0.0);
        }
    }

    #[test]
    fn single_crash_at_each_step_recovers() {
        let (subjects, reads) = world_data();
        for p in [4usize, 8] {
            let expected = baseline(&subjects, &reads, p);
            for step in ["input load", "subject sketch", "query map"] {
                let opts = ResilienceOptions {
                    plan: FaultPlan::none().with_crash(step, 1),
                    ..Default::default()
                };
                let outcome = resilient(&subjects, &reads, p, &opts);
                assert_eq!(outcome.mappings, expected, "p = {p}, crash at {step:?}");
                let fs = outcome.report.fault_stats;
                assert_eq!(fs.crashes, 1, "p = {p}, crash at {step:?}");
                assert!(fs.retries >= 1, "crash at {step:?} must force a retry");
                assert!(fs.reassigned_blocks >= 1);
            }
        }
    }

    #[test]
    fn all_but_one_rank_may_die() {
        let (subjects, reads) = world_data();
        for p in [4usize, 8] {
            let expected = baseline(&subjects, &reads, p);
            let mut plan = FaultPlan::none();
            for rank in 1..p {
                plan = plan.with_crash("subject sketch", rank);
            }
            let opts = ResilienceOptions {
                plan,
                ..Default::default()
            };
            let outcome = resilient(&subjects, &reads, p, &opts);
            assert_eq!(outcome.mappings, expected, "p = {p}, {} crashes", p - 1);
            assert_eq!(outcome.report.fault_stats.crashes, p - 1);
            assert!(outcome.report.fault_stats.reassigned_blocks >= p - 1);
        }
    }

    #[test]
    fn corrupt_sketch_stream_is_re_requested() {
        let (subjects, reads) = world_data();
        let p = 4;
        let expected = baseline(&subjects, &reads, p);
        for seed in [0u64, 1, 2, 3, 99] {
            let opts = ResilienceOptions {
                plan: FaultPlan::none()
                    .with_corrupt("subject sketch", 2)
                    .with_corruption_seed(seed),
                ..Default::default()
            };
            let outcome = resilient(&subjects, &reads, p, &opts);
            assert_eq!(outcome.mappings, expected, "corruption seed {seed}");
            let fs = outcome.report.fault_stats;
            assert_eq!(fs.corrupt_payloads, 1, "seed {seed}");
            assert_eq!(
                fs.re_requests, 1,
                "seed {seed}: bad frame must be re-fetched"
            );
        }
    }

    #[test]
    fn straggler_degrades_makespan_but_not_output() {
        let (subjects, reads) = world_data();
        let p = 4;
        let plain = resilient(&subjects, &reads, p, &ResilienceOptions::default());
        let opts = ResilienceOptions {
            plan: FaultPlan::none().with_straggle("subject sketch", 0, 50.0),
            ..Default::default()
        };
        let slow = resilient(&subjects, &reads, p, &opts);
        assert_eq!(slow.mappings, plain.mappings);
        assert_eq!(slow.report.fault_stats.straggles, 1);
        assert!(
            slow.report.step_secs("subject sketch") > plain.report.step_secs("subject sketch"),
            "straggler must inflate the step time"
        );
    }

    #[test]
    fn mixed_faults_across_steps() {
        let (subjects, reads) = world_data();
        let p = 8;
        let expected = baseline(&subjects, &reads, p);
        let opts = ResilienceOptions {
            plan: FaultPlan::none()
                .with_crash("input load", 7)
                .with_crash("subject sketch", 2)
                .with_corrupt("subject sketch", 5)
                .with_straggle("query map", 1, 3.0)
                .with_crash("query map", 3),
            ..Default::default()
        };
        let outcome = resilient(&subjects, &reads, p, &opts);
        assert_eq!(outcome.mappings, expected);
        let fs = outcome.report.fault_stats;
        assert_eq!(fs.crashes, 3);
        assert_eq!(fs.corrupt_payloads, 1);
        assert_eq!(fs.straggles, 1);
        assert!(fs.retries >= 3);
        assert_eq!(fs.re_requests, 1);
    }

    #[test]
    fn threaded_mode_recovers_identically() {
        let (subjects, reads) = world_data();
        let p = 4;
        let expected = baseline(&subjects, &reads, p);
        let opts = ResilienceOptions {
            plan: FaultPlan::none()
                .with_crash("subject sketch", 0)
                .with_corrupt("query map", 2),
            ..Default::default()
        };
        let outcome = run_distributed_resilient(
            &subjects,
            &reads,
            &config(),
            p,
            CostModel::zero(),
            ExecMode::Threaded,
            &opts,
        )
        .unwrap();
        assert_eq!(outcome.mappings, expected);
    }

    #[test]
    fn all_ranks_dead_is_a_value_not_a_panic() {
        let (subjects, reads) = world_data();
        let p = 3;
        let mut plan = FaultPlan::none();
        for rank in 0..p {
            plan = plan.with_crash("subject sketch", rank);
        }
        let opts = ResilienceOptions {
            plan,
            ..Default::default()
        };
        let err = run_distributed_resilient(
            &subjects,
            &reads,
            &config(),
            p,
            CostModel::zero(),
            ExecMode::Sequential,
            &opts,
        )
        .unwrap_err();
        assert!(
            matches!(err, ResilienceError::AllRanksFailed { .. }),
            "got {err}"
        );
        assert!(err.to_string().contains("subject sketch"));
    }

    #[test]
    fn checkpoint_roundtrip_skips_rebuild_and_matches() {
        let (subjects, reads) = world_data();
        let p = 4;
        let expected = baseline(&subjects, &reads, p);
        let path =
            std::env::temp_dir().join(format!("jem_ckpt_roundtrip_{}.idx", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = ResilienceOptions {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        // First run writes the checkpoint.
        let first = resilient(&subjects, &reads, p, &opts);
        assert_eq!(first.mappings, expected);
        assert!(path.exists(), "checkpoint must be written");
        // Second run resumes: identical output, no subject-phase steps.
        let second = resilient(&subjects, &reads, p, &opts);
        assert_eq!(second.mappings, expected);
        assert_eq!(
            second.report.step_secs("subject sketch"),
            0.0,
            "S2 skipped on resume"
        );
        assert!(second.report.step_secs("query map") > 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_checkpoint_is_ignored_not_trusted() {
        let (subjects, reads) = world_data();
        let p = 4;
        let expected = baseline(&subjects, &reads, p);
        let path =
            std::env::temp_dir().join(format!("jem_ckpt_corrupt_{}.idx", std::process::id()));
        let opts = ResilienceOptions {
            checkpoint: Some(path.clone()),
            ..Default::default()
        };
        resilient(&subjects, &reads, p, &opts);
        // Damage the file: resume must silently fall back to a full build
        // (and rewrite a good checkpoint).
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let outcome = resilient(&subjects, &reads, p, &opts);
        assert_eq!(outcome.mappings, expected);
        assert!(
            outcome.report.step_secs("subject sketch") > 0.0,
            "must rebuild"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn random_plans_preserve_output() {
        let (subjects, reads) = world_data();
        let steps = ["input load", "subject sketch", "query map"];
        for p in [4usize, 8] {
            let expected = baseline(&subjects, &reads, p);
            for seed in 0..6u64 {
                let n_crashes = 1 + (seed as usize) % (p - 1);
                let plan = FaultPlan::random(seed, p, &steps, n_crashes, 1);
                let opts = ResilienceOptions {
                    plan: plan.clone(),
                    ..Default::default()
                };
                let outcome = resilient(&subjects, &reads, p, &opts);
                assert_eq!(outcome.mappings, expected, "p={p} seed={seed} plan={plan}");
                assert_eq!(outcome.report.fault_stats.crashes, plan.crashed_ranks());
            }
        }
    }
}
