//! Mapping output: TSV writer and evaluation-pair extraction.

use crate::mapper::{JemMapper, Mapping};
use jem_seq::{SeqError, SeqRecord};
use std::io::Write;

/// Write mappings as TSV: `query_key  subject_name  hits  trials`.
///
/// The format is deliberately close to what the paper's tool emits (query,
/// best-hit contig, support), so downstream scaffolders can consume it.
pub fn write_mappings_tsv<W: Write>(
    out: &mut W,
    mappings: &[Mapping],
    reads: &[SeqRecord],
    mapper: &JemMapper,
) -> Result<(), SeqError> {
    write_mappings_tsv_named(
        out,
        mappings,
        reads,
        mapper.subject_names(),
        mapper.config().trials,
    )
}

/// [`write_mappings_tsv`] without a local [`JemMapper`]: subject names and
/// the trial count arrive as plain data. This is the writer used by remote
/// consumers (`jem query` learns both from the server's Info response), and
/// the byte-level agreement of the two paths is what the server/offline
/// equivalence suite pins down.
pub fn write_mappings_tsv_named<W: Write>(
    out: &mut W,
    mappings: &[Mapping],
    reads: &[SeqRecord],
    subject_names: &[String],
    trials: usize,
) -> Result<(), SeqError> {
    writeln!(out, "#query\tsubject\thits\ttrials")?;
    for m in mappings {
        writeln!(
            out,
            "{}\t{}\t{}\t{}",
            m.query_key(reads),
            subject_names[m.subject as usize],
            m.hits,
            trials
        )?;
    }
    Ok(())
}

/// Extract `(query_key, subject_name)` pairs for the evaluation harness.
pub fn mapping_pairs(
    mappings: &[Mapping],
    reads: &[SeqRecord],
    mapper: &JemMapper,
) -> Vec<(String, String)> {
    mappings
        .iter()
        .map(|m| {
            (
                m.query_key(reads),
                mapper.subject_name(m.subject).to_string(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MapperConfig;
    use crate::segment::ReadEnd;

    fn tiny_world() -> (JemMapper, Vec<SeqRecord>, Vec<Mapping>) {
        let subj: Vec<u8> = (0..2000).map(|i| b"ACGT"[(i * 7 + i / 5) % 4]).collect();
        let subjects = vec![SeqRecord::new("c0", subj.clone())];
        let config = MapperConfig {
            k: 8,
            w: 4,
            trials: 4,
            ell: 200,
            seed: 1,
        };
        let mapper = JemMapper::build(&subjects, &config);
        let reads = vec![SeqRecord::new("r0", subj[..1000].to_vec())];
        let mappings = vec![Mapping {
            read_idx: 0,
            end: ReadEnd::Prefix,
            subject: 0,
            hits: 4,
        }];
        (mapper, reads, mappings)
    }

    #[test]
    fn tsv_format() {
        let (mapper, reads, mappings) = tiny_world();
        let mut buf = Vec::new();
        write_mappings_tsv(&mut buf, &mappings, &reads, &mapper).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("#query\tsubject\thits\ttrials"));
        assert_eq!(lines.next(), Some("r0/prefix\tc0\t4\t4"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn pairs_extraction() {
        let (mapper, reads, mappings) = tiny_world();
        let pairs = mapping_pairs(&mappings, &reads, &mapper);
        assert_eq!(pairs, vec![("r0/prefix".to_string(), "c0".to_string())]);
    }
}
