//! Index persistence: save/load a built [`JemMapper`] so the subject
//! sketching cost is paid once per contig set.
//!
//! Binary layout (all integers little-endian):
//!
//! ```text
//! magic  b"JEMIDX3\0"                       8 bytes
//! body_len (bytes)                          u64
//! fnv1a64(body)                             u64
//! body:
//!   config k, w, trials, ell, seed          5 × u64
//!   scheme tag (0 = minimizer, 1 = closed syncmer), param   2 × u64
//!   n_subjects                              u64
//!   per subject: name_len u64, name bytes
//!   stream_len (u64 count)                  u64
//!   table stream                            stream_len × u64
//! ```
//!
//! The whole-body checksum makes *any* byte-level damage to a saved index a
//! load-time error: flips that would still parse (e.g. a changed seed or a
//! swapped subject id) are caught by the frame, and flips that garble the
//! structure are caught by the fallible [`SketchTable::decode`] — no code
//! path panics on a malformed file.

use crate::config::MapperConfig;
use crate::mapper::JemMapper;
use jem_index::SketchTable;
use jem_seq::SeqError;
use jem_sketch::SketchScheme;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"JEMIDX3\0";

/// FNV-1a over raw bytes — the integrity check of the index frame.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize a built mapper index.
pub fn save_index<W: Write>(out: &mut W, mapper: &JemMapper) -> Result<(), SeqError> {
    let c = mapper.config();
    let mut body = Vec::new();
    for v in [
        c.k as u64,
        c.w as u64,
        c.trials as u64,
        c.ell as u64,
        c.seed,
    ] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    let (tag, param): (u64, u64) = match mapper.scheme() {
        SketchScheme::Minimizer { w } => (0, w as u64),
        SketchScheme::ClosedSyncmer { s } => (1, s as u64),
    };
    body.extend_from_slice(&tag.to_le_bytes());
    body.extend_from_slice(&param.to_le_bytes());
    body.extend_from_slice(&(mapper.n_subjects() as u64).to_le_bytes());
    for id in 0..mapper.n_subjects() {
        let name = mapper.subject_name(id as u32).as_bytes();
        body.extend_from_slice(&(name.len() as u64).to_le_bytes());
        body.extend_from_slice(name);
    }
    let stream = mapper.table().encode();
    body.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for v in &stream {
        body.extend_from_slice(&v.to_le_bytes());
    }
    out.write_all(MAGIC)?;
    out.write_all(&(body.len() as u64).to_le_bytes())?;
    out.write_all(&fnv1a64(&body).to_le_bytes())?;
    out.write_all(&body)?;
    Ok(())
}

fn read_u64<R: Read>(input: &mut R) -> Result<u64, SeqError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserialize an index written by [`save_index`].
///
/// Returns `Err` — never panics — on any malformed input: bad magic, a
/// truncated or extended frame, a checksum mismatch (any flipped byte), or
/// a body whose table stream fails the fallible decode.
pub fn load_index<R: Read>(input: &mut R) -> Result<JemMapper, SeqError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SeqError::InvalidParameter(
            "not a JEM index file (bad magic)".into(),
        ));
    }
    let body_len = read_u64(input)?;
    let declared = read_u64(input)?;
    let mut body = Vec::new();
    // `take` bounds the read without trusting `body_len` for an allocation.
    input.take(body_len).read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(SeqError::InvalidParameter(format!(
            "index frame truncated: header declares {body_len} body bytes, found {}",
            body.len()
        )));
    }
    let computed = fnv1a64(&body);
    if computed != declared {
        return Err(SeqError::InvalidParameter(format!(
            "index checksum mismatch: frame declares {declared:#018x}, body hashes to {computed:#018x}"
        )));
    }

    let input = &mut body.as_slice();
    let k = read_u64(input)? as usize;
    let w = read_u64(input)? as usize;
    let trials = read_u64(input)? as usize;
    let ell = read_u64(input)? as usize;
    let seed = read_u64(input)?;
    let config = MapperConfig {
        k,
        w,
        trials,
        ell,
        seed,
    };
    config.jem_params().map_err(|e| {
        SeqError::InvalidParameter(format!("index holds an invalid configuration: {e}"))
    })?;
    let tag = read_u64(input)?;
    let param = read_u64(input)? as usize;
    let scheme = match tag {
        0 => SketchScheme::Minimizer { w: param },
        1 => SketchScheme::ClosedSyncmer { s: param },
        other => {
            return Err(SeqError::InvalidParameter(format!(
                "unknown sketch scheme tag {other}"
            )))
        }
    };
    scheme
        .validate(k)
        .map_err(|e| SeqError::InvalidParameter(format!("index holds an invalid scheme: {e}")))?;

    let n_subjects = read_u64(input)? as usize;
    let mut names = Vec::with_capacity(n_subjects.min(1 << 16));
    for _ in 0..n_subjects {
        let len = read_u64(input)? as usize;
        if len > 1 << 20 {
            return Err(SeqError::InvalidParameter(
                "unreasonable subject name length".into(),
            ));
        }
        let mut buf = vec![0u8; len];
        input.read_exact(&mut buf)?;
        names.push(
            String::from_utf8(buf)
                .map_err(|_| SeqError::InvalidParameter("subject name is not UTF-8".into()))?,
        );
    }
    let stream_len = read_u64(input)? as usize;
    let mut stream = Vec::with_capacity(stream_len.min(1 << 20));
    for _ in 0..stream_len {
        stream.push(read_u64(input)?);
    }
    let table = SketchTable::decode(&stream, trials)
        .map_err(|e| SeqError::InvalidParameter(format!("index table stream is corrupt: {e}")))?;
    Ok(JemMapper::from_table_with_scheme(
        table, names, &config, scheme,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::SeqRecord;
    use jem_sim::{contig_records, fragment_contigs, ContigProfile, Genome};

    fn build() -> (JemMapper, Vec<SeqRecord>) {
        let genome = Genome::random(40_000, 0.5, 123);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 124);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 6,
            ell: 300,
            seed: 9,
        };
        (JemMapper::build(&subjects, &config), subjects)
    }

    /// A deliberately tiny index, so exhaustive corruption sweeps stay fast.
    fn build_tiny() -> JemMapper {
        let genome = Genome::random(3_000, 0.5, 55);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 56);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 2,
            ell: 300,
            seed: 9,
        };
        JemMapper::build(&subjects, &config)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (mapper, subjects) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), mapper.config());
        assert_eq!(loaded.n_subjects(), mapper.n_subjects());
        for i in 0..mapper.n_subjects() {
            assert_eq!(loaded.subject_name(i as u32), mapper.subject_name(i as u32));
        }
        assert_eq!(loaded.table().entry_count(), mapper.table().entry_count());
        // Mapping behaviour identical.
        let query = subjects[1].seq[..250.min(subjects[1].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = b"NOTANIDX".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        assert!(load_index(&mut data.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let (mapper, _) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_index(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn every_single_byte_flip_rejected() {
        let mapper = build_tiny();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        assert!(
            load_index(&mut buf.as_slice()).is_ok(),
            "pristine file must load"
        );
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                load_index(&mut bad.as_slice()).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn corrupt_but_well_framed_stream_rejected_by_decode() {
        // Hand-build a file whose frame (length + checksum) is intact but
        // whose table stream is structural garbage: the error must come from
        // the fallible decode, not a panic.
        let mut body = Vec::new();
        for v in [12u64, 8, 2, 300, 9] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        for v in [0u64, 8] {
            body.extend_from_slice(&v.to_le_bytes()); // minimizer, w = 8
        }
        body.extend_from_slice(&0u64.to_le_bytes()); // no subjects
        body.extend_from_slice(&1u64.to_le_bytes()); // stream_len = 1
        body.extend_from_slice(&999u64.to_le_bytes()); // garbage stream word
        let mut file = MAGIC.to_vec();
        file.extend_from_slice(&(body.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        file.extend_from_slice(&body);
        let err = load_index(&mut file.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("table stream is corrupt"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn old_format_magic_rejected() {
        let mut data = b"JEMIDX2\0".to_vec();
        data.extend_from_slice(&[0u8; 128]);
        assert!(load_index(&mut data.as_slice()).is_err());
    }

    #[test]
    fn syncmer_index_roundtrips_with_scheme() {
        let genome = Genome::random(30_000, 0.5, 321);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 322);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 16,
            w: 8,
            trials: 6,
            ell: 300,
            seed: 9,
        };
        let scheme = SketchScheme::ClosedSyncmer { s: 11 };
        let mapper = JemMapper::build_with_scheme(&subjects, &config, scheme);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.scheme(), scheme);
        let query = subjects[0].seq[..250.min(subjects[0].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn empty_index_roundtrips() {
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 4,
            ell: 300,
            seed: 1,
        };
        let mapper = JemMapper::build(&[], &config);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_subjects(), 0);
        assert_eq!(loaded.table().entry_count(), 0);
    }
}
