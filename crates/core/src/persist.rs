//! Index persistence: save/load a built [`JemMapper`] so the subject
//! sketching cost is paid once per contig set.
//!
//! Binary layout (all integers little-endian):
//!
//! ```text
//! magic  b"JEMIDX2\0"                       8 bytes
//! config k, w, trials, ell, seed           5 × u64
//! scheme tag (0 = minimizer, 1 = closed syncmer), param   2 × u64
//! n_subjects                               u64
//! per subject: name_len u64, name bytes
//! stream_len (u64 count)                   u64
//! table stream                             stream_len × u64
//! ```

use crate::config::MapperConfig;
use crate::mapper::JemMapper;
use jem_index::SketchTable;
use jem_seq::SeqError;
use jem_sketch::SketchScheme;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"JEMIDX2\0";

/// Serialize a built mapper index.
pub fn save_index<W: Write>(out: &mut W, mapper: &JemMapper) -> Result<(), SeqError> {
    let c = mapper.config();
    out.write_all(MAGIC)?;
    for v in [c.k as u64, c.w as u64, c.trials as u64, c.ell as u64, c.seed] {
        out.write_all(&v.to_le_bytes())?;
    }
    let (tag, param): (u64, u64) = match mapper.scheme() {
        SketchScheme::Minimizer { w } => (0, w as u64),
        SketchScheme::ClosedSyncmer { s } => (1, s as u64),
    };
    out.write_all(&tag.to_le_bytes())?;
    out.write_all(&param.to_le_bytes())?;
    out.write_all(&(mapper.n_subjects() as u64).to_le_bytes())?;
    for id in 0..mapper.n_subjects() {
        let name = mapper.subject_name(id as u32).as_bytes();
        out.write_all(&(name.len() as u64).to_le_bytes())?;
        out.write_all(name)?;
    }
    let stream = mapper.table().encode();
    out.write_all(&(stream.len() as u64).to_le_bytes())?;
    for v in &stream {
        out.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u64<R: Read>(input: &mut R) -> Result<u64, SeqError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserialize an index written by [`save_index`].
pub fn load_index<R: Read>(input: &mut R) -> Result<JemMapper, SeqError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SeqError::InvalidParameter("not a JEM index file (bad magic)".into()));
    }
    let k = read_u64(input)? as usize;
    let w = read_u64(input)? as usize;
    let trials = read_u64(input)? as usize;
    let ell = read_u64(input)? as usize;
    let seed = read_u64(input)?;
    let config = MapperConfig { k, w, trials, ell, seed };
    config.jem_params().map_err(|e| {
        SeqError::InvalidParameter(format!("index holds an invalid configuration: {e}"))
    })?;
    let tag = read_u64(input)?;
    let param = read_u64(input)? as usize;
    let scheme = match tag {
        0 => SketchScheme::Minimizer { w: param },
        1 => SketchScheme::ClosedSyncmer { s: param },
        other => {
            return Err(SeqError::InvalidParameter(format!(
                "unknown sketch scheme tag {other}"
            )))
        }
    };
    scheme.validate(k).map_err(|e| {
        SeqError::InvalidParameter(format!("index holds an invalid scheme: {e}"))
    })?;

    let n_subjects = read_u64(input)? as usize;
    let mut names = Vec::with_capacity(n_subjects);
    for _ in 0..n_subjects {
        let len = read_u64(input)? as usize;
        if len > 1 << 20 {
            return Err(SeqError::InvalidParameter("unreasonable subject name length".into()));
        }
        let mut buf = vec![0u8; len];
        input.read_exact(&mut buf)?;
        names.push(String::from_utf8(buf).map_err(|_| {
            SeqError::InvalidParameter("subject name is not UTF-8".into())
        })?);
    }
    let stream_len = read_u64(input)? as usize;
    let mut stream = Vec::with_capacity(stream_len);
    for _ in 0..stream_len {
        stream.push(read_u64(input)?);
    }
    let table = SketchTable::decode(&stream, trials);
    Ok(JemMapper::from_table_with_scheme(table, names, &config, scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::SeqRecord;
    use jem_sim::{contig_records, fragment_contigs, ContigProfile, Genome};

    fn build() -> (JemMapper, Vec<SeqRecord>) {
        let genome = Genome::random(40_000, 0.5, 123);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 124);
        let subjects = contig_records(&contigs);
        let config = MapperConfig { k: 12, w: 8, trials: 6, ell: 300, seed: 9 };
        (JemMapper::build(subjects.clone(), &config), subjects)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (mapper, subjects) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), mapper.config());
        assert_eq!(loaded.n_subjects(), mapper.n_subjects());
        for i in 0..mapper.n_subjects() {
            assert_eq!(loaded.subject_name(i as u32), mapper.subject_name(i as u32));
        }
        assert_eq!(loaded.table().entry_count(), mapper.table().entry_count());
        // Mapping behaviour identical.
        let query = subjects[1].seq[..250.min(subjects[1].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = b"NOTANIDX".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        assert!(load_index(&mut data.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let (mapper, _) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_index(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn syncmer_index_roundtrips_with_scheme() {
        let genome = Genome::random(30_000, 0.5, 321);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 322);
        let subjects = contig_records(&contigs);
        let config = MapperConfig { k: 16, w: 8, trials: 6, ell: 300, seed: 9 };
        let scheme = SketchScheme::ClosedSyncmer { s: 11 };
        let mapper = JemMapper::build_with_scheme(subjects.clone(), &config, scheme);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.scheme(), scheme);
        let query = subjects[0].seq[..250.min(subjects[0].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn empty_index_roundtrips() {
        let config = MapperConfig { k: 12, w: 8, trials: 4, ell: 300, seed: 1 };
        let mapper = JemMapper::build(Vec::new(), &config);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_subjects(), 0);
        assert_eq!(loaded.table().entry_count(), 0);
    }
}
