//! Index persistence: save/load a built [`JemMapper`] so the subject
//! sketching cost is paid once per contig set.
//!
//! # JEMIDX v4 — the current format
//!
//! The whole file is a sequence of little-endian `u64` words; the table
//! section *is* the in-memory [`jem_index::FlatTable`] layout (bucket
//! array + contiguous posting arena per trial), so loading is validation
//! plus a wrap — no decode, no rebuild, and over `mmap` no copy at all.
//!
//! ```text
//! word  0      magic  b"JEMIDX4\0"
//! word  1      file_words — total length of the file in words
//! word  2      fnv1a64 over the little-endian bytes of words[3..]
//! word  3      config_hash: fnv1a64 over the bytes of words[4..11]
//! words 4..9   config: k, w, trials, ell, seed
//! words 9..11  scheme tag (0 = minimizer, 1 = closed syncmer), param
//! word  11     n_subjects
//! words 12,13  names_off, names_words
//! words 14,15  table_off, table_words
//! names        per subject: byte length, then the name zero-padded to
//!              whole words
//! table        the flat-table blob (see `jem_index::flat`)
//! ```
//!
//! Sections are contiguous and in order (`names_off == 16`,
//! `names_off + names_words == table_off`,
//! `table_off + table_words == file_words`), 8-byte aligned by
//! construction, and the writer is *canonical* — bank entries are laid
//! out in ascending code order — so the bytes are a pure function of the
//! logical index: save → load → save round-trips byte-identically, from
//! either table backend.
//!
//! Loading is fallible end to end: bad magic, a length that disagrees
//! with the header, checksum or config-hash mismatches, malformed names,
//! and every structural violation of the table blob surface as typed
//! errors — no code path panics on a malformed file. [`load_index_path`]
//! additionally validates the declared length against the file's actual
//! size *before* reading or mapping anything bulky, so pointing the CLI
//! at the wrong multi-gigabyte file fails fast instead of allocating.
//!
//! [`Integrity`] picks how much of the file the loader verifies:
//! [`Integrity::Full`] (the default everywhere) checks the whole-file
//! checksum and subject-id ranges — one sequential pass, still no decode
//! or rebuild; [`Integrity::HeaderOnly`] validates header and structure
//! only, for fleet restarts of already-trusted artifacts where paging in
//! a multi-GB arena at open time is the cost being avoided.
//!
//! # JEMIDX v3 — legacy
//!
//! The previous format ([`save_index_v3`] writes it; [`load_index`] and
//! [`load_index_path`] still read it) serialized the hash table as a
//! `[n_keys, (code, n_subjects, subjects…)*]` stream that had to be
//! re-inserted into fresh hash maps on every load. `jem index --upgrade`
//! migrates v3 artifacts to v4.

use crate::config::MapperConfig;
use crate::mapper::JemMapper;
use jem_index::{checksum_words, FlatTable, SketchTable, TableBackend, WordSource};
use jem_mmap::MmapWords;
use jem_seq::SeqError;
use jem_sketch::SketchScheme;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC_V3: &[u8; 8] = b"JEMIDX3\0";
const MAGIC_V4: &[u8; 8] = b"JEMIDX4\0";
const MAGIC_V4_WORD: u64 = u64::from_le_bytes(*MAGIC_V4);
/// Fixed v4 header length in words.
const HEADER_WORDS: usize = 16;

/// How much of a v4 file [`load_index_path_with`] verifies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Integrity {
    /// Verify the whole-file checksum and subject-id ranges (one
    /// sequential read of the artifact) on top of all structural checks.
    #[default]
    Full,
    /// Verify the header, section geometry and table structure only —
    /// corruption inside posting data goes undetected until queried.
    /// For re-opening artifacts that were fully verified when produced.
    HeaderOnly,
}

/// FNV-1a over raw bytes — the integrity check of the v3 index frame.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn format_err(msg: impl Into<String>) -> SeqError {
    SeqError::InvalidParameter(msg.into())
}

fn scheme_words(scheme: SketchScheme) -> (u64, u64) {
    match scheme {
        SketchScheme::Minimizer { w } => (0, w as u64),
        SketchScheme::ClosedSyncmer { s } => (1, s as u64),
    }
}

fn scheme_from_words(tag: u64, param: u64) -> Result<SketchScheme, SeqError> {
    let param = usize::try_from(param)
        .map_err(|_| format_err(format!("sketch scheme parameter {param} overflows usize")))?;
    match tag {
        0 => Ok(SketchScheme::Minimizer { w: param }),
        1 => Ok(SketchScheme::ClosedSyncmer { s: param }),
        other => Err(format_err(format!("unknown sketch scheme tag {other}"))),
    }
}

/// Serialize a built mapper index in the current (v4) format.
///
/// The output is canonical: for a given logical index the bytes are
/// identical no matter which backend the mapper holds or how it was
/// obtained — `save → load → save` round-trips exactly.
pub fn save_index<W: Write>(out: &mut W, mapper: &JemMapper) -> Result<(), SeqError> {
    let words = index_words_v4(mapper);
    let mut buf = Vec::with_capacity(64 * 1024);
    for w in &words {
        buf.extend_from_slice(&w.to_le_bytes());
        if buf.len() == buf.capacity() {
            out.write_all(&buf)?;
            buf.clear();
        }
    }
    out.write_all(&buf)?;
    Ok(())
}

/// Assemble the full v4 word image of `mapper`.
fn index_words_v4(mapper: &JemMapper) -> Vec<u64> {
    let mut words = vec![0u64; HEADER_WORDS];
    let names_off = words.len();
    for id in 0..mapper.n_subjects() {
        let name = mapper.subject_name(id as u32).as_bytes();
        words.push(name.len() as u64);
        for chunk in name.chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            words.push(u64::from_le_bytes(b));
        }
    }
    let table_off = words.len();
    let blob = match mapper.table() {
        TableBackend::Hash(t) => FlatTable::freeze_blob(t),
        TableBackend::Flat(f) => f.to_blob(),
    };
    words.extend_from_slice(&blob);

    let c = mapper.config();
    let (tag, param) = scheme_words(mapper.scheme());
    words[0] = MAGIC_V4_WORD;
    words[1] = words.len() as u64;
    words[4] = c.k as u64;
    words[5] = c.w as u64;
    words[6] = c.trials as u64;
    words[7] = c.ell as u64;
    words[8] = c.seed;
    words[9] = tag;
    words[10] = param;
    words[11] = mapper.n_subjects() as u64;
    words[12] = names_off as u64;
    words[13] = (table_off - names_off) as u64;
    words[14] = table_off as u64;
    words[15] = blob.len() as u64;
    words[3] = checksum_words(&words[4..11]);
    words[2] = checksum_words(&words[3..]);
    words
}

/// Serialize in the legacy v3 format (hash-table stream). Kept for
/// migration tests and fixtures; new artifacts should use [`save_index`].
pub fn save_index_v3<W: Write>(out: &mut W, mapper: &JemMapper) -> Result<(), SeqError> {
    let c = mapper.config();
    let mut body = Vec::new();
    for v in [
        c.k as u64,
        c.w as u64,
        c.trials as u64,
        c.ell as u64,
        c.seed,
    ] {
        body.extend_from_slice(&v.to_le_bytes());
    }
    let (tag, param) = scheme_words(mapper.scheme());
    body.extend_from_slice(&tag.to_le_bytes());
    body.extend_from_slice(&param.to_le_bytes());
    body.extend_from_slice(&(mapper.n_subjects() as u64).to_le_bytes());
    for id in 0..mapper.n_subjects() {
        let name = mapper.subject_name(id as u32).as_bytes();
        body.extend_from_slice(&(name.len() as u64).to_le_bytes());
        body.extend_from_slice(name);
    }
    let stream = mapper.table().to_sketch_table().encode();
    body.extend_from_slice(&(stream.len() as u64).to_le_bytes());
    for v in &stream {
        body.extend_from_slice(&v.to_le_bytes());
    }
    out.write_all(MAGIC_V3)?;
    out.write_all(&(body.len() as u64).to_le_bytes())?;
    out.write_all(&fnv1a64(&body).to_le_bytes())?;
    out.write_all(&body)?;
    Ok(())
}

fn read_u64<R: Read>(input: &mut R) -> Result<u64, SeqError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Deserialize an index written by [`save_index`] (v4) or the legacy
/// [`save_index_v3`], sniffing the version from the magic.
///
/// Returns `Err` — never panics — on any malformed input: bad magic, a
/// truncated or extended frame, a checksum mismatch (any flipped byte), or
/// a body that fails structural validation.
pub fn load_index<R: Read>(input: &mut R) -> Result<JemMapper, SeqError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic == MAGIC_V3 {
        let body_len = read_u64(input)?;
        let declared = read_u64(input)?;
        load_v3_body(input, body_len, declared)
    } else if &magic == MAGIC_V4 {
        load_v4_stream(input)
    } else {
        Err(format_err("not a JEM index file (bad magic)"))
    }
}

/// Read a v4 file from a stream (magic already consumed): the portable
/// owned-buffer path. The header is read and sanity-checked before the
/// body so a bogus stream fails before bulk allocation.
fn load_v4_stream<R: Read>(input: &mut R) -> Result<JemMapper, SeqError> {
    let mut header = [0u64; HEADER_WORDS];
    header[0] = MAGIC_V4_WORD;
    for w in header.iter_mut().skip(1) {
        *w = read_u64(input)?;
    }
    let file_words = usize::try_from(header[1])
        .map_err(|_| format_err("index header declares an impossible length"))?;
    if file_words < HEADER_WORDS {
        return Err(format_err(format!(
            "index header declares {file_words} words, below the {HEADER_WORDS}-word minimum"
        )));
    }
    // Bounded growth: the capacity hint is capped so a corrupt length
    // cannot trigger a huge up-front allocation; reading stops at EOF.
    let mut words = Vec::with_capacity(file_words.min(1 << 24));
    words.extend_from_slice(&header);
    let mut buf = vec![0u8; 64 * 1024];
    let mut remaining = file_words - HEADER_WORDS;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        input.read_exact(&mut buf[..take * 8]).map_err(|_| {
            format_err(format!(
                "index truncated: header declares {file_words} words, stream ended at {}",
                words.len()
            ))
        })?;
        for chunk in buf[..take * 8].chunks_exact(8) {
            words.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        remaining -= take;
    }
    let mut extra = [0u8; 1];
    if input.read(&mut extra)? != 0 {
        return Err(format_err(
            "index frame has trailing bytes after the declared length",
        ));
    }
    parse_v4(Arc::new(words), Integrity::Full)
}

/// A memory-mapped word source (newtype so the `WordSource` impl lives
/// beside the trait's consumers while `jem-mmap` stays dependency-free).
#[derive(Debug)]
struct MappedWords(MmapWords);

impl WordSource for MappedWords {
    fn words(&self) -> &[u64] {
        self.0.words()
    }
}

/// Load an index file by path with [`Integrity::Full`] verification.
///
/// For v4 files this is the zero-copy path: the file is memory-mapped
/// (falling back to an owned read where `mmap` is unavailable) and the
/// posting arenas are served straight from the mapping. For v3 files it
/// falls back to the legacy decode-and-rebuild, after failing fast if the
/// declared body length disagrees with the file's actual size.
pub fn load_index_path(path: impl AsRef<Path>) -> Result<JemMapper, SeqError> {
    load_index_path_with(path, Integrity::Full)
}

/// [`load_index_path`] with an explicit [`Integrity`] level (v4 only —
/// v3 files are always fully verified by their frame checksum).
///
/// Emits load-path metrics to the global [`jem_obs`] recorder:
/// `persist.load_v3` / `persist.load_v4` (which format), `persist.load_mmap`
/// / `persist.load_owned` (which v4 backing), and
/// `persist.arena_copy_bytes` — the bytes *copied* to make the index
/// resident, `0` on the mmap path — under a `persist/load` span.
pub fn load_index_path_with(
    path: impl AsRef<Path>,
    integrity: Integrity,
) -> Result<JemMapper, SeqError> {
    load_index_path_opts(path, integrity, false)
}

/// [`load_index_path_with`] plus a readahead choice: with `prefault` set,
/// a v4 mapping is opened through [`MmapWords::map_with`] — the kernel is
/// advised the whole file will be needed and every page is touched at load
/// time, so a freshly started `jem serve --prefault` pays its page faults
/// before the first query instead of during it. Purely advisory: the
/// loaded mapper is identical either way, and the flag is a no-op for v3
/// files and the owned-read fallback (both are fully resident already).
/// Adds `persist.load_prefault` to the load-path metrics when the eager
/// mmap path is taken.
pub fn load_index_path_opts(
    path: impl AsRef<Path>,
    integrity: Integrity,
    prefault: bool,
) -> Result<JemMapper, SeqError> {
    let rec = jem_obs::recorder();
    let _span = jem_obs::Span::enter(rec, "persist/load");
    let mut file = File::open(path.as_ref())?;
    let file_len = file.metadata()?.len();
    let mut magic = [0u8; 8];
    file.read_exact(&mut magic)?;
    if &magic == MAGIC_V3 {
        let mut input = BufReader::new(file);
        let body_len = read_u64(&mut input)?;
        let declared = read_u64(&mut input)?;
        // Fail fast: the header's declared body length must match the file
        // size exactly — a wrong-file argument dies here, before the body
        // is read or the table rebuilt.
        if body_len != file_len.saturating_sub(24) {
            return Err(format_err(format!(
                "index header declares {body_len} body bytes but the file holds {}",
                file_len.saturating_sub(24)
            )));
        }
        rec.add("persist.load_v3", 1);
        rec.add("persist.arena_copy_bytes", body_len);
        load_v3_body(&mut input, body_len, declared)
    } else if &magic == MAGIC_V4 {
        rec.add("persist.load_v4", 1);
        if file_len % 8 != 0 {
            return Err(format_err(format!(
                "v4 index length {file_len} is not a multiple of 8 bytes"
            )));
        }
        // Fail fast: read just the header and cross-check the declared word
        // count against the actual file size before mapping or reading.
        let mut rest = [0u8; 8 * (HEADER_WORDS - 1)];
        file.read_exact(&mut rest)?;
        let file_words = u64::from_le_bytes(rest[..8].try_into().expect("8-byte slice"));
        if file_words.checked_mul(8) != Some(file_len) {
            return Err(format_err(format!(
                "index header declares {file_words} words but the file holds {} bytes",
                file_len
            )));
        }
        match MmapWords::map_with(&file, prefault) {
            Ok(map) => {
                rec.add("persist.load_mmap", 1);
                if prefault {
                    rec.add("persist.load_prefault", 1);
                }
                rec.add("persist.arena_copy_bytes", 0);
                parse_v4(Arc::new(MappedWords(map)), integrity)
            }
            Err(_) => {
                // Portable fallback: one owned read of the whole file.
                file.seek(SeekFrom::Start(0))?;
                let mut words = Vec::with_capacity((file_len / 8) as usize);
                let mut input = BufReader::new(file);
                let mut buf = vec![0u8; 64 * 1024];
                loop {
                    let n = input.read(&mut buf)?;
                    if n == 0 {
                        break;
                    }
                    for chunk in buf[..n].chunks_exact(8) {
                        words.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
                    }
                    if n % 8 != 0 {
                        return Err(format_err("index file changed size during load"));
                    }
                }
                rec.add("persist.load_owned", 1);
                rec.add("persist.arena_copy_bytes", file_len);
                parse_v4(Arc::new(words), integrity)
            }
        }
    } else {
        Err(format_err("not a JEM index file (bad magic)"))
    }
}

/// Validate a complete v4 word image and wrap it into a mapper.
fn parse_v4(source: Arc<dyn WordSource>, integrity: Integrity) -> Result<JemMapper, SeqError> {
    let words = source.words();
    if words.len() < HEADER_WORDS {
        return Err(format_err(format!(
            "v4 index needs at least {HEADER_WORDS} words, have {}",
            words.len()
        )));
    }
    if words[0] != MAGIC_V4_WORD {
        return Err(format_err("not a JEM v4 index (bad magic)"));
    }
    if words[1] != words.len() as u64 {
        return Err(format_err(format!(
            "index header declares {} words but {} are present",
            words[1],
            words.len()
        )));
    }
    if integrity == Integrity::Full {
        let computed = checksum_words(&words[3..]);
        if computed != words[2] {
            return Err(format_err(format!(
                "index checksum mismatch: header declares {:#018x}, file hashes to {computed:#018x}",
                words[2]
            )));
        }
    }
    let config_hash = checksum_words(&words[4..11]);
    if config_hash != words[3] {
        return Err(format_err(format!(
            "index config-hash mismatch: header declares {:#018x}, config hashes to {config_hash:#018x}",
            words[3]
        )));
    }

    let as_usize = |w: u64, what: &str| {
        usize::try_from(w).map_err(|_| format_err(format!("index {what} {w} overflows usize")))
    };
    let config = MapperConfig {
        k: as_usize(words[4], "k")?,
        w: as_usize(words[5], "w")?,
        trials: as_usize(words[6], "trials")?,
        ell: as_usize(words[7], "ell")?,
        seed: words[8],
    };
    config
        .jem_params()
        .map_err(|e| format_err(format!("index holds an invalid configuration: {e}")))?;
    let scheme = scheme_from_words(words[9], words[10])?;
    scheme
        .validate(config.k)
        .map_err(|e| format_err(format!("index holds an invalid scheme: {e}")))?;

    let n_subjects = as_usize(words[11], "subject count")?;
    let names_off = as_usize(words[12], "names offset")?;
    let names_words = as_usize(words[13], "names length")?;
    let table_off = as_usize(words[14], "table offset")?;
    let table_words = as_usize(words[15], "table length")?;
    // The canonical layout is fixed: names directly after the header,
    // table directly after the names, nothing after the table.
    if names_off != HEADER_WORDS
        || names_off.checked_add(names_words) != Some(table_off)
        || table_off.checked_add(table_words) != Some(words.len())
    {
        return Err(format_err(
            "index section offsets do not tile the file (names, then table)",
        ));
    }
    let names = parse_names(&words[names_off..table_off], n_subjects)?;

    let flat = FlatTable::from_source(Arc::clone(&source), table_off, config.trials)
        .map_err(|e| format_err(format!("index table is corrupt: {e}")))?;
    if integrity == Integrity::Full {
        if let Some(max) = flat.max_subject() {
            if max as usize >= n_subjects {
                return Err(format_err(format!(
                    "index table references subject {max} but only {n_subjects} subjects are named"
                )));
            }
        }
    }
    Ok(JemMapper::from_backend_with_scheme(
        flat.into(),
        names,
        &config,
        scheme,
    ))
}

/// Parse the names section: per subject, a byte length followed by the
/// name zero-padded to whole words. Rejects truncation, oversized names,
/// non-zero padding (the writer is canonical), trailing words and
/// non-UTF-8.
fn parse_names(words: &[u64], n_subjects: usize) -> Result<Vec<String>, SeqError> {
    let mut names = Vec::with_capacity(n_subjects.min(1 << 16));
    let mut i = 0usize;
    for _ in 0..n_subjects {
        let len = *words
            .get(i)
            .ok_or_else(|| format_err("index names section truncated"))?;
        if len > 1 << 20 {
            return Err(format_err("unreasonable subject name length"));
        }
        let len = len as usize;
        i += 1;
        let n_words = len.div_ceil(8);
        if i + n_words > words.len() {
            return Err(format_err("index names section truncated"));
        }
        let mut bytes = Vec::with_capacity(n_words * 8);
        for w in &words[i..i + n_words] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        if bytes[len..].iter().any(|&b| b != 0) {
            return Err(format_err("index name padding is not zeroed"));
        }
        bytes.truncate(len);
        names.push(String::from_utf8(bytes).map_err(|_| format_err("subject name is not UTF-8"))?);
        i += n_words;
    }
    if i != words.len() {
        return Err(format_err(
            "index names section has trailing words after the last name",
        ));
    }
    Ok(names)
}

/// Read and validate a v3 body (stream positioned after the 24-byte
/// header, whose `body_len`/`declared` fields are passed in).
fn load_v3_body<R: Read>(
    input: &mut R,
    body_len: u64,
    declared: u64,
) -> Result<JemMapper, SeqError> {
    let mut body = Vec::new();
    // `take` bounds the read without trusting `body_len` for an allocation.
    input.take(body_len).read_to_end(&mut body)?;
    if body.len() as u64 != body_len {
        return Err(format_err(format!(
            "index frame truncated: header declares {body_len} body bytes, found {}",
            body.len()
        )));
    }
    let computed = fnv1a64(&body);
    if computed != declared {
        return Err(format_err(format!(
            "index checksum mismatch: frame declares {declared:#018x}, body hashes to {computed:#018x}"
        )));
    }

    let input = &mut body.as_slice();
    let k = read_u64(input)? as usize;
    let w = read_u64(input)? as usize;
    let trials = read_u64(input)? as usize;
    let ell = read_u64(input)? as usize;
    let seed = read_u64(input)?;
    let config = MapperConfig {
        k,
        w,
        trials,
        ell,
        seed,
    };
    config
        .jem_params()
        .map_err(|e| format_err(format!("index holds an invalid configuration: {e}")))?;
    let tag = read_u64(input)?;
    let param = read_u64(input)?;
    let scheme = scheme_from_words(tag, param)?;
    scheme
        .validate(k)
        .map_err(|e| format_err(format!("index holds an invalid scheme: {e}")))?;

    let n_subjects = read_u64(input)? as usize;
    let mut names = Vec::with_capacity(n_subjects.min(1 << 16));
    for _ in 0..n_subjects {
        let len = read_u64(input)? as usize;
        if len > 1 << 20 {
            return Err(format_err("unreasonable subject name length"));
        }
        let mut buf = vec![0u8; len];
        input.read_exact(&mut buf)?;
        names.push(String::from_utf8(buf).map_err(|_| format_err("subject name is not UTF-8"))?);
    }
    let stream_len = read_u64(input)? as usize;
    let mut stream = Vec::with_capacity(stream_len.min(1 << 20));
    for _ in 0..stream_len {
        stream.push(read_u64(input)?);
    }
    let table = SketchTable::decode(&stream, trials)
        .map_err(|e| format_err(format!("index table stream is corrupt: {e}")))?;
    Ok(JemMapper::from_table_with_scheme(
        table, names, &config, scheme,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::SeqRecord;
    use jem_sim::{contig_records, fragment_contigs, ContigProfile, Genome};

    fn build() -> (JemMapper, Vec<SeqRecord>) {
        let genome = Genome::random(40_000, 0.5, 123);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 124);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 6,
            ell: 300,
            seed: 9,
        };
        (JemMapper::build(&subjects, &config), subjects)
    }

    /// A deliberately tiny index, so exhaustive corruption sweeps stay fast.
    fn build_tiny() -> JemMapper {
        let genome = Genome::random(3_000, 0.5, 55);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 56);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 2,
            ell: 300,
            seed: 9,
        };
        JemMapper::build(&subjects, &config)
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jem-persist-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (mapper, subjects) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), mapper.config());
        assert_eq!(loaded.n_subjects(), mapper.n_subjects());
        for i in 0..mapper.n_subjects() {
            assert_eq!(loaded.subject_name(i as u32), mapper.subject_name(i as u32));
        }
        assert_eq!(loaded.table().entry_count(), mapper.table().entry_count());
        assert_eq!(loaded.table().backing(), "flat");
        // Mapping behaviour identical.
        let query = subjects[1].seq[..250.min(subjects[1].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let (mapper, _) = build();
        let mut first = Vec::new();
        save_index(&mut first, &mapper).unwrap();
        let loaded = load_index(&mut first.as_slice()).unwrap();
        let mut second = Vec::new();
        save_index(&mut second, &loaded).unwrap();
        assert_eq!(first, second, "v4 round-trip must reproduce exact bytes");
    }

    #[test]
    fn v3_upgrade_produces_identical_v4_bytes() {
        let (mapper, _) = build();
        // Direct v4 save of the built mapper…
        let mut direct = Vec::new();
        save_index(&mut direct, &mapper).unwrap();
        // …must equal save-as-v3 → load-v3 → save-v4 (the upgrade path).
        let mut v3 = Vec::new();
        save_index_v3(&mut v3, &mapper).unwrap();
        let migrated = load_index(&mut v3.as_slice()).unwrap();
        assert_eq!(migrated.table().backing(), "hash");
        let mut upgraded = Vec::new();
        save_index(&mut upgraded, &migrated).unwrap();
        assert_eq!(direct, upgraded);
    }

    #[test]
    fn path_load_uses_mmap_and_maps_identically() {
        let (mapper, subjects) = build();
        let path = temp_path("mmap");
        let mut f = File::create(&path).unwrap();
        save_index(&mut f, &mapper).unwrap();
        drop(f);
        let loaded = load_index_path(&path).unwrap();
        assert_eq!(loaded.table().backing(), "flat");
        let query = subjects[2].seq[..250.min(subjects[2].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
        // Saving the mmap-backed mapper reproduces the exact file bytes.
        let mut again = Vec::new();
        save_index(&mut again, &loaded).unwrap();
        assert_eq!(again, std::fs::read(&path).unwrap());
        drop(loaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefault_load_is_equivalent_to_lazy_load() {
        let (mapper, subjects) = build();
        let path = temp_path("prefault");
        let mut f = File::create(&path).unwrap();
        save_index(&mut f, &mapper).unwrap();
        drop(f);
        let eager = load_index_path_opts(&path, Integrity::Full, true).unwrap();
        let lazy = load_index_path(&path).unwrap();
        assert_eq!(eager.table().backing(), lazy.table().backing());
        let query = subjects[1].seq[..250.min(subjects[1].seq.len())].to_vec();
        let mut c1 = eager.new_counter();
        let mut c2 = lazy.new_counter();
        assert_eq!(
            eager.map_segment(&query, 0, &mut c1),
            lazy.map_segment(&query, 0, &mut c2)
        );
        // The prefaulted mapper re-serializes to the same bytes too.
        let (mut a, mut b) = (Vec::new(), Vec::new());
        save_index(&mut a, &eager).unwrap();
        save_index(&mut b, &lazy).unwrap();
        assert_eq!(a, b);
        drop((eager, lazy));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn path_load_header_only_succeeds_on_pristine_file() {
        let (mapper, _) = build();
        let path = temp_path("header-only");
        let mut f = File::create(&path).unwrap();
        save_index(&mut f, &mapper).unwrap();
        drop(f);
        let loaded = load_index_path_with(&path, Integrity::HeaderOnly).unwrap();
        assert_eq!(loaded.table().entry_count(), mapper.table().entry_count());
        drop(loaded);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn path_load_rejects_wrong_file_before_reading_body() {
        let path = temp_path("wrongfile");
        // A v4 header that declares far more words than the file holds.
        let mut words = vec![0u64; HEADER_WORDS];
        words[0] = MAGIC_V4_WORD;
        words[1] = 1 << 40;
        let mut f = File::create(&path).unwrap();
        for w in &words {
            f.write_all(&w.to_le_bytes()).unwrap();
        }
        drop(f);
        let err = load_index_path(&path).unwrap_err();
        assert!(
            err.to_string().contains("declares"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn path_load_rejects_v3_length_mismatch_fast() {
        let (mapper, _) = build();
        let path = temp_path("v3-short");
        let mut buf = Vec::new();
        save_index_v3(&mut buf, &mapper).unwrap();
        buf.truncate(buf.len() - 10);
        std::fs::write(&path, &buf).unwrap();
        let err = load_index_path(&path).unwrap_err();
        assert!(
            err.to_string().contains("body bytes"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = b"NOTANIDX".to_vec();
        data.extend_from_slice(&[0u8; 64]);
        assert!(load_index(&mut data.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_rejected() {
        let (mapper, _) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_index(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn extended_file_rejected() {
        let (mapper, _) = build();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        buf.push(0);
        assert!(load_index(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn every_single_byte_flip_rejected() {
        let mapper = build_tiny();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        assert!(
            load_index(&mut buf.as_slice()).is_ok(),
            "pristine file must load"
        );
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                load_index(&mut bad.as_slice()).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_rejected_v3() {
        let mapper = build_tiny();
        let mut buf = Vec::new();
        save_index_v3(&mut buf, &mapper).unwrap();
        assert!(
            load_index(&mut buf.as_slice()).is_ok(),
            "pristine v3 file must load"
        );
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x01;
            assert!(
                load_index(&mut bad.as_slice()).is_err(),
                "flip of byte {i} went undetected"
            );
        }
    }

    #[test]
    fn corrupt_but_well_framed_stream_rejected_by_decode() {
        // Hand-build a v3 file whose frame (length + checksum) is intact but
        // whose table stream is structural garbage: the error must come from
        // the fallible decode, not a panic.
        let mut body = Vec::new();
        for v in [12u64, 8, 2, 300, 9] {
            body.extend_from_slice(&v.to_le_bytes());
        }
        for v in [0u64, 8] {
            body.extend_from_slice(&v.to_le_bytes()); // minimizer, w = 8
        }
        body.extend_from_slice(&0u64.to_le_bytes()); // no subjects
        body.extend_from_slice(&1u64.to_le_bytes()); // stream_len = 1
        body.extend_from_slice(&999u64.to_le_bytes()); // garbage stream word
        let mut file = MAGIC_V3.to_vec();
        file.extend_from_slice(&(body.len() as u64).to_le_bytes());
        file.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        file.extend_from_slice(&body);
        let err = load_index(&mut file.as_slice()).unwrap_err();
        assert!(
            err.to_string().contains("table stream is corrupt"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn old_format_magic_rejected() {
        let mut data = b"JEMIDX2\0".to_vec();
        data.extend_from_slice(&[0u8; 128]);
        assert!(load_index(&mut data.as_slice()).is_err());
    }

    #[test]
    fn v3_roundtrips_through_legacy_writer() {
        let (mapper, subjects) = build();
        let mut buf = Vec::new();
        save_index_v3(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.config(), mapper.config());
        assert_eq!(loaded.n_subjects(), mapper.n_subjects());
        assert_eq!(loaded.table().entry_count(), mapper.table().entry_count());
        let query = subjects[1].seq[..250.min(subjects[1].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn syncmer_index_roundtrips_with_scheme() {
        let genome = Genome::random(30_000, 0.5, 321);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 322);
        let subjects = contig_records(&contigs);
        let config = MapperConfig {
            k: 16,
            w: 8,
            trials: 6,
            ell: 300,
            seed: 9,
        };
        let scheme = SketchScheme::ClosedSyncmer { s: 11 };
        let mapper = JemMapper::build_with_scheme(&subjects, &config, scheme);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.scheme(), scheme);
        let query = subjects[0].seq[..250.min(subjects[0].seq.len())].to_vec();
        let mut c1 = mapper.new_counter();
        let mut c2 = loaded.new_counter();
        assert_eq!(
            mapper.map_segment(&query, 0, &mut c1),
            loaded.map_segment(&query, 0, &mut c2)
        );
    }

    #[test]
    fn empty_index_roundtrips() {
        let config = MapperConfig {
            k: 12,
            w: 8,
            trials: 4,
            ell: 300,
            seed: 1,
        };
        let mapper = JemMapper::build(&[], &config);
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let loaded = load_index(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.n_subjects(), 0);
        assert_eq!(loaded.table().entry_count(), 0);
    }

    #[test]
    fn out_of_range_subject_id_rejected() {
        // A well-checksummed v4 file whose arena references a subject id
        // beyond the name table must fail under Full integrity.
        let mapper = build_tiny();
        let mut buf = Vec::new();
        save_index(&mut buf, &mapper).unwrap();
        let mut words: Vec<u64> = buf
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        // Stamp a bogus id into the first arena word of trial 0.
        let table_off = words[14] as usize;
        let arena_rel = words[table_off + 1 + 2] as usize; // trial 0 arena_off
        let arena_len = words[table_off + 1 + 3];
        assert!(arena_len > 0, "tiny index must have postings");
        words[table_off + arena_rel] = u64::from(u32::MAX);
        // Re-seal the checksum so only the range check can object.
        let tail = checksum_words(&words[3..]);
        words[2] = tail;
        let err = parse_v4(Arc::new(words), Integrity::Full).unwrap_err();
        assert!(
            err.to_string().contains("subjects are named"),
            "unexpected error: {err}"
        );
    }
}
