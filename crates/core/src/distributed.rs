//! The distributed-memory driver — the paper's parallel steps S1–S4 on the
//! `jem-psim` BSP world.
//!
//! | Step | Paper | Here |
//! |------|-------|------|
//! | S1 | block-distributed input load | superstep `"input load"` — each rank materializes its `O((N+M)/p)` block |
//! | S2 | local subject sketching | superstep `"subject sketch"` — per-rank sketch tables, encoded to `u64` streams |
//! | S3 | `MPI_Allgatherv` of local tables | collective `"sketch gather"` (charged `τ·log p + μ·nT` bytes) + replicated `"global table build"` (decode/union, identical on every rank) |
//! | S4 | local query mapping | superstep `"query map"` — each rank segments and maps its read block against the replicated global table |
//!
//! A final `"result gather"` collective collects the mappings (small).
//!
//! Because the world is simulated, running with `p = 64` on a single-core
//! host still yields faithful per-rank work decomposition; the simulated
//! makespan is what Table II reports.

use crate::config::MapperConfig;
use crate::mapper::{JemMapper, Mapping};
use crate::segment::make_segments;
use jem_index::{SketchTable, SubjectId};
use jem_psim::{block_range, CostModel, ExecMode, RunReport, World};
use jem_seq::SeqRecord;
use jem_sketch::{sketch_by_jem_into, JemSketch, SketchScratch};

/// Result of a distributed run: mappings plus full timing.
#[derive(Clone, Debug)]
pub struct DistributedOutcome {
    /// All mappings, ordered by `(read_idx, end)`.
    pub mappings: Vec<Mapping>,
    /// BSP timing report (simulated makespan, per-step, per-rank).
    pub report: RunReport,
    /// Total number of query segments processed.
    pub n_segments: usize,
}

impl DistributedOutcome {
    /// Fig. 7a-style breakdown of the run.
    pub fn breakdown(&self) -> StepBreakdown {
        StepBreakdown {
            input_load: self.report.step_secs("input load"),
            subject_sketch: self.report.step_secs("subject sketch"),
            sketch_gather: self.report.step_secs("sketch gather"),
            table_build: self.report.step_secs("global table build"),
            query_map: self.report.step_secs("query map"),
            result_gather: self.report.step_secs("result gather"),
        }
    }

    /// Querying throughput (segments/sec over the critical-path query time),
    /// the paper's Fig. 7b metric.
    pub fn query_throughput(&self) -> f64 {
        let t = self.report.step_secs("query map");
        if t == 0.0 {
            0.0
        } else {
            self.n_segments as f64 / t
        }
    }
}

/// Critical-path seconds per pipeline step (Fig. 7a).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepBreakdown {
    /// S1: input loading.
    pub input_load: f64,
    /// S2: subject sketching.
    pub subject_sketch: f64,
    /// S3 (comm): the Allgatherv.
    pub sketch_gather: f64,
    /// S3 (compute): building the replicated global table.
    pub table_build: f64,
    /// S4: query sketching + lookup + reporting.
    pub query_map: f64,
    /// Final result collection.
    pub result_gather: f64,
}

impl StepBreakdown {
    /// Total of all steps (≈ makespan).
    pub fn total(&self) -> f64 {
        self.input_load
            + self.subject_sketch
            + self.sketch_gather
            + self.table_build
            + self.query_map
            + self.result_gather
    }
}

/// Run the full distributed L2C mapping on `p` simulated ranks.
pub fn run_distributed(
    subjects: &[SeqRecord],
    reads: &[SeqRecord],
    config: &MapperConfig,
    p: usize,
    cost: CostModel,
    mode: ExecMode,
) -> DistributedOutcome {
    let params = config.jem_params().expect("invalid mapper configuration");
    let family = config.hash_family();
    let mut world = World::new(p, cost).with_mode(mode);

    // S1 — input load: each rank materializes its block of both inputs
    // (byte copies stand in for FASTA parsing; volume is O((N+M)/p)).
    let blocks: Vec<(Vec<SeqRecord>, Vec<SeqRecord>)> = world.superstep("input load", |rank| {
        let s_range = block_range(p, subjects.len(), rank);
        let q_range = block_range(p, reads.len(), rank);
        (subjects[s_range].to_vec(), reads[q_range].to_vec())
    });

    // S2 — sketch subjects: per-rank local tables over global subject ids.
    let encoded: Vec<Vec<u64>> = world.superstep("subject sketch", |rank| {
        let s_range = block_range(p, subjects.len(), rank);
        let mut local = SketchTable::new(config.trials);
        let mut scratch = SketchScratch::new();
        let mut sketch = JemSketch::default();
        let (local_subjects, _) = &blocks[rank];
        for (offset, rec) in local_subjects.iter().enumerate() {
            let id = (s_range.start + offset) as SubjectId;
            sketch_by_jem_into(&rec.seq, params, &family, &mut scratch, &mut sketch);
            local.insert_trial_lists(&sketch.per_trial, id);
        }
        local.encode()
    });

    // S3 — gather: charge the Allgatherv volume, then build the replicated
    // global table (identical decode+union on every rank).
    let gather_bytes: usize = encoded.iter().map(|e| e.len() * 8).sum();
    world.charge_comm("sketch gather", gather_bytes);
    let global_table = world.superstep_replicated("global table build", || {
        let mut global = SketchTable::new(config.trials);
        for stream in &encoded {
            global
                .decode_into(stream)
                .expect("in-process encoded streams are well-formed by construction");
        }
        global
    });
    let subject_names: Vec<String> = subjects.iter().map(|s| s.id.clone()).collect();
    let mapper = JemMapper::from_table(global_table, subject_names, config);

    // S4 — map queries: each rank segments and maps its read block.
    let per_rank: Vec<(Vec<Mapping>, usize)> = world.superstep("query map", |rank| {
        let q_range = block_range(p, reads.len(), rank);
        let (_, local_reads) = &blocks[rank];
        let mut segments = make_segments(local_reads, config.ell);
        // Rebase read indices from block-local to global.
        for s in segments.iter_mut() {
            s.read_idx += q_range.start as u32;
        }
        let n = segments.len();
        (mapper.map_segments(&segments), n)
    });

    // Final gather of the (small) mapping output.
    let result_bytes: usize = per_rank
        .iter()
        .map(|(m, _)| m.len() * std::mem::size_of::<Mapping>())
        .sum();
    world.charge_comm("result gather", result_bytes);

    let n_segments = per_rank.iter().map(|(_, n)| n).sum();
    let mut mappings: Vec<Mapping> = per_rank.into_iter().flat_map(|(m, _)| m).collect();
    mappings.sort_unstable(); // total order; see Mapping's Ord doc
    DistributedOutcome {
        mappings,
        report: world.into_report(),
        n_segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    fn world_data() -> (Vec<SeqRecord>, Vec<SeqRecord>) {
        let genome = Genome::random(60_000, 0.5, 21);
        let contigs = fragment_contigs(&genome, &ContigProfile::small_genome(), 22);
        let profile = HifiProfile {
            coverage: 2.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = simulate_hifi(&genome, &profile, 23);
        (contig_records(&contigs), read_records(&reads))
    }

    fn config() -> MapperConfig {
        MapperConfig {
            k: 12,
            w: 10,
            trials: 8,
            ell: 400,
            seed: 3,
        }
    }

    #[test]
    fn distributed_matches_sequential_for_any_p() {
        let (subjects, reads) = world_data();
        let mapper = JemMapper::build(&subjects, &config());
        let mut expected = mapper.map_reads(&reads);
        expected.sort_unstable();
        for p in [1usize, 2, 3, 8] {
            let outcome = run_distributed(
                &subjects,
                &reads,
                &config(),
                p,
                CostModel::zero(),
                ExecMode::Sequential,
            );
            assert_eq!(
                outcome.mappings, expected,
                "p = {p} must not change the result"
            );
        }
    }

    #[test]
    fn report_contains_all_steps() {
        let (subjects, reads) = world_data();
        let outcome = run_distributed(
            &subjects,
            &reads,
            &config(),
            4,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        let b = outcome.breakdown();
        assert!(b.input_load > 0.0);
        assert!(b.subject_sketch > 0.0);
        assert!(b.sketch_gather > 0.0, "gather must be charged for p > 1");
        assert!(b.table_build > 0.0);
        assert!(b.query_map > 0.0);
        assert!(outcome.n_segments > 0);
        assert!(outcome.query_throughput() > 0.0);
        // Makespan decomposes into the named steps.
        assert!((b.total() - outcome.report.makespan_secs()).abs() < 1e-9);
    }

    #[test]
    fn comm_fraction_grows_with_p_but_stays_minor() {
        let (subjects, reads) = world_data();
        let frac = |p| {
            run_distributed(
                &subjects,
                &reads,
                &config(),
                p,
                CostModel::ethernet_10g(),
                ExecMode::Sequential,
            )
            .report
            .comm_fraction()
        };
        let f4 = frac(4);
        let f16 = frac(16);
        assert!(
            f16 >= f4 * 0.5,
            "comm fraction should not collapse with p (f4={f4}, f16={f16})"
        );
        assert!(
            f16 < 0.5,
            "communication must stay a minority share, got {f16}"
        );
    }

    #[test]
    fn single_rank_equals_sequential_work() {
        let (subjects, reads) = world_data();
        let outcome = run_distributed(
            &subjects,
            &reads,
            &config(),
            1,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        assert_eq!(outcome.report.comm_secs(), 0.0);
        assert!(!outcome.mappings.is_empty());
    }

    #[test]
    fn threaded_mode_matches_sequential() {
        let (subjects, reads) = world_data();
        let seq = run_distributed(
            &subjects,
            &reads,
            &config(),
            4,
            CostModel::zero(),
            ExecMode::Sequential,
        );
        let thr = run_distributed(
            &subjects,
            &reads,
            &config(),
            4,
            CostModel::zero(),
            ExecMode::Threaded,
        );
        assert_eq!(thr.mappings, seq.mappings);
        assert_eq!(thr.n_segments, seq.n_segments);
    }

    #[test]
    fn more_ranks_than_work_items() {
        let (subjects, reads) = world_data();
        let few_reads = &reads[..3.min(reads.len())];
        let outcome = run_distributed(
            &subjects,
            few_reads,
            &config(),
            64,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        // Idle ranks are fine; results still correct.
        let mapper = JemMapper::build(&subjects, &config());
        let mut expected = mapper.map_reads(few_reads);
        expected.sort_unstable();
        assert_eq!(outcome.mappings, expected);
    }

    #[test]
    fn empty_inputs_are_harmless() {
        let (subjects, _) = world_data();
        let outcome = run_distributed(
            &subjects,
            &[],
            &config(),
            4,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        assert!(outcome.mappings.is_empty());
        assert_eq!(outcome.n_segments, 0);
        let outcome = run_distributed(
            &[],
            &[],
            &config(),
            4,
            CostModel::ethernet_10g(),
            ExecMode::Sequential,
        );
        assert!(outcome.mappings.is_empty());
    }

    #[test]
    fn strong_scaling_reduces_query_critical_path() {
        let (subjects, reads) = world_data();
        let q = |p| {
            run_distributed(
                &subjects,
                &reads,
                &config(),
                p,
                CostModel::zero(),
                ExecMode::Sequential,
            )
            .report
            .step_secs("query map")
        };
        let q1 = q(1);
        let q8 = q(8);
        assert!(
            q8 < q1 * 0.5,
            "query critical path must shrink substantially with p (q1={q1}, q8={q8})"
        );
    }
}
