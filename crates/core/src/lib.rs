//! # jem-core — the JEM-Mapper (Algorithm 2 of the paper)
//!
//! Maps long-read *end segments* (prefix/suffix of length ℓ) to their best
//! matching contig using the minimizer-based Jaccard estimator sketch:
//!
//! 1. **Index** — every contig is sketched with [`jem_sketch::sketch_by_jem`]
//!    and inserted into the `T`-banked [`jem_index::SketchTable`].
//! 2. **Map** — each query end segment is sketched the same way; for every
//!    trial `t`, contigs colliding with the query in bank `t` form
//!    `Hits_r[t]`; the most frequent contig across trials is the reported
//!    best hit (ties to the smaller contig id). Hit counting uses the
//!    paper's lazy-update counter.
//!
//! Three drivers share this logic:
//!
//! * [`JemMapper::map_reads`] — sequential (one counter, queries one by one);
//! * [`parallel::map_reads_parallel`] — shared-memory rayon driver;
//! * [`distributed::run_distributed`] — the paper's S1–S4 distributed
//!   algorithm executed on the `jem-psim` BSP world, producing the per-step
//!   timing breakdown of Figs. 7–8 and the strong-scaling data of Table II.
//! * [`resilient::run_distributed_resilient`] — the same pipeline under a
//!   [`jem_psim::FaultPlan`]: crashed ranks' blocks are reassigned and
//!   replayed, corrupted sketch streams are detected (framed, checksummed
//!   transport) and re-requested, and an optional checkpoint makes the run
//!   restartable past the sketch-gather barrier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod contained;
pub mod distributed;
pub mod mapper;
pub mod parallel;
pub mod persist;
pub mod report;
pub mod resilient;
pub mod segment;

pub use config::MapperConfig;
pub use contained::{ContainedHit, TiledMapping};
pub use distributed::{run_distributed, DistributedOutcome, StepBreakdown};
pub use mapper::{JemMapper, MapScratch, Mapping};
pub use parallel::{map_reads_parallel, map_reads_parallel_with};
pub use persist::{
    load_index, load_index_path, load_index_path_opts, load_index_path_with, save_index,
    save_index_v3, Integrity,
};
pub use report::{mapping_pairs, write_mappings_tsv, write_mappings_tsv_named};
pub use resilient::{run_distributed_resilient, ResilienceError, ResilienceOptions};
pub use segment::{make_segments, QuerySegment, ReadEnd};
