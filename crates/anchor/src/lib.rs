//! # jem-anchor — stage-2 refinement of sketch mappings
//!
//! The paper's mapper stops at "best contig per end segment"; every
//! downstream consumer (polishing, scaffolding, cross-tool benchmarks)
//! needs *coordinates*. This crate adds the standard second stage over the
//! sketch index:
//!
//! 1. **Anchors** — stage-1's top-x candidate contigs are re-sketched with
//!    the index's own scheme ([`TargetIndex`], cached per contig) and
//!    joined against the segment's scheme positions into strand-aware
//!    `(read_pos, subject_pos)` [`Anchor`] pairs.
//! 2. **Dominance filter** — candidate windows over each target are scored
//!    by anchor support and thinned with sweepmap's O(n) monotone-deque
//!    filter ([`filter_dominated`]): a window survives only if nothing
//!    within half a window length supports more anchors.
//! 3. **Chaining** — surviving windows run a minimap2-style colinear chain
//!    DP ([`chain_anchors`], O(n log n) patience LIS, proptested against a
//!    naive O(n²) reference).
//! 4. **MAPQ + PAF** — the best chain becomes a [`Placement`]; the margin
//!    to the second-best chain anywhere in the shortlist drives the
//!    mapquik-style [`mapq_from_scores`] model, and [`PafRow`] serializes
//!    the standard 12-column PAF line.
//!
//! [`AnchorPipeline`] fuses both stages off one sketch pass per segment;
//! its `mappings` output is byte-identical to the legacy stage-1 drivers,
//! so coordinate output is strictly additive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod chain;
pub mod filter;
pub mod paf;
pub mod pipeline;
pub mod refine;

pub use anchor::{collect_anchors, occurrence_is_forward, Anchor, TargetIndex};
pub use chain::{chain_anchors, chain_anchors_naive, Chain, ChainScratch};
pub use filter::{filter_dominated, filter_dominated_naive, FilterScratch, Window};
pub use paf::{mapq_from_scores, write_paf, PafRow};
pub use pipeline::{AnchorOutput, AnchorPipeline};
pub use refine::{Placement, RefineParams, RefineScratch, RefineStats, Refiner};
