//! Positioned anchors and the per-target position index they come from.
//!
//! Stage 1 works on positionless trial collisions, so once a shortlist of
//! candidate contigs exists the refinement stage re-derives *where* the
//! shared sketch positions sit: each candidate contig is re-sketched with
//! the index's own scheme into a [`TargetIndex`] (code → occurrence
//! positions, strand-annotated), and the query segment's scheme positions
//! are joined against it to produce `(read_pos, subject_pos)` [`Anchor`]
//! pairs. Re-sketching only the shortlisted candidates keeps the on-disk
//! JEMIDX layout untouched while still giving the chain DP exact
//! coordinates.

use jem_seq::Kmer;
use jem_sketch::{Minimizer, SketchScheme};
use std::collections::HashMap;

/// One co-occurring position pair between a query segment and a target.
///
/// For reverse-strand anchors `qpos` is already flipped into target-forward
/// orientation (`seg_len − k − read_pos`) so that colinear chains are
/// increasing in both fields on either strand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Anchor {
    /// Query position (target-forward orientation).
    pub qpos: u32,
    /// Target (contig) position.
    pub tpos: u32,
}

/// One occurrence of a sketch code on a target sequence.
#[derive(Clone, Copy, Debug)]
struct Posting {
    pos: u32,
    /// Was the canonical code the forward k-mer at this position?
    fwd: bool,
}

/// Scheme positions of one target contig, keyed by canonical code.
///
/// Built lazily — only for contigs that make a stage-1 shortlist — and
/// cached per [`crate::Refiner`], so a contig is re-sketched at most once
/// per run regardless of how many segments shortlist it.
#[derive(Clone, Debug)]
pub struct TargetIndex {
    map: HashMap<u64, Vec<Posting>>,
    len: u32,
}

impl TargetIndex {
    /// Sketch `seq` with the mapping index's `scheme`/`k` and index every
    /// selected position by code.
    pub fn build(seq: &[u8], scheme: SketchScheme, k: usize) -> Self {
        let mut map: HashMap<u64, Vec<Posting>> = HashMap::new();
        for m in scheme.extract(seq, k) {
            map.entry(m.code).or_default().push(Posting {
                pos: m.pos,
                fwd: occurrence_is_forward(seq, m.pos as usize, k, m.code),
            });
        }
        TargetIndex {
            map,
            len: seq.len() as u32,
        }
    }

    /// Target sequence length in bases.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when no position was selected (e.g. a target shorter than `k`).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of distinct sketch codes indexed.
    pub fn n_codes(&self) -> usize {
        self.map.len()
    }
}

/// Join the query segment's scheme positions against a target index,
/// appending forward-strand anchors to `fwd` and reverse-strand anchors
/// (query coordinate pre-flipped) to `rev`. Returns the number of anchors
/// produced.
///
/// `query_mins`/`query_fwd` are the segment's scheme positions and their
/// per-position strand flags (see [`occurrence_is_forward`]), extracted
/// once per segment and reused across every candidate target.
pub fn collect_anchors(
    query_mins: &[Minimizer],
    query_fwd: &[bool],
    seg_len: usize,
    k: usize,
    target: &TargetIndex,
    fwd: &mut Vec<Anchor>,
    rev: &mut Vec<Anchor>,
) -> usize {
    debug_assert_eq!(query_mins.len(), query_fwd.len());
    let flip_base = (seg_len - k) as u32;
    let mut produced = 0usize;
    for (m, &q_fwd) in query_mins.iter().zip(query_fwd) {
        let Some(postings) = target.map.get(&m.code) else {
            continue;
        };
        for p in postings {
            let reverse = q_fwd != p.fwd;
            let (list, qpos) = if reverse {
                (&mut *rev, flip_base - m.pos)
            } else {
                (&mut *fwd, m.pos)
            };
            list.push(Anchor { qpos, tpos: p.pos });
            produced += 1;
        }
    }
    produced
}

/// Does the canonical code at `pos` equal the forward k-mer there?
pub fn occurrence_is_forward(seq: &[u8], pos: usize, k: usize, canonical_code: u64) -> bool {
    match Kmer::from_bytes(&seq[pos..pos + k]) {
        Ok(kmer) => kmer.code() == canonical_code,
        Err(_) => true, // unreachable for scheme-selected positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    const K: usize = 11;
    const SCHEME: SketchScheme = SketchScheme::Minimizer { w: 5 };

    fn query_parts(seg: &[u8]) -> (Vec<Minimizer>, Vec<bool>) {
        let mins = SCHEME.extract(seg, K);
        let fwd = mins
            .iter()
            .map(|m| occurrence_is_forward(seg, m.pos as usize, K, m.code))
            .collect();
        (mins, fwd)
    }

    #[test]
    fn verbatim_window_yields_diagonal_forward_anchors() {
        let target = rng_seq(4_000, 17);
        let seg = &target[1_000..1_600];
        let tindex = TargetIndex::build(&target, SCHEME, K);
        let (mins, q_fwd) = query_parts(seg);
        let (mut fwd, mut rev) = (Vec::new(), Vec::new());
        let n = collect_anchors(&mins, &q_fwd, seg.len(), K, &tindex, &mut fwd, &mut rev);
        assert_eq!(n, fwd.len() + rev.len());
        assert!(fwd.len() > 10, "only {} forward anchors", fwd.len());
        // The true placement appears as a perfect diagonal offset of 1000.
        let diagonal = fwd.iter().filter(|a| a.tpos == a.qpos + 1_000).count();
        assert!(
            diagonal * 2 > fwd.len(),
            "diagonal {} of {} anchors",
            diagonal,
            fwd.len()
        );
    }

    #[test]
    fn revcomp_window_yields_colinear_reverse_anchors() {
        let target = rng_seq(4_000, 29);
        let seg = revcomp_bytes(&target[2_000..2_600]);
        let tindex = TargetIndex::build(&target, SCHEME, K);
        let (mins, q_fwd) = query_parts(&seg);
        let (mut fwd, mut rev) = (Vec::new(), Vec::new());
        collect_anchors(&mins, &q_fwd, seg.len(), K, &tindex, &mut fwd, &mut rev);
        assert!(rev.len() > 10, "only {} reverse anchors", rev.len());
        // After the coordinate flip the true placement is again a diagonal.
        let diagonal = rev.iter().filter(|a| a.tpos == a.qpos + 2_000).count();
        assert!(
            diagonal * 2 > rev.len(),
            "diagonal {} of {} reverse anchors",
            diagonal,
            rev.len()
        );
    }

    #[test]
    fn unrelated_sequences_share_few_anchors() {
        let target = rng_seq(4_000, 31);
        let alien = rng_seq(600, 777);
        let tindex = TargetIndex::build(&target, SCHEME, K);
        let (mins, q_fwd) = query_parts(&alien);
        let (mut fwd, mut rev) = (Vec::new(), Vec::new());
        let n = collect_anchors(&mins, &q_fwd, alien.len(), K, &tindex, &mut fwd, &mut rev);
        assert!(n < 10, "{n} chance anchors is suspiciously many");
    }

    #[test]
    fn short_target_builds_empty_index() {
        let tindex = TargetIndex::build(b"ACGT", SCHEME, K);
        assert!(tindex.is_empty());
        assert_eq!(tindex.len(), 4);
        assert_eq!(tindex.n_codes(), 0);
    }
}
