//! Colinear anchor chaining: the O(n log n) DP of the second stage.
//!
//! A *chain* is the longest sequence of anchors strictly increasing in both
//! the query and the target coordinate — the minimap2 colinear-chaining
//! objective restricted to unit anchor weights, which reduces to a 2-D
//! longest-increasing-subsequence problem. [`chain_anchors`] solves it in
//! `O(n log n)` with patience sorting over a reusable scratch;
//! [`chain_anchors_naive`] is the quadratic reference DP the proptests pin
//! the fast kernel against.
//!
//! Unit weights are the right objective here because the anchors inside one
//! candidate window come from an ℓ-length end segment: gaps are bounded by
//! the segment span, so maximizing the number of colinear sketch positions
//! is the dominant signal and keeps the DP exactly equivalent to a cheap
//! reference (the gap-penalized generalization has no exact
//! `O(n log n)` form).

use crate::anchor::Anchor;

/// One chained alignment candidate over a single `(subject, strand)` group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Chain {
    /// Number of chained anchors — the chain score.
    pub n_anchors: u32,
    /// Smallest chained query position.
    pub q_start: u32,
    /// Largest chained query position (inclusive; add `k` for a span end).
    pub q_last: u32,
    /// Smallest chained target position.
    pub t_start: u32,
    /// Largest chained target position (inclusive).
    pub t_last: u32,
}

/// Reusable buffers for [`chain_anchors`]: the coordinate-sorted copy of
/// the window's anchors, the patience piles and the parent links. One per
/// refinement scratch, reused across every window of every segment.
#[derive(Clone, Debug, Default)]
pub struct ChainScratch {
    sorted: Vec<Anchor>,
    /// `tails[len]` = index (into `sorted`) of the anchor ending the best
    /// known chain of length `len + 1` with the smallest tail `tpos`.
    tails: Vec<u32>,
    parent: Vec<u32>,
}

const NO_PARENT: u32 = u32::MAX;

/// Best chain over `anchors` in `O(n log n)`; `None` when empty.
///
/// Equivalent to [`chain_anchors_naive`] in score for every input, and the
/// returned chain is always *valid*: strictly increasing in `qpos` and
/// `tpos` with exactly `n_anchors` links. Deterministic for a given input
/// order (ties resolve through the total sort and the leftmost patience
/// pile).
pub fn chain_anchors(anchors: &[Anchor], scratch: &mut ChainScratch) -> Option<Chain> {
    if anchors.is_empty() {
        return None;
    }
    let ChainScratch {
        sorted,
        tails,
        parent,
    } = scratch;
    sorted.clear();
    sorted.extend_from_slice(anchors);
    // qpos ascending; equal qpos sorted by tpos DESCENDING so two anchors
    // sharing a query position can never co-occur in one strictly
    // increasing tpos subsequence.
    sorted.sort_unstable_by(|a, b| a.qpos.cmp(&b.qpos).then(b.tpos.cmp(&a.tpos)));
    tails.clear();
    parent.clear();
    parent.resize(sorted.len(), NO_PARENT);
    for (i, a) in sorted.iter().enumerate() {
        // First pile whose tail tpos is >= a.tpos (strict increase).
        let pos = tails.partition_point(|&j| sorted[j as usize].tpos < a.tpos);
        if pos > 0 {
            parent[i] = tails[pos - 1];
        }
        if pos == tails.len() {
            tails.push(i as u32);
        } else {
            tails[pos] = i as u32;
        }
    }
    let mut idx = *tails.last().expect("non-empty anchors");
    let last = sorted[idx as usize];
    let mut chain = Chain {
        n_anchors: tails.len() as u32,
        q_start: last.qpos,
        q_last: last.qpos,
        t_start: last.tpos,
        t_last: last.tpos,
    };
    while parent[idx as usize] != NO_PARENT {
        idx = parent[idx as usize];
        let a = sorted[idx as usize];
        chain.q_start = a.qpos;
        chain.t_start = a.tpos;
    }
    Some(chain)
}

/// Quadratic reference DP: `f[i] = 1 + max { f[j] : qpos_j < qpos_i and
/// tpos_j < tpos_i }` over the same sorted order as the fast kernel.
/// Used by the proptest suite; not a production path.
pub fn chain_anchors_naive(anchors: &[Anchor]) -> Option<Chain> {
    if anchors.is_empty() {
        return None;
    }
    let mut sorted = anchors.to_vec();
    sorted.sort_unstable_by(|a, b| a.qpos.cmp(&b.qpos).then(b.tpos.cmp(&a.tpos)));
    let n = sorted.len();
    let mut f = vec![1u32; n];
    let mut back = vec![NO_PARENT; n];
    for i in 0..n {
        for j in 0..i {
            if sorted[j].qpos < sorted[i].qpos && sorted[j].tpos < sorted[i].tpos && f[j] + 1 > f[i]
            {
                f[i] = f[j] + 1;
                back[i] = j as u32;
            }
        }
    }
    let (mut idx, _) = f
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .expect("non-empty");
    let last = sorted[idx];
    let mut chain = Chain {
        n_anchors: f[idx],
        q_start: last.qpos,
        q_last: last.qpos,
        t_start: last.tpos,
        t_last: last.tpos,
    };
    while back[idx] != NO_PARENT {
        idx = back[idx] as usize;
        chain.q_start = sorted[idx].qpos;
        chain.t_start = sorted[idx].tpos;
    }
    Some(chain)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(qpos: u32, tpos: u32) -> Anchor {
        Anchor { qpos, tpos }
    }

    #[test]
    fn empty_input() {
        assert_eq!(chain_anchors(&[], &mut ChainScratch::default()), None);
        assert_eq!(chain_anchors_naive(&[]), None);
    }

    #[test]
    fn single_anchor() {
        let c = chain_anchors(&[a(5, 9)], &mut ChainScratch::default()).unwrap();
        assert_eq!(c.n_anchors, 1);
        assert_eq!((c.q_start, c.t_start, c.q_last, c.t_last), (5, 9, 5, 9));
    }

    #[test]
    fn perfect_diagonal_chains_fully() {
        let anchors: Vec<Anchor> = (0..50).map(|i| a(i * 10, 1000 + i * 10)).collect();
        let mut scratch = ChainScratch::default();
        let c = chain_anchors(&anchors, &mut scratch).unwrap();
        assert_eq!(c.n_anchors, 50);
        assert_eq!(c.q_start, 0);
        assert_eq!(c.t_start, 1000);
        assert_eq!(c.q_last, 490);
        assert_eq!(c.t_last, 1490);
    }

    #[test]
    fn crossing_anchors_cannot_both_chain() {
        // (0, 100) and (10, 50) cross: only one can be in any chain.
        let c = chain_anchors(&[a(0, 100), a(10, 50)], &mut ChainScratch::default()).unwrap();
        assert_eq!(c.n_anchors, 1);
    }

    #[test]
    fn equal_coordinates_do_not_chain() {
        // Strictness in both axes: shared qpos or tpos breaks the chain.
        let same_q = [a(5, 10), a(5, 20)];
        let same_t = [a(5, 10), a(9, 10)];
        let mut s = ChainScratch::default();
        assert_eq!(chain_anchors(&same_q, &mut s).unwrap().n_anchors, 1);
        assert_eq!(chain_anchors(&same_t, &mut s).unwrap().n_anchors, 1);
    }

    #[test]
    fn matches_naive_on_a_repetitive_grid() {
        // Repeat-heavy pattern: every query position hits every target
        // position (the worst case for chaining ambiguity).
        let mut anchors = Vec::new();
        for q in 0..8u32 {
            for t in 0..8u32 {
                anchors.push(a(q * 3, t * 7));
            }
        }
        let fast = chain_anchors(&anchors, &mut ChainScratch::default()).unwrap();
        let naive = chain_anchors_naive(&anchors).unwrap();
        assert_eq!(fast.n_anchors, naive.n_anchors);
        assert_eq!(fast.n_anchors, 8);
    }

    #[test]
    fn scratch_reuse_is_stable() {
        let mut scratch = ChainScratch::default();
        let sets = [
            vec![a(1, 1), a(2, 2), a(3, 3)],
            vec![a(9, 1)],
            vec![],
            vec![a(0, 5), a(1, 4), a(2, 3), a(3, 6)],
        ];
        for set in &sets {
            let fresh = chain_anchors(set, &mut ChainScratch::default());
            assert_eq!(chain_anchors(set, &mut scratch), fresh);
        }
    }
}
