//! Sweepmap-style dominance filtering of candidate windows.
//!
//! Stage 2 slides an ℓ-length window over each candidate target and scores
//! every window start by its anchor support (a Jaccard-style count `j`).
//! Nearby window starts describe the same placement, so before the chain DP
//! runs we keep only windows that are not *dominated*: window `i` survives
//! iff no other window within `sep` target bases of it has a strictly
//! better `(j, -index)` key. [`filter_dominated`] does this in `O(n)` with
//! a monotone deque (the sweepmap `filter_reasonable` idea);
//! [`filter_dominated_naive`] is the quadratic reference used by the edge
//! case tests and proptests.

/// One candidate placement: a window start on the target plus its anchor
/// support. Produced by the window sweep, consumed by the dominance filter
/// and the chain DP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// Window start on the target (bases).
    pub t_start: u32,
    /// Anchor support for this window — shared sketch positions in
    /// `[t_start, t_start + len)`.
    pub j: u32,
}

/// Reusable deque storage for [`filter_dominated`].
#[derive(Clone, Debug, Default)]
pub struct FilterScratch {
    deque: Vec<u32>,
    head: usize,
}

/// Keep the windows not dominated within `sep` target bases, in `O(n)`.
///
/// `windows` must be sorted by `t_start` ascending (the sweep emits them in
/// that order). Window `i` is *dominated* when some `j != i` with
/// `|t_start_j - t_start_i| <= sep` has a greater `j` count, or an equal
/// count and a smaller index — so among tied neighbours exactly the
/// earliest survives. Survivors are appended to `out` preserving order.
///
/// The deque holds indices whose keys decrease front-to-back over the
/// active span; a window survives iff it is at the front of its own span's
/// deque, which the naive quadratic definition reproduces exactly.
pub fn filter_dominated(
    windows: &[Window],
    sep: u32,
    scratch: &mut FilterScratch,
    out: &mut Vec<Window>,
) {
    debug_assert!(windows.windows(2).all(|p| p[0].t_start <= p[1].t_start));
    scratch.deque.clear();
    scratch.head = 0;
    // right[i]: the deque front at the moment every window within +sep of
    // window i has been pushed — i.e. the best key over [i - sep, i + sep].
    // One forward pass suffices because keys use (j, -index): pushing later
    // windows never evicts an earlier strictly-better one.
    let mut right = 0usize;
    for i in 0..windows.len() {
        // Admit every window starting within sep of windows[i].
        while right < windows.len()
            && windows[right].t_start <= windows[i].t_start.saturating_add(sep)
        {
            // Pop keys not better than the incoming one: equal j loses to
            // the earlier index, so pop only strictly smaller j.
            while scratch.deque.len() > scratch.head {
                let back = *scratch.deque.last().expect("non-empty tail") as usize;
                if windows[back].j < windows[right].j {
                    scratch.deque.pop();
                } else {
                    break;
                }
            }
            scratch.deque.push(right as u32);
            right += 1;
        }
        // Expire windows more than sep before windows[i].
        while scratch.head < scratch.deque.len() {
            let front = scratch.deque[scratch.head] as usize;
            if windows[front].t_start.saturating_add(sep) < windows[i].t_start {
                scratch.head += 1;
            } else {
                break;
            }
        }
        if scratch.deque.get(scratch.head) == Some(&(i as u32)) {
            out.push(windows[i]);
        }
    }
}

/// Quadratic reference for [`filter_dominated`]: the literal definition,
/// one pairwise comparison per window pair. Test-only semantics oracle.
pub fn filter_dominated_naive(windows: &[Window], sep: u32) -> Vec<Window> {
    let mut out = Vec::new();
    for (i, w) in windows.iter().enumerate() {
        let dominated = windows.iter().enumerate().any(|(j, v)| {
            j != i && v.t_start.abs_diff(w.t_start) <= sep && (v.j > w.j || (v.j == w.j && j < i))
        });
        if !dominated {
            out.push(*w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(windows: &[Window], sep: u32) -> Vec<Window> {
        let mut out = Vec::new();
        filter_dominated(windows, sep, &mut FilterScratch::default(), &mut out);
        assert_eq!(out, filter_dominated_naive(windows, sep), "fast != naive");
        out
    }

    fn w(t_start: u32, j: u32) -> Window {
        Window { t_start, j }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(run(&[], 100).is_empty());
    }

    #[test]
    fn lone_window_survives() {
        assert_eq!(run(&[w(10, 3)], 0), vec![w(10, 3)]);
    }

    #[test]
    fn peak_suppresses_neighbours() {
        let windows = [w(0, 2), w(10, 5), w(20, 3)];
        assert_eq!(run(&windows, 50), vec![w(10, 5)]);
    }

    #[test]
    fn far_apart_windows_all_survive() {
        let windows = [w(0, 2), w(1000, 5), w(2000, 3)];
        assert_eq!(run(&windows, 50), windows);
    }

    #[test]
    fn tie_keeps_only_the_earliest() {
        let windows = [w(0, 4), w(5, 4), w(9, 4)];
        assert_eq!(run(&windows, 50), vec![w(0, 4)]);
    }

    #[test]
    fn tie_outside_sep_keeps_both() {
        let windows = [w(0, 4), w(100, 4)];
        assert_eq!(run(&windows, 50), windows);
    }

    #[test]
    fn chain_of_local_dominance_is_not_transitive() {
        // 0 dominates 40 (within 50), 80 dominates 40 too, but 0 and 80
        // are 80 apart: both peaks survive, the valley does not.
        let windows = [w(0, 5), w(40, 1), w(80, 5)];
        assert_eq!(run(&windows, 50), vec![w(0, 5), w(80, 5)]);
    }

    #[test]
    fn fully_nested_equal_starts() {
        // Coincident window starts (fully nested spans): one survivor.
        let windows = [w(7, 3), w(7, 9), w(7, 9), w(7, 1)];
        assert_eq!(run(&windows, 0), vec![w(7, 9)]);
    }

    #[test]
    fn sep_zero_only_exact_overlaps_compete() {
        let windows = [w(0, 1), w(1, 9), w(2, 1)];
        assert_eq!(run(&windows, 0), windows);
    }

    #[test]
    fn saturating_sep_near_u32_max() {
        let windows = [w(0, 2), w(u32::MAX - 1, 3)];
        assert_eq!(run(&windows, u32::MAX), vec![w(u32::MAX - 1, 3)]);
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        let mut scratch = FilterScratch::default();
        let sets: [&[Window]; 3] = [&[w(0, 2), w(10, 5), w(20, 3)], &[], &[w(3, 1), w(4, 1)]];
        for set in sets {
            let mut out = Vec::new();
            filter_dominated(set, 8, &mut scratch, &mut out);
            assert_eq!(out, filter_dominated_naive(set, 8));
        }
    }
}
