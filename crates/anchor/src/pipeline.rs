//! End-to-end drivers: stage-1 sketch mapping fused with stage-2
//! refinement.
//!
//! [`AnchorPipeline`] runs both stages off a single sketch pass per
//! segment: the per-trial collision lists feed a candidate ranking whose
//! top entry reproduces the legacy best-hit [`Mapping`] exactly (count
//! descending, smaller id on ties — the lazy counter's order), and whose
//! top-x entries form the stage-2 shortlist. The legacy TSV path is thus
//! strictly additive: `mappings` out of these drivers is byte-identical to
//! [`JemMapper::map_reads`] / [`jem_core::map_reads_parallel`], pinned by
//! the `anchor_paf` integration test.

use crate::paf::PafRow;
use crate::refine::{RefineScratch, RefineStats, Refiner};
use jem_core::{make_segments, JemMapper, MapScratch, Mapping, QuerySegment};
use jem_index::SubjectId;
use jem_seq::SeqRecord;
use rayon::prelude::*;

/// Both stages' output for one read set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnchorOutput {
    /// Stage-1 best-hit mappings — identical to the legacy drivers'.
    pub mappings: Vec<Mapping>,
    /// Stage-2 coordinate placements, one per refinable segment, in
    /// `(read_idx, end)` order.
    pub paf: Vec<PafRow>,
}

/// Per-thread working state for the fused driver.
#[derive(Clone, Debug, Default)]
struct PipelineScratch {
    map: MapScratch,
    all: Vec<SubjectId>,
    ranked: Vec<(SubjectId, u32)>,
    refine: RefineScratch,
}

/// The fused stage-1 + stage-2 mapping pipeline.
#[derive(Debug)]
pub struct AnchorPipeline<'a> {
    mapper: &'a JemMapper,
    refiner: &'a Refiner,
}

impl<'a> AnchorPipeline<'a> {
    /// Pair a stage-1 index with a stage-2 refiner.
    ///
    /// # Panics
    /// Panics when the refiner's subject set does not match the index's
    /// name table — refinement coordinates would silently refer to the
    /// wrong contigs otherwise.
    pub fn new(mapper: &'a JemMapper, refiner: &'a Refiner) -> Self {
        assert_eq!(
            refiner.n_subjects(),
            mapper.n_subjects(),
            "refiner holds {} subjects but the index names {}",
            refiner.n_subjects(),
            mapper.n_subjects()
        );
        for (id, name) in refiner.subject_names().enumerate() {
            assert_eq!(
                name,
                mapper.subject_name(id as SubjectId),
                "subject {id} name mismatch between index and refiner"
            );
        }
        AnchorPipeline { mapper, refiner }
    }

    /// Stage 1 for one segment: sketch, collide per trial, rank candidates
    /// by `(hits desc, id asc)` into `scratch.ranked`. The top entry is the
    /// legacy best hit.
    fn rank_candidates(&self, seg: &[u8], scratch: &mut PipelineScratch) {
        let PipelineScratch {
            map, all, ranked, ..
        } = scratch;
        self.mapper.sketch_segment_into(seg, map);
        let (sketch, trial_subjects) = map.parts();
        all.clear();
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            // Hits_r[t] is a set: dedup within the trial before counting.
            trial_subjects.clear();
            for &code in codes {
                self.mapper.table().lookup_into(t, code, trial_subjects);
            }
            trial_subjects.sort_unstable();
            trial_subjects.dedup();
            all.extend_from_slice(trial_subjects);
        }
        all.sort_unstable();
        ranked.clear();
        let mut i = 0;
        while i < all.len() {
            let subject = all[i];
            let mut j = i + 1;
            while j < all.len() && all[j] == subject {
                j += 1;
            }
            ranked.push((subject, (j - i) as u32));
            i = j;
        }
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }

    /// Run both stages over one segment.
    fn process_segment(
        &self,
        seg: &QuerySegment,
        scratch: &mut PipelineScratch,
        stats: &mut RefineStats,
    ) -> (Option<Mapping>, Option<PafRow>) {
        self.rank_candidates(&seg.seq, scratch);
        let Some(&(subject, hits)) = scratch.ranked.first() else {
            return (None, None);
        };
        let mapping = Mapping {
            read_idx: seg.read_idx,
            end: seg.end,
            subject,
            hits,
        };
        let row = self
            .refiner
            .refine_segment(&seg.seq, &scratch.ranked, &mut scratch.refine, stats)
            .map(|p| {
                PafRow::from_placement(
                    &Mapping {
                        subject: p.subject,
                        hits: p.hits,
                        ..mapping
                    },
                    &p,
                    seg.seq.len(),
                    self.mapper.config().k,
                )
            });
        (Some(mapping), row)
    }

    /// Sequential driver: segment every read, run both stages per segment.
    pub fn run(&self, reads: &[SeqRecord]) -> AnchorOutput {
        let rec = jem_obs::recorder();
        let _span = jem_obs::Span::enter(rec, "anchor/run");
        let segments = make_segments(reads, self.mapper.config().ell);
        let mut scratch = PipelineScratch::default();
        let mut stats = RefineStats::default();
        let mut out = AnchorOutput::default();
        for seg in &segments {
            let (mapping, row) = self.process_segment(seg, &mut scratch, &mut stats);
            out.mappings.extend(mapping);
            out.paf.extend(row);
        }
        self.flush_metrics(rec, &segments, &stats, &out);
        out
    }

    /// Rayon driver: chunked like [`jem_core::map_reads_parallel_with`],
    /// output normalized to the sequential driver's order. `threads =
    /// Some(n)` bounds the chunk count; `None` uses the pool width.
    pub fn run_parallel(&self, reads: &[SeqRecord], threads: Option<usize>) -> AnchorOutput {
        let rec = jem_obs::recorder();
        let _span = jem_obs::Span::enter(rec, "anchor/parallel");
        let segments = make_segments(reads, self.mapper.config().ell);
        let lanes = threads.unwrap_or_else(rayon::current_num_threads).max(1);
        let chunk = segments.len().div_ceil(lanes).max(1);
        let parts: Vec<(AnchorOutput, RefineStats)> = segments
            .par_chunks(chunk)
            .flat_map_iter(|chunk_segs| {
                let mut scratch = PipelineScratch::default();
                let mut stats = RefineStats::default();
                let mut out = AnchorOutput::default();
                for seg in chunk_segs {
                    let (mapping, row) = self.process_segment(seg, &mut scratch, &mut stats);
                    out.mappings.extend(mapping);
                    out.paf.extend(row);
                }
                std::iter::once((out, stats))
            })
            .collect();
        let mut stats = RefineStats::default();
        let mut out = AnchorOutput::default();
        for (part, part_stats) in parts {
            out.mappings.extend(part.mappings);
            out.paf.extend(part.paf);
            stats.merge(&part_stats);
        }
        // Same normalization as the legacy parallel driver: total orders,
        // at most one mapping and one row per (read_idx, end).
        out.mappings.sort_unstable();
        out.paf.sort_unstable();
        self.flush_metrics(rec, &segments, &stats, &out);
        out
    }

    fn flush_metrics(
        &self,
        rec: &dyn jem_obs::Recorder,
        segments: &[QuerySegment],
        stats: &RefineStats,
        out: &AnchorOutput,
    ) {
        if !rec.enabled() {
            return;
        }
        rec.add("anchor.input_segments", segments.len() as u64);
        rec.add("anchor.mapped", out.mappings.len() as u64);
        stats.flush(rec);
        for row in &out.paf {
            rec.observe("anchor.chain_anchors", u64::from(row.n_anchors));
            rec.observe("anchor.mapq", u64::from(row.mapq));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::MapperConfig;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    fn world() -> (Vec<SeqRecord>, Vec<SeqRecord>, MapperConfig) {
        let genome = Genome::random(60_000, 0.5, 99);
        let contigs = contig_records(&fragment_contigs(
            &genome,
            &ContigProfile {
                error_rate: 0.0,
                ..ContigProfile::small_genome()
            },
            1,
        ));
        let profile = HifiProfile {
            coverage: 2.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 5));
        let config = MapperConfig {
            k: 12,
            w: 10,
            trials: 12,
            ell: 300,
            seed: 7,
        };
        (contigs, reads, config)
    }

    #[test]
    fn stage1_output_matches_legacy_driver_exactly() {
        let (contigs, reads, config) = world();
        let mapper = JemMapper::build(&contigs, &config);
        let refiner = Refiner::new(mapper.scheme(), config.k, contigs.clone());
        let pipeline = AnchorPipeline::new(&mapper, &refiner);
        let out = pipeline.run(&reads);
        assert_eq!(out.mappings, mapper.map_reads(&reads));
        assert!(!out.paf.is_empty(), "no segment was refined");
    }

    #[test]
    fn parallel_matches_sequential() {
        let (contigs, reads, config) = world();
        let mapper = JemMapper::build(&contigs, &config);
        let refiner = Refiner::new(mapper.scheme(), config.k, contigs.clone());
        let pipeline = AnchorPipeline::new(&mapper, &refiner);
        let mut sequential = pipeline.run(&reads);
        sequential.mappings.sort_unstable();
        sequential.paf.sort_unstable();
        for threads in [None, Some(1), Some(3), Some(16)] {
            assert_eq!(pipeline.run_parallel(&reads, threads), sequential);
        }
    }

    #[test]
    fn rows_are_well_formed() {
        let (contigs, reads, config) = world();
        let mapper = JemMapper::build(&contigs, &config);
        let refiner = Refiner::new(mapper.scheme(), config.k, contigs.clone());
        let out = AnchorPipeline::new(&mapper, &refiner).run(&reads);
        for row in &out.paf {
            assert!(row.q_start < row.q_end, "{row:?}");
            assert!(row.q_end <= row.q_len, "{row:?}");
            assert!(row.t_start < row.t_end, "{row:?}");
            assert!(row.t_end <= row.t_len, "{row:?}");
            assert!(row.matches <= row.block, "{row:?}");
            assert!(row.mapq <= 60, "{row:?}");
            assert!((row.subject as usize) < mapper.n_subjects());
        }
        // Clean simulated reads over near-complete contig coverage should
        // mostly refine with confident quality.
        let confident = out.paf.iter().filter(|r| r.mapq >= 30).count();
        assert!(
            confident * 2 > out.paf.len(),
            "only {}/{} rows with mapq >= 30",
            confident,
            out.paf.len()
        );
    }

    #[test]
    fn empty_reads_produce_empty_output() {
        let (contigs, _, config) = world();
        let mapper = JemMapper::build(&contigs, &config);
        let refiner = Refiner::new(mapper.scheme(), config.k, contigs.clone());
        let pipeline = AnchorPipeline::new(&mapper, &refiner);
        assert_eq!(pipeline.run(&[]), AnchorOutput::default());
        assert_eq!(pipeline.run_parallel(&[], None), AnchorOutput::default());
    }

    #[test]
    #[should_panic(expected = "subjects")]
    fn mismatched_subject_sets_are_rejected() {
        let (contigs, _, config) = world();
        let mapper = JemMapper::build(&contigs, &config);
        let refiner = Refiner::new(mapper.scheme(), config.k, contigs[..1].to_vec());
        let _ = AnchorPipeline::new(&mapper, &refiner);
    }
}
