//! PAF records and the MAPQ margin model for refined placements.
//!
//! One [`PafRow`] per placed end segment, with the standard 12 mandatory
//! columns plus typed tags. Query names are the evaluation's segment keys
//! (`<read_id>/<prefix|suffix>`) so PAF output joins directly against
//! `jem simulate` truth tables; coordinates are 0-based half-open as the
//! PAF convention requires.
//!
//! MAPQ follows the mapquik-style margin model: scale the relative gap
//! between the best and second-best chain scores into `[0, 60]`, damped
//! for thinly supported chains so a 2-anchor "unique" placement can never
//! claim certainty.

use crate::refine::Placement;
use jem_core::{Mapping, ReadEnd};
use jem_index::SubjectId;
use jem_seq::SeqRecord;
use std::io::{self, Write};

/// Mapping quality from the best and second-best chain scores.
///
/// `0` when a co-optimal (or better) competitor exists; otherwise
/// `round(60 · (best − second)/best · min(best/8, 1))`. The `best/8` damp
/// means full confidence needs at least 8 chained anchors, mirroring how
/// mapquik requires a minimum seed count before trusting uniqueness.
pub fn mapq_from_scores(best: u32, second: u32) -> u8 {
    if best == 0 || second >= best {
        return 0;
    }
    let margin = (best - second) as f64 / best as f64;
    let damp = (best as f64 / 8.0).min(1.0);
    (60.0 * margin * damp).round() as u8
}

/// One PAF output record (a placed end segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PafRow {
    /// Source read index (resolved to `<read_id>/<end>` at write time).
    pub read_idx: u32,
    /// Which end segment was placed.
    pub end: ReadEnd,
    /// Mapped subject id (resolved to its name at write time).
    pub subject: SubjectId,
    /// Segment length (PAF column 2).
    pub q_len: u32,
    /// Query start, 0-based (column 3).
    pub q_start: u32,
    /// Query end, exclusive (column 4).
    pub q_end: u32,
    /// `true` → strand column 5 is `-`.
    pub reverse: bool,
    /// Target length (column 7).
    pub t_len: u32,
    /// Target start (column 8).
    pub t_start: u32,
    /// Target end, exclusive (column 9).
    pub t_end: u32,
    /// Residue matches (column 10): chained anchors × k, capped by the
    /// block length.
    pub matches: u32,
    /// Alignment block length (column 11): the longer of the two spans.
    pub block: u32,
    /// Mapping quality (column 12).
    pub mapq: u8,
    /// Best chain score (`s1:i` tag).
    pub s1: u32,
    /// Second-best chain score (`s2:i` tag).
    pub s2: u32,
    /// Chained anchors in the primary chain (`cm:i` tag).
    pub n_anchors: u32,
    /// Chains evaluated for this segment (`nh:i` tag).
    pub n_chains: u32,
    /// Stage-1 trial hits of the mapped subject (`jm:i` tag).
    pub hits: u32,
}

impl PafRow {
    /// Assemble a row from a stage-1 [`Mapping`] and its stage-2
    /// [`Placement`]. `seg_len` is the end segment's length and `k` the
    /// index k-mer size (for the residue-match estimate).
    pub fn from_placement(mapping: &Mapping, p: &Placement, seg_len: usize, k: usize) -> Self {
        debug_assert_eq!(mapping.subject, p.subject);
        let block = (p.q_end - p.q_start).max(p.t_end - p.t_start);
        PafRow {
            read_idx: mapping.read_idx,
            end: mapping.end,
            subject: p.subject,
            q_len: seg_len as u32,
            q_start: p.q_start,
            q_end: p.q_end,
            reverse: p.reverse,
            t_len: p.t_len,
            t_start: p.t_start,
            t_end: p.t_end,
            matches: (p.n_anchors * k as u32).min(block),
            block,
            mapq: mapq_from_scores(p.n_anchors, p.second),
            s1: p.n_anchors,
            s2: p.second,
            n_anchors: p.n_anchors,
            n_chains: p.n_chains,
            hits: p.hits,
        }
    }

    /// The evaluation query key `"<read_id>/<end>"` of this row.
    pub fn query_key(&self, reads: &[SeqRecord]) -> String {
        format!("{}/{}", reads[self.read_idx as usize].id, self.end)
    }

    /// Serialize as one PAF line (no trailing newline).
    pub fn to_line(&self, reads: &[SeqRecord], subject_names: &[String]) -> String {
        format!(
            "{}/{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\ttp:A:P\tcm:i:{}\ts1:i:{}\ts2:i:{}\tnh:i:{}\tjm:i:{}",
            reads[self.read_idx as usize].id,
            self.end,
            self.q_len,
            self.q_start,
            self.q_end,
            if self.reverse { '-' } else { '+' },
            subject_names[self.subject as usize],
            self.t_len,
            self.t_start,
            self.t_end,
            self.matches,
            self.block,
            self.mapq,
            self.n_anchors,
            self.s1,
            self.s2,
            self.n_chains,
            self.hits,
        )
    }
}

/// Write `rows` as PAF. Rows are emitted in the order given; drivers
/// normalize to `(read_idx, end)` order beforehand.
pub fn write_paf<W: Write>(
    mut w: W,
    rows: &[PafRow],
    reads: &[SeqRecord],
    subject_names: &[String],
) -> io::Result<()> {
    for row in rows {
        writeln!(w, "{}", row.to_line(reads, subject_names))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapq_zero_on_ties_and_empty() {
        assert_eq!(mapq_from_scores(0, 0), 0);
        assert_eq!(mapq_from_scores(10, 10), 0);
        assert_eq!(mapq_from_scores(10, 15), 0);
    }

    #[test]
    fn mapq_saturates_at_sixty_for_unique_strong_chains() {
        assert_eq!(mapq_from_scores(40, 0), 60);
        assert_eq!(mapq_from_scores(8, 0), 60);
    }

    #[test]
    fn mapq_damped_for_thin_chains() {
        // A unique 2-anchor chain: margin 1.0 but damp 2/8.
        assert_eq!(mapq_from_scores(2, 0), 15);
        assert!(mapq_from_scores(3, 0) < 30);
    }

    #[test]
    fn mapq_scales_with_margin() {
        let close = mapq_from_scores(20, 18);
        let far = mapq_from_scores(20, 2);
        assert!(close < far, "close {close} far {far}");
        assert!(close > 0);
        assert!(far <= 60);
    }

    #[test]
    fn row_serializes_with_twelve_mandatory_columns() {
        let reads = vec![SeqRecord::new("read7", b"ACGT".to_vec())];
        let names = vec!["contig_3".to_string()];
        let row = PafRow {
            read_idx: 0,
            end: ReadEnd::Suffix,
            subject: 0,
            q_len: 600,
            q_start: 10,
            q_end: 580,
            reverse: true,
            t_len: 5_000,
            t_start: 2_010,
            t_end: 2_580,
            matches: 220,
            block: 570,
            mapq: 60,
            s1: 20,
            s2: 0,
            n_anchors: 20,
            n_chains: 3,
            hits: 12,
        };
        let line = row.to_line(&reads, &names);
        let cols: Vec<&str> = line.split('\t').collect();
        assert!(cols.len() >= 12, "line: {line}");
        assert_eq!(cols[0], "read7/suffix");
        assert_eq!(cols[4], "-");
        assert_eq!(cols[5], "contig_3");
        assert_eq!(cols[11], "60");
        assert!(cols[12..].contains(&"tp:A:P"));
        assert!(cols[12..].contains(&"cm:i:20"));
        assert_eq!(row.query_key(&reads), "read7/suffix");
    }

    #[test]
    fn writer_emits_one_line_per_row() {
        let reads = vec![SeqRecord::new("r", b"ACGT".to_vec())];
        let names = vec!["c".to_string()];
        let row = PafRow {
            read_idx: 0,
            end: ReadEnd::Prefix,
            subject: 0,
            q_len: 100,
            q_start: 0,
            q_end: 90,
            reverse: false,
            t_len: 1_000,
            t_start: 5,
            t_end: 95,
            matches: 80,
            block: 90,
            mapq: 31,
            s1: 9,
            s2: 3,
            n_anchors: 9,
            n_chains: 1,
            hits: 7,
        };
        let mut buf = Vec::new();
        write_paf(&mut buf, &[row, row], &reads, &names).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
    }
}
