//! The stage-2 refiner: shortlist → anchors → windows → chains → placement.
//!
//! [`Refiner`] owns the candidate contig sequences and a lazy cache of
//! their [`TargetIndex`]es; [`Refiner::refine_segment`] turns one end
//! segment plus its stage-1 candidate shortlist into the best coordinate
//! [`Placement`], scored against the second-best chain anywhere in the
//! shortlist (the MAPQ margin). It is deliberately decoupled from
//! [`jem_core::JemMapper`] so the serve client can refine against local
//! subject sequences using only the server's advertised config and scheme.

use crate::anchor::{collect_anchors, occurrence_is_forward, Anchor, TargetIndex};
use crate::chain::{chain_anchors, Chain, ChainScratch};
use crate::filter::{filter_dominated, FilterScratch, Window};
use jem_index::SubjectId;
use jem_seq::SeqRecord;
use jem_sketch::{Minimizer, SketchScheme, WinnowScratch};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Stage-2 tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RefineParams {
    /// How many stage-1 candidates (top-x by trial hits) to refine.
    pub top_candidates: usize,
    /// Dominance-filter separation as a fraction of the window length:
    /// windows closer than `sep = len × separation_frac` compete.
    pub separation_frac: f64,
    /// Minimum chained anchors for a placement to be reported.
    pub min_chain_anchors: u32,
}

impl Default for RefineParams {
    fn default() -> Self {
        RefineParams {
            top_candidates: 5,
            separation_frac: 0.5,
            min_chain_anchors: 2,
        }
    }
}

/// The best refined placement of one end segment, plus the evidence the
/// MAPQ model needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// Mapped subject (contig) id.
    pub subject: SubjectId,
    /// True when the segment maps to the subject's reverse strand.
    pub reverse: bool,
    /// Query start on the segment's own forward orientation (0-based).
    pub q_start: u32,
    /// Query end (exclusive).
    pub q_end: u32,
    /// Target start (0-based).
    pub t_start: u32,
    /// Target end (exclusive).
    pub t_end: u32,
    /// Target length in bases.
    pub t_len: u32,
    /// Anchors in the best chain — the primary chain score (`s1`).
    pub n_anchors: u32,
    /// Best competing chain score anywhere in the shortlist (`s2`).
    pub second: u32,
    /// Chains evaluated across all candidates, strands and windows.
    pub n_chains: u32,
    /// Stage-1 trial hits of the chosen subject.
    pub hits: u32,
}

/// Per-run counters flushed to `jem-obs` by the drivers (accumulated
/// locally so refinement adds no per-segment synchronization).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Segments refined (had a non-empty shortlist).
    pub segments: u64,
    /// Candidate contigs examined.
    pub candidates: u64,
    /// Anchors produced by the position join.
    pub anchors: u64,
    /// Candidate windows swept.
    pub windows: u64,
    /// Windows surviving the dominance filter.
    pub windows_kept: u64,
    /// Chains computed over surviving windows.
    pub chains: u64,
    /// Placements reported (best chain ≥ `min_chain_anchors`).
    pub placed: u64,
}

impl RefineStats {
    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &RefineStats) {
        self.segments += other.segments;
        self.candidates += other.candidates;
        self.anchors += other.anchors;
        self.windows += other.windows;
        self.windows_kept += other.windows_kept;
        self.chains += other.chains;
        self.placed += other.placed;
    }

    /// Flush into the recorder under the `anchor.*` counter namespace.
    pub fn flush(&self, rec: &dyn jem_obs::Recorder) {
        rec.add("anchor.segments", self.segments);
        rec.add("anchor.candidates", self.candidates);
        rec.add("anchor.anchors", self.anchors);
        rec.add("anchor.windows", self.windows);
        rec.add("anchor.windows_kept", self.windows_kept);
        rec.add("anchor.chains", self.chains);
        rec.add("anchor.placed", self.placed);
    }
}

/// Reusable buffers for [`Refiner::refine_segment`] — one per thread, warm
/// after the first segment.
#[derive(Clone, Debug, Default)]
pub struct RefineScratch {
    winnow: WinnowScratch,
    query_mins: Vec<Minimizer>,
    query_fwd: Vec<bool>,
    fwd: Vec<Anchor>,
    rev: Vec<Anchor>,
    windows: Vec<Window>,
    survivors: Vec<Window>,
    filter: FilterScratch,
    chain: ChainScratch,
}

impl RefineScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stage-2 refinement over a subject set.
#[derive(Debug)]
pub struct Refiner {
    scheme: SketchScheme,
    k: usize,
    params: RefineParams,
    subjects: Vec<SeqRecord>,
    cache: Mutex<HashMap<SubjectId, Arc<TargetIndex>>>,
}

impl Refiner {
    /// Build a refiner over `subjects`, sketching with the *index's* scheme
    /// and k so anchors share the coordinate system of the stage-1
    /// collisions. No work happens up front: target indexes are built
    /// lazily per shortlisted contig.
    ///
    /// # Panics
    /// Panics when `scheme`/`k` are invalid (the same validation the
    /// mapping index applies at build time).
    pub fn new(scheme: SketchScheme, k: usize, subjects: Vec<SeqRecord>) -> Self {
        Self::with_params(scheme, k, subjects, RefineParams::default())
    }

    /// [`Refiner::new`] with explicit [`RefineParams`].
    pub fn with_params(
        scheme: SketchScheme,
        k: usize,
        subjects: Vec<SeqRecord>,
        params: RefineParams,
    ) -> Self {
        scheme.validate(k).expect("invalid sketch scheme");
        assert!(params.top_candidates >= 1, "top_candidates must be >= 1");
        assert!(
            params.separation_frac.is_finite() && params.separation_frac >= 0.0,
            "separation_frac must be finite and non-negative"
        );
        Refiner {
            scheme,
            k,
            params,
            subjects,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The refinement parameters in effect.
    pub fn params(&self) -> &RefineParams {
        &self.params
    }

    /// Subject names, indexed by [`SubjectId`] (for validating against an
    /// index's name table and for PAF target names).
    pub fn subject_names(&self) -> impl Iterator<Item = &str> {
        self.subjects.iter().map(|s| s.id.as_str())
    }

    /// Number of subjects held.
    pub fn n_subjects(&self) -> usize {
        self.subjects.len()
    }

    /// The cached (or freshly built) position index of `subject`.
    ///
    /// Double-checked so concurrent misses on *different* contigs build in
    /// parallel; a duplicate build of the same contig is possible and
    /// harmless (last insert wins, both are identical).
    fn target_index(&self, subject: SubjectId) -> Arc<TargetIndex> {
        if let Some(t) = self
            .cache
            .lock()
            .expect("target cache poisoned")
            .get(&subject)
        {
            return Arc::clone(t);
        }
        let built = Arc::new(TargetIndex::build(
            &self.subjects[subject as usize].seq,
            self.scheme,
            self.k,
        ));
        self.cache
            .lock()
            .expect("target cache poisoned")
            .entry(subject)
            .or_insert(built)
            .clone()
    }

    /// Refine one end segment against its stage-1 shortlist
    /// (`candidates` = `(subject, trial hits)`, best first).
    ///
    /// Returns the best placement, or `None` when the segment yields no
    /// scheme positions, no candidate produces anchors, or the best chain
    /// falls below `min_chain_anchors`. Deterministic: ties between equal
    /// chains resolve toward the earlier candidate (more stage-1 hits,
    /// then smaller subject id), forward strand before reverse, and the
    /// leftmost window.
    pub fn refine_segment(
        &self,
        seg: &[u8],
        candidates: &[(SubjectId, u32)],
        scratch: &mut RefineScratch,
        stats: &mut RefineStats,
    ) -> Option<Placement> {
        if candidates.is_empty() || seg.len() < self.k {
            return None;
        }
        stats.segments += 1;
        let RefineScratch {
            winnow,
            query_mins,
            query_fwd,
            fwd,
            rev,
            windows,
            survivors,
            filter,
            chain,
        } = scratch;
        self.scheme.extract_into(seg, self.k, winnow, query_mins);
        if query_mins.is_empty() {
            return None;
        }
        query_fwd.clear();
        query_fwd.extend(
            query_mins
                .iter()
                .map(|m| occurrence_is_forward(seg, m.pos as usize, self.k, m.code)),
        );
        let len = seg.len() as u32;
        let sep = (seg.len() as f64 * self.params.separation_frac) as u32;
        let take = self.params.top_candidates.min(candidates.len());
        let mut best: Option<(Chain, SubjectId, bool, u32, u32)> = None;
        let mut second = 0u32;
        let mut n_chains = 0u32;
        for &(subject, hits) in &candidates[..take] {
            stats.candidates += 1;
            let target = self.target_index(subject);
            fwd.clear();
            rev.clear();
            stats.anchors +=
                collect_anchors(query_mins, query_fwd, seg.len(), self.k, &target, fwd, rev) as u64;
            for (reverse, anchors) in [(false, &mut *fwd), (true, &mut *rev)] {
                if anchors.is_empty() {
                    continue;
                }
                anchors.sort_unstable_by(|a, b| a.tpos.cmp(&b.tpos).then(a.qpos.cmp(&b.qpos)));
                // Sweep: one candidate window per anchor start, support =
                // anchors within [t_start, t_start + len).
                windows.clear();
                let mut hi = 0usize;
                for i in 0..anchors.len() {
                    let t_start = anchors[i].tpos;
                    hi = hi.max(i);
                    while hi < anchors.len() && anchors[hi].tpos < t_start.saturating_add(len) {
                        hi += 1;
                    }
                    windows.push(Window {
                        t_start,
                        j: (hi - i) as u32,
                    });
                }
                stats.windows += windows.len() as u64;
                survivors.clear();
                filter_dominated(windows, sep, filter, survivors);
                stats.windows_kept += survivors.len() as u64;
                for w in survivors.iter() {
                    let lo = anchors.partition_point(|a| a.tpos < w.t_start);
                    let hi = anchors.partition_point(|a| a.tpos < w.t_start.saturating_add(len));
                    let Some(c) = chain_anchors(&anchors[lo..hi], chain) else {
                        continue;
                    };
                    stats.chains += 1;
                    n_chains += 1;
                    match &best {
                        Some((b, ..)) if c.n_anchors <= b.n_anchors => {
                            second = second.max(c.n_anchors);
                        }
                        _ => {
                            if let Some((b, ..)) = &best {
                                second = second.max(b.n_anchors);
                            }
                            best = Some((c, subject, reverse, target.len(), hits));
                        }
                    }
                }
            }
        }
        let (c, subject, reverse, t_len, hits) = best?;
        if c.n_anchors < self.params.min_chain_anchors {
            return None;
        }
        stats.placed += 1;
        let k = self.k as u32;
        // Chain coordinates are target-forward; flip reverse-strand query
        // spans back onto the segment's own orientation for output.
        let (q_start, q_end) = if reverse {
            let flip = len - k;
            (flip - c.q_last, flip - c.q_start + k)
        } else {
            (c.q_start, c.q_last + k)
        };
        Some(Placement {
            subject,
            reverse,
            q_start,
            q_end,
            t_start: c.t_start,
            t_end: c.t_last + k,
            t_len,
            n_anchors: c.n_anchors,
            second,
            n_chains,
            hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    const K: usize = 11;
    const SCHEME: SketchScheme = SketchScheme::Minimizer { w: 5 };

    fn refiner(subjects: Vec<SeqRecord>) -> Refiner {
        Refiner::new(SCHEME, K, subjects)
    }

    #[test]
    fn forward_window_places_with_correct_coordinates() {
        let contig = rng_seq(6_000, 41);
        let seg = contig[2_000..2_600].to_vec();
        let r = refiner(vec![SeqRecord::new("c0", contig)]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        let p = r
            .refine_segment(&seg, &[(0, 12)], &mut scratch, &mut stats)
            .expect("must place");
        assert_eq!(p.subject, 0);
        assert!(!p.reverse);
        assert!(
            (p.t_start as i64 - 2_000).abs() < 50,
            "t_start {}",
            p.t_start
        );
        assert!((p.t_end as i64 - 2_600).abs() < 50, "t_end {}", p.t_end);
        assert!(p.q_end > p.q_start);
        assert!(p.q_end as usize <= seg.len());
        assert!(p.n_anchors > 10);
        assert!(p.second < p.n_anchors);
        assert_eq!(p.hits, 12);
        assert_eq!(stats.placed, 1);
        assert!(stats.anchors >= p.n_anchors as u64);
    }

    #[test]
    fn reverse_window_places_on_reverse_strand() {
        let contig = rng_seq(6_000, 43);
        let seg = revcomp_bytes(&contig[3_000..3_600]);
        let r = refiner(vec![SeqRecord::new("c0", contig)]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        let p = r
            .refine_segment(&seg, &[(0, 12)], &mut scratch, &mut stats)
            .expect("must place");
        assert!(p.reverse);
        assert!((p.t_start as i64 - 3_000).abs() < 50);
        assert!((p.t_end as i64 - 3_600).abs() < 50);
        assert!(p.q_end as usize <= seg.len());
    }

    #[test]
    fn picks_the_true_contig_among_candidates() {
        let a = rng_seq(5_000, 47);
        let b = rng_seq(5_000, 53);
        let seg = b[1_000..1_500].to_vec();
        let r = refiner(vec![SeqRecord::new("a", a), SeqRecord::new("b", b)]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        // Candidate order lists the wrong contig first: chaining overrules.
        let p = r
            .refine_segment(&seg, &[(0, 3), (1, 12)], &mut scratch, &mut stats)
            .expect("must place");
        assert_eq!(p.subject, 1);
        assert_eq!(p.hits, 12);
    }

    #[test]
    fn duplicated_region_reports_a_runner_up() {
        // The same 800 bp block pasted into two contigs: the second-best
        // chain should be nearly as good as the best → small MAPQ margin.
        let block = rng_seq(800, 59);
        let mut c0 = rng_seq(2_000, 61);
        c0.extend_from_slice(&block);
        c0.extend_from_slice(&rng_seq(2_000, 67));
        let mut c1 = rng_seq(1_000, 71);
        c1.extend_from_slice(&block);
        c1.extend_from_slice(&rng_seq(3_000, 73));
        let seg = block[100..700].to_vec();
        let r = refiner(vec![SeqRecord::new("c0", c0), SeqRecord::new("c1", c1)]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        let p = r
            .refine_segment(&seg, &[(0, 12), (1, 12)], &mut scratch, &mut stats)
            .expect("must place");
        assert!(
            p.second * 10 >= p.n_anchors * 8,
            "duplicate should score close: best {} second {}",
            p.n_anchors,
            p.second
        );
    }

    #[test]
    fn no_candidates_or_tiny_segment_yields_none() {
        let r = refiner(vec![SeqRecord::new("c0", rng_seq(2_000, 79))]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        assert_eq!(
            r.refine_segment(b"ACGTACGTACGTACGT", &[], &mut scratch, &mut stats),
            None
        );
        assert_eq!(
            r.refine_segment(b"ACG", &[(0, 1)], &mut scratch, &mut stats),
            None
        );
    }

    #[test]
    fn unrelated_segment_is_filtered_by_min_chain() {
        let r = refiner(vec![SeqRecord::new("c0", rng_seq(4_000, 83))]);
        let alien = rng_seq(500, 997);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        // A chance single-code collision must not produce a placement.
        if let Some(p) = r.refine_segment(&alien, &[(0, 1)], &mut scratch, &mut stats) {
            assert!(p.n_anchors >= r.params().min_chain_anchors);
        }
    }

    #[test]
    fn target_cache_is_reused() {
        let contig = rng_seq(5_000, 89);
        let seg = contig[500..1_000].to_vec();
        let r = refiner(vec![SeqRecord::new("c0", contig)]);
        let mut scratch = RefineScratch::new();
        let mut stats = RefineStats::default();
        let p1 = r.refine_segment(&seg, &[(0, 9)], &mut scratch, &mut stats);
        let p2 = r.refine_segment(&seg, &[(0, 9)], &mut scratch, &mut stats);
        assert_eq!(p1, p2);
        assert_eq!(r.cache.lock().unwrap().len(), 1);
    }
}
