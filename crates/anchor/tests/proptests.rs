//! Property tests pinning the stage-2 kernels to their naive references:
//! the O(n log n) chain DP against the O(n²) DP, and the O(n) monotone-
//! deque dominance filter against the literal pairwise definition.

use jem_anchor::{
    chain_anchors, chain_anchors_naive, filter_dominated, filter_dominated_naive, Anchor,
    ChainScratch, FilterScratch, Window,
};
use proptest::prelude::*;

fn anchors_from(pairs: &[(u32, u32)]) -> Vec<Anchor> {
    pairs
        .iter()
        .map(|&(qpos, tpos)| Anchor { qpos, tpos })
        .collect()
}

fn windows_from(pairs: &[(u32, u32)]) -> Vec<Window> {
    let mut windows: Vec<Window> = pairs
        .iter()
        .map(|&(t_start, j)| Window { t_start, j })
        .collect();
    // The sweep emits windows sorted by target start.
    windows.sort_unstable_by_key(|w| w.t_start);
    windows
}

/// A chain must be reachable from the input: strictly increasing in both
/// coordinates with at least `n_anchors` compatible anchors. Cheap sanity
/// bound (full reconstruction is the naive DP's job).
fn chain_is_plausible(anchors: &[Anchor], chain: &jem_anchor::Chain) -> bool {
    chain.n_anchors >= 1
        && chain.n_anchors as usize <= anchors.len()
        && chain.q_start <= chain.q_last
        && chain.t_start <= chain.t_last
        && anchors
            .iter()
            .any(|a| a.qpos == chain.q_start && a.tpos == chain.t_start)
        && anchors
            .iter()
            .any(|a| a.qpos == chain.q_last && a.tpos == chain.t_last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// The fast chain DP scores exactly like the quadratic reference on
    /// arbitrary anchor sets (duplicates and collinear ties included —
    /// coordinates drawn from a small range to force collisions).
    #[test]
    fn chain_matches_naive_dense(pairs in prop::collection::vec((0u32..40, 0u32..40), 0..80)) {
        let anchors = anchors_from(&pairs);
        let fast = chain_anchors(&anchors, &mut ChainScratch::default());
        let naive = chain_anchors_naive(&anchors);
        prop_assert_eq!(fast.is_some(), naive.is_some());
        if let (Some(f), Some(n)) = (fast, naive) {
            prop_assert_eq!(f.n_anchors, n.n_anchors, "fast {:?} naive {:?}", f, n);
            prop_assert!(chain_is_plausible(&anchors, &f), "implausible {:?}", f);
        }
    }

    /// Same equivalence on sparse coordinates (few ties, long chains).
    #[test]
    fn chain_matches_naive_sparse(
        pairs in prop::collection::vec((0u32..100_000, 0u32..100_000), 0..60),
    ) {
        let anchors = anchors_from(&pairs);
        let fast = chain_anchors(&anchors, &mut ChainScratch::default());
        prop_assert_eq!(
            fast.map(|c| c.n_anchors),
            chain_anchors_naive(&anchors).map(|c| c.n_anchors)
        );
    }

    /// Scratch reuse across random inputs never changes the result.
    #[test]
    fn chain_scratch_reuse_is_pure(
        a in prop::collection::vec((0u32..50, 0u32..50), 0..40),
        b in prop::collection::vec((0u32..50, 0u32..50), 0..40),
    ) {
        let (a, b) = (anchors_from(&a), anchors_from(&b));
        let mut reused = ChainScratch::default();
        let first = chain_anchors(&a, &mut reused);
        let second = chain_anchors(&b, &mut reused);
        prop_assert_eq!(first, chain_anchors(&a, &mut ChainScratch::default()));
        prop_assert_eq!(second, chain_anchors(&b, &mut ChainScratch::default()));
    }

    /// The deque filter reproduces the pairwise dominance definition on
    /// arbitrary window sets, tie-heavy by construction (small j range,
    /// clustered starts — many exact ties and fully-nested spans).
    #[test]
    fn filter_matches_naive(
        pairs in prop::collection::vec((0u32..60, 0u32..6), 0..60),
        sep in 0u32..80,
    ) {
        let windows = windows_from(&pairs);
        let mut out = Vec::new();
        filter_dominated(&windows, sep, &mut FilterScratch::default(), &mut out);
        prop_assert_eq!(out, filter_dominated_naive(&windows, sep));
    }

    /// Wide separations and wide support ranges (the "everything competes
    /// with everything" and "nothing competes" extremes both appear).
    #[test]
    fn filter_matches_naive_wide(
        pairs in prop::collection::vec((0u32..1_000_000, 0u32..1_000), 0..50),
        sep in prop::sample::select(vec![0u32, 1, 499_999, 1_000_000, u32::MAX]),
    ) {
        let windows = windows_from(&pairs);
        let mut out = Vec::new();
        filter_dominated(&windows, sep, &mut FilterScratch::default(), &mut out);
        prop_assert_eq!(out, filter_dominated_naive(&windows, sep));
    }

    /// Survivors are always a subsequence of the input, and the global
    /// best-supported window always survives.
    #[test]
    fn filter_keeps_a_global_maximum(
        pairs in prop::collection::vec((0u32..200, 0u32..50), 1..40),
        sep in 0u32..300,
    ) {
        let windows = windows_from(&pairs);
        let mut out = Vec::new();
        filter_dominated(&windows, sep, &mut FilterScratch::default(), &mut out);
        prop_assert!(!out.is_empty(), "filter emptied a non-empty input");
        let best_j = windows.iter().map(|w| w.j).max().unwrap();
        prop_assert!(out.iter().any(|w| w.j == best_j));
        let mut cursor = 0usize;
        for w in &out {
            let found = windows[cursor..].iter().position(|v| v == w);
            prop_assert!(found.is_some(), "{:?} out of order", w);
            cursor += found.unwrap() + 1;
        }
    }
}
