//! The classical MinHash mapper (Fig. 6 comparator).
//!
//! Subjects are sketched with the classical Broder scheme — for each trial,
//! the single k-mer minimizing `h_t` over *all* k-mers of the subject — and
//! queries likewise. A query hits a subject on trial `t` when their trial-`t`
//! minima coincide; the most frequent subject across trials is the best hit.
//!
//! Without the JEM sketch's ℓ-interval locality, a long subject's trial
//! minimum usually falls outside the region a 1 kb query overlaps, which is
//! why this baseline needs far more trials to reach the same recall
//! (Fig. 6: >150 vs JEM's 20–30).

use jem_core::{make_segments, Mapping};
use jem_index::{HitCounter, LazyHitCounter, SketchTable, SubjectId};
use jem_seq::SeqRecord;
use jem_sketch::{classic_minhash_seq, HashFamily};

/// Classical-MinHash baseline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassicMinHashConfig {
    /// k-mer size.
    pub k: usize,
    /// Number of trials `T`.
    pub trials: usize,
    /// End-segment length ℓ (query segmentation only; sketches are global).
    pub ell: usize,
    /// Hash-constant seed.
    pub seed: u64,
}

impl Default for ClassicMinHashConfig {
    fn default() -> Self {
        ClassicMinHashConfig {
            k: 16,
            trials: 30,
            ell: 1000,
            seed: 0x4a45_4d4d,
        }
    }
}

/// The classical MinHash mapper.
#[derive(Clone, Debug)]
pub struct ClassicMinHashMapper {
    config: ClassicMinHashConfig,
    family: HashFamily,
    table: SketchTable,
    n_subjects: usize,
}

impl ClassicMinHashMapper {
    /// Sketch and index the subject set.
    pub fn build(subjects: &[SeqRecord], config: &ClassicMinHashConfig) -> Self {
        let family = HashFamily::generate(config.trials, config.seed);
        let mut table = SketchTable::new(config.trials);
        for (id, rec) in subjects.iter().enumerate() {
            let sketch = classic_minhash_seq(&rec.seq, config.k, &family);
            for (t, value) in sketch.values.iter().enumerate() {
                if let Some(code) = value {
                    table.insert(t, *code, id as SubjectId);
                }
            }
        }
        ClassicMinHashMapper {
            config: *config,
            family,
            table,
            n_subjects: subjects.len(),
        }
    }

    /// Number of indexed subjects.
    pub fn n_subjects(&self) -> usize {
        self.n_subjects
    }

    /// Map one end segment: per-trial sketch equality against the table.
    pub fn map_segment(
        &self,
        seg: &[u8],
        qid: u64,
        counter: &mut LazyHitCounter,
    ) -> Option<(SubjectId, u32)> {
        let sketch = classic_minhash_seq(seg, self.config.k, &self.family);
        for (t, value) in sketch.values.iter().enumerate() {
            if let Some(code) = value {
                for &s in self.table.lookup(t, *code) {
                    counter.record(qid, s);
                }
            }
        }
        counter.best(qid)
    }

    /// Map every read's end segments.
    pub fn map_reads(&self, reads: &[SeqRecord]) -> Vec<Mapping> {
        let segments = make_segments(reads, self.config.ell);
        let mut counter = LazyHitCounter::new(self.n_subjects);
        let mut out = Vec::new();
        for (qid, seg) in segments.iter().enumerate() {
            if let Some((subject, hits)) = self.map_segment(&seg.seq, qid as u64, &mut counter) {
                out.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sim::{contig_records, fragment_contigs, ContigProfile, Genome};

    fn config() -> ClassicMinHashConfig {
        ClassicMinHashConfig {
            k: 12,
            trials: 24,
            ell: 400,
            seed: 5,
        }
    }

    fn subjects() -> Vec<SeqRecord> {
        let genome = Genome::random(40_000, 0.5, 61);
        let contigs = fragment_contigs(
            &genome,
            &ContigProfile {
                error_rate: 0.0,
                ..ContigProfile::small_genome()
            },
            62,
        );
        contig_records(&contigs)
    }

    #[test]
    fn identical_subject_always_hits() {
        let subjects = subjects();
        let mapper = ClassicMinHashMapper::build(&subjects, &config());
        // Query = an entire contig: sketches are equal on every trial.
        let query = subjects[2].seq.clone();
        let mut counter = LazyHitCounter::new(mapper.n_subjects());
        let (best, hits) = mapper.map_segment(&query, 0, &mut counter).expect("maps");
        assert_eq!(best, 2);
        assert_eq!(hits as usize, config().trials);
    }

    #[test]
    fn short_window_of_long_subject_hits_rarely() {
        // The defining weakness: a 400 bp window of a ~3 kb contig shares
        // the contig's *global* minimum on only a fraction of trials.
        let subjects = subjects();
        let mapper = ClassicMinHashMapper::build(&subjects, &config());
        let long = subjects
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.seq.len())
            .unwrap();
        let query = long.1.seq[..400].to_vec();
        let mut counter = LazyHitCounter::new(mapper.n_subjects());
        let hits = mapper
            .map_segment(&query, 0, &mut counter)
            .map(|(_, h)| h)
            .unwrap_or(0);
        assert!(
            (hits as usize) < config().trials,
            "window should miss the subject's global minimum on some trials"
        );
    }

    #[test]
    fn empty_segment() {
        let subjects = subjects();
        let mapper = ClassicMinHashMapper::build(&subjects, &config());
        let mut counter = LazyHitCounter::new(mapper.n_subjects());
        assert_eq!(mapper.map_segment(b"", 0, &mut counter), None);
    }

    #[test]
    fn map_reads_produces_valid_output() {
        let subjects = subjects();
        let mapper = ClassicMinHashMapper::build(&subjects, &config());
        let reads = vec![SeqRecord::new("r0", subjects[0].seq.clone())];
        let mappings = mapper.map_reads(&reads);
        assert!(!mappings.is_empty());
        assert!(mappings
            .iter()
            .all(|m| (m.subject as usize) < mapper.n_subjects()));
    }
}
