//! PAF output for the seed-and-chain mapper.
//!
//! PAF (Pairwise mApping Format, the minimap2 interchange format) rows:
//! `qname qlen qstart qend strand tname tlen tstart tend nmatch alen mapq`.
//! Downstream scaffolders and genome browsers consume this directly; the
//! seed-chain mapper is the only tool in the workspace with the coordinate
//! resolution PAF wants.

use crate::seedchain::{Chain, SeedChainMapper};
use jem_seq::{SeqError, SeqRecord};
use std::io::Write;

/// One PAF row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PafRecord {
    /// Query name.
    pub qname: String,
    /// Query length.
    pub qlen: usize,
    /// Query start (0-based).
    pub qstart: u32,
    /// Query end (exclusive).
    pub qend: u32,
    /// `+` or `-`.
    pub strand: char,
    /// Target (subject) name.
    pub tname: String,
    /// Target length.
    pub tlen: usize,
    /// Target start.
    pub tstart: u32,
    /// Target end (exclusive).
    pub tend: u32,
    /// Number of chained anchor bases (proxy for matching bases).
    pub nmatch: u32,
    /// Alignment block length (target span).
    pub alen: u32,
    /// Mapping quality (0–60, scaled from the chain-score margin).
    pub mapq: u8,
}

impl PafRecord {
    /// Build a row from a chain.
    pub fn from_chain(
        chain: &Chain,
        qname: &str,
        qlen: usize,
        mapper: &SeedChainMapper,
        tlen: usize,
        mapq: u8,
    ) -> PafRecord {
        PafRecord {
            qname: qname.to_string(),
            qlen,
            qstart: chain.q_start,
            qend: chain.q_end.min(qlen as u32),
            strand: if chain.reverse { '-' } else { '+' },
            tname: mapper.subject_name(chain.subject).to_string(),
            tlen,
            tstart: chain.s_start,
            tend: chain.s_end,
            nmatch: chain.n_anchors * 15, // ≈ anchors × k
            alen: chain.s_end - chain.s_start,
            mapq,
        }
    }

    /// Serialize as one tab-separated PAF line (no newline).
    pub fn to_line(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.qname,
            self.qlen,
            self.qstart,
            self.qend,
            self.strand,
            self.tname,
            self.tlen,
            self.tstart,
            self.tend,
            self.nmatch.min(self.alen),
            self.alen,
            self.mapq
        )
    }
}

/// Mapping quality from the margin between the best and second-best chain
/// scores (minimap2-flavoured: unique hits score high, ties score 0).
pub fn mapq_from_scores(best: i64, second: Option<i64>) -> u8 {
    let second = second.unwrap_or(0).max(0);
    if best <= 0 {
        return 0;
    }
    let margin = (best - second) as f64 / best as f64;
    (60.0 * margin).round().clamp(0.0, 60.0) as u8
}

/// Map every query and write PAF rows for the best chain of each.
pub fn write_paf<W: Write>(
    out: &mut W,
    mapper: &SeedChainMapper,
    subject_lens: &[usize],
    queries: &[SeqRecord],
) -> Result<usize, SeqError> {
    let mut written = 0;
    for q in queries {
        let chains = mapper.chains(&q.seq);
        if let Some(best) = chains.first() {
            let mapq = mapq_from_scores(best.score, chains.get(1).map(|c| c.score));
            let rec = PafRecord::from_chain(
                best,
                &q.id,
                q.seq.len(),
                mapper,
                subject_lens[best.subject as usize],
                mapq,
            );
            writeln!(out, "{}", rec.to_line())?;
            written += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seedchain::SeedChainConfig;
    use jem_sim::Genome;

    fn world() -> (SeedChainMapper, Vec<usize>, Genome) {
        let g = Genome::random(20_000, 0.5, 91);
        let subjects = vec![SeqRecord::new("ref", g.seq.clone())];
        let lens = vec![g.len()];
        let config = SeedChainConfig {
            k: 11,
            w: 5,
            max_predecessors: 50,
            max_gap: 2_000,
            min_score: 22,
        };
        (SeedChainMapper::build(subjects, &config), lens, g)
    }

    #[test]
    fn paf_row_fields() {
        let (mapper, lens, g) = world();
        let query = SeqRecord::new("q1", g.seq[5_000..6_000].to_vec());
        let mut out = Vec::new();
        let n = write_paf(&mut out, &mapper, &lens, &[query]).unwrap();
        assert_eq!(n, 1);
        let line = String::from_utf8(out).unwrap();
        let fields: Vec<&str> = line.trim().split('\t').collect();
        assert_eq!(fields.len(), 12);
        assert_eq!(fields[0], "q1");
        assert_eq!(fields[1], "1000");
        assert_eq!(fields[4], "+");
        assert_eq!(fields[5], "ref");
        assert_eq!(fields[6], "20000");
        let tstart: i64 = fields[7].parse().unwrap();
        assert!((tstart - 5_000).abs() < 100);
        let mapq: u8 = fields[11].parse().unwrap();
        assert!(mapq > 30, "unique hit should have high mapq, got {mapq}");
    }

    #[test]
    fn reverse_strand_flag() {
        let (mapper, lens, g) = world();
        let query = SeqRecord::new(
            "q2",
            jem_seq::alphabet::revcomp_bytes(&g.seq[10_000..11_200]),
        );
        let mut out = Vec::new();
        write_paf(&mut out, &mapper, &lens, &[query]).unwrap();
        let line = String::from_utf8(out).unwrap();
        assert_eq!(line.split('\t').nth(4), Some("-"));
    }

    #[test]
    fn unmapped_query_writes_nothing() {
        let (mapper, lens, _) = world();
        let alien = SeqRecord::new("alien", Genome::random(800, 0.5, 555).seq);
        let mut out = Vec::new();
        let n = write_paf(&mut out, &mapper, &lens, &[alien]).unwrap();
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn mapq_margins() {
        assert_eq!(mapq_from_scores(100, None), 60);
        assert_eq!(mapq_from_scores(100, Some(100)), 0);
        assert_eq!(mapq_from_scores(100, Some(50)), 30);
        assert_eq!(mapq_from_scores(0, None), 0);
        assert_eq!(mapq_from_scores(100, Some(-5)), 60);
    }

    #[test]
    fn nmatch_capped_by_alen() {
        let rec = PafRecord {
            qname: "q".into(),
            qlen: 100,
            qstart: 0,
            qend: 100,
            strand: '+',
            tname: "t".into(),
            tlen: 100,
            tstart: 0,
            tend: 50,
            nmatch: 10_000,
            alen: 50,
            mapq: 60,
        };
        let line = rec.to_line();
        assert_eq!(line.split('\t').nth(9), Some("50"));
    }
}
