//! # jem-baseline — the comparator mappers
//!
//! The paper's evaluation compares JEM-mapper against two baselines, and
//! uses a third tool to build its benchmark. All three are reimplemented
//! here from scratch:
//!
//! * [`mashmap`] — a Mashmap-style two-stage winnowed-minhash mapper
//!   (Jain et al., RECOMB 2017): a minimizer index with *positions*,
//!   stage-1 candidate subjects by shared-minimizer count, stage-2 maximal
//!   local intersection over an ℓ-sized sliding window of subject
//!   positions. This is the algorithmic shape the paper describes when
//!   contrasting its interval sketches ("in Mashmap, for each minimizer, a
//!   list of all positions ... the region where the query has maximal local
//!   intersection ... is detected and reported at query time").
//! * [`minhash_mapper`] — the classical whole-segment MinHash mapper the
//!   paper sweeps in Fig. 6 (one sketch per trial over *all* k-mers of a
//!   sequence, no positional locality).
//! * [`seedchain`] — a minimap2-flavoured seed-and-chain mapper (minimizer
//!   anchors + gap-penalized DP chaining). The paper uses Minimap2 to map
//!   contigs/reads back to the reference when constructing its benchmark;
//!   this provides that remapping path.
//!
//! All mappers consume the same inputs as [`jem_core::JemMapper`] and emit
//! [`jem_core::Mapping`] values, so the evaluation harness treats every
//! tool uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mashmap;
pub mod minhash_mapper;
pub mod paf;
pub mod seedchain;

pub use mashmap::{run_mashmap_threaded, MashmapConfig, MashmapMapper};
pub use minhash_mapper::{ClassicMinHashConfig, ClassicMinHashMapper};
pub use paf::{mapq_from_scores, write_paf, PafRecord};
pub use seedchain::{Anchor, Chain, SeedChainConfig, SeedChainMapper};
