//! A minimap2-flavoured seed-and-chain mapper.
//!
//! Minimizer *anchors* `(query pos, subject pos, strand)` are collected from
//! a positional index and chained with a gap-penalized dynamic program per
//! `(subject, strand)` group. The best chain gives the mapped subject and
//! approximate coordinates — which is what the paper needs Minimap2 for:
//! recovering the reference coordinates of contigs and reads during
//! benchmark construction (Fig. 4).

use jem_index::SubjectId;
use jem_seq::{Kmer, SeqRecord};
use jem_sketch::{minimizers, MinimizerParams};
use std::collections::HashMap;

/// Seed-and-chain configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedChainConfig {
    /// k-mer size.
    pub k: usize,
    /// Minimizer window size (denser than mapping sketches: anchors drive
    /// chaining resolution).
    pub w: usize,
    /// Maximum anchors considered as chaining predecessors.
    pub max_predecessors: usize,
    /// Maximum gap (bases) between chained anchors.
    pub max_gap: usize,
    /// Minimum chain score to report.
    pub min_score: i64,
}

impl Default for SeedChainConfig {
    fn default() -> Self {
        SeedChainConfig {
            k: 15,
            w: 10,
            max_predecessors: 50,
            max_gap: 5_000,
            min_score: 30,
        }
    }
}

/// A minimizer anchor: co-occurring position pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Anchor {
    /// Query position (on the query's forward orientation; reverse-strand
    /// anchors use transformed coordinates so chains stay co-linear).
    pub qpos: u32,
    /// Subject position.
    pub spos: u32,
    /// Subject id.
    pub subject: SubjectId,
    /// True if the query matches the subject's reverse strand.
    pub reverse: bool,
}

/// A chained alignment candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chain {
    /// Mapped subject.
    pub subject: SubjectId,
    /// Chain score (anchors × k minus gap penalties).
    pub score: i64,
    /// Query range covered (forward coordinates).
    pub q_start: u32,
    /// Query range end (exclusive, approximate: last anchor + k).
    pub q_end: u32,
    /// Subject range covered.
    pub s_start: u32,
    /// Subject range end (exclusive, approximate).
    pub s_end: u32,
    /// Strand.
    pub reverse: bool,
    /// Number of chained anchors.
    pub n_anchors: u32,
}

/// Posting in the positional index: subject occurrence of a minimizer.
#[derive(Clone, Copy, Debug)]
struct Posting {
    subject: SubjectId,
    pos: u32,
    /// Was the canonical code the forward k-mer at this subject position?
    fwd: bool,
}

/// The seed-and-chain mapper.
#[derive(Clone, Debug)]
pub struct SeedChainMapper {
    config: SeedChainConfig,
    params: MinimizerParams,
    index: HashMap<u64, Vec<Posting>>,
    subject_names: Vec<String>,
}

impl SeedChainMapper {
    /// Index the subject set.
    pub fn build(subjects: Vec<SeqRecord>, config: &SeedChainConfig) -> Self {
        let params = MinimizerParams::new(config.k, config.w).expect("invalid k/w");
        let mut index: HashMap<u64, Vec<Posting>> = HashMap::new();
        for (id, rec) in subjects.iter().enumerate() {
            for m in minimizers(&rec.seq, params) {
                let fwd = occurrence_is_forward(&rec.seq, m.pos as usize, config.k, m.code);
                index.entry(m.code).or_default().push(Posting {
                    subject: id as SubjectId,
                    pos: m.pos,
                    fwd,
                });
            }
        }
        SeedChainMapper {
            config: *config,
            params,
            index,
            subject_names: subjects.into_iter().map(|s| s.id).collect(),
        }
    }

    /// Number of indexed subjects.
    pub fn n_subjects(&self) -> usize {
        self.subject_names.len()
    }

    /// Name of subject `id`.
    pub fn subject_name(&self, id: SubjectId) -> &str {
        &self.subject_names[id as usize]
    }

    /// Collect anchors for a query sequence.
    pub fn anchors(&self, query: &[u8]) -> Vec<Anchor> {
        let k = self.config.k;
        let qlen = query.len();
        let mut anchors = Vec::new();
        for m in minimizers(query, self.params) {
            let Some(postings) = self.index.get(&m.code) else {
                continue;
            };
            let q_fwd = occurrence_is_forward(query, m.pos as usize, k, m.code);
            for p in postings {
                let reverse = q_fwd != p.fwd;
                // For reverse-strand anchors, flip query coordinates so that
                // increasing spos pairs with increasing transformed qpos.
                let qpos = if reverse {
                    (qlen - k) as u32 - m.pos
                } else {
                    m.pos
                };
                anchors.push(Anchor {
                    qpos,
                    spos: p.pos,
                    subject: p.subject,
                    reverse,
                });
            }
        }
        anchors
    }

    /// Chain anchors and return all chains with `score ≥ min_score`,
    /// best first.
    pub fn chains(&self, query: &[u8]) -> Vec<Chain> {
        let mut anchors = self.anchors(query);
        if anchors.is_empty() {
            return Vec::new();
        }
        anchors.sort_unstable_by_key(|a| (a.subject, a.reverse, a.spos, a.qpos));
        let k = self.config.k as i64;
        let mut chains = Vec::new();
        let mut i = 0;
        while i < anchors.len() {
            let (subject, reverse) = (anchors[i].subject, anchors[i].reverse);
            let mut j = i;
            while j < anchors.len()
                && anchors[j].subject == subject
                && anchors[j].reverse == reverse
            {
                j += 1;
            }
            let group = &anchors[i..j];
            i = j;
            // DP over the group.
            let mut f: Vec<i64> = vec![k; group.len()];
            let mut back: Vec<Option<usize>> = vec![None; group.len()];
            for b in 0..group.len() {
                let lo = b.saturating_sub(self.config.max_predecessors);
                for a in lo..b {
                    let ds = group[b].spos as i64 - group[a].spos as i64;
                    let dq = group[b].qpos as i64 - group[a].qpos as i64;
                    if ds <= 0 || dq <= 0 {
                        continue;
                    }
                    if ds > self.config.max_gap as i64 || dq > self.config.max_gap as i64 {
                        continue;
                    }
                    let gap = (ds - dq).abs();
                    let gain = k.min(dq).min(ds) - gap / 2 - if gap > 0 { 1 } else { 0 };
                    let cand = f[a] + gain;
                    if cand > f[b] {
                        f[b] = cand;
                        back[b] = Some(a);
                    }
                }
            }
            // Best chain ending in this group.
            if let Some((end, &score)) = f
                .iter()
                .enumerate()
                .max_by_key(|&(idx, &s)| (s, std::cmp::Reverse(idx)))
            {
                if score >= self.config.min_score {
                    let mut start = end;
                    let mut n = 1u32;
                    while let Some(prev) = back[start] {
                        start = prev;
                        n += 1;
                    }
                    chains.push(Chain {
                        subject,
                        score,
                        q_start: group[start].qpos.min(group[end].qpos),
                        q_end: group[start].qpos.max(group[end].qpos) + self.config.k as u32,
                        s_start: group[start].spos,
                        s_end: group[end].spos + self.config.k as u32,
                        reverse,
                        n_anchors: n,
                    });
                }
            }
        }
        chains.sort_unstable_by_key(|c| (std::cmp::Reverse(c.score), c.subject));
        chains
    }

    /// Best-hit mapping of a query: the top-scoring chain.
    pub fn map(&self, query: &[u8]) -> Option<Chain> {
        self.chains(query).into_iter().next()
    }
}

/// Does the canonical code at `pos` equal the forward k-mer there?
fn occurrence_is_forward(seq: &[u8], pos: usize, k: usize, canonical_code: u64) -> bool {
    match Kmer::from_bytes(&seq[pos..pos + k]) {
        Ok(kmer) => kmer.code() == canonical_code,
        Err(_) => true, // unreachable for minimizer positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;
    use jem_sim::Genome;

    fn config() -> SeedChainConfig {
        SeedChainConfig {
            k: 11,
            w: 5,
            max_predecessors: 50,
            max_gap: 2_000,
            min_score: 22,
        }
    }

    fn reference() -> Vec<SeqRecord> {
        let g = Genome::random(30_000, 0.5, 71);
        vec![SeqRecord::new("ref", g.seq)]
    }

    #[test]
    fn forward_query_maps_with_correct_coordinates() {
        let subjects = reference();
        let truth = subjects[0].seq[5_000..7_000].to_vec();
        let mapper = SeedChainMapper::build(subjects, &config());
        let chain = mapper.map(&truth).expect("must map");
        assert_eq!(chain.subject, 0);
        assert!(!chain.reverse);
        assert!(
            (chain.s_start as i64 - 5_000).abs() < 100,
            "s_start {}",
            chain.s_start
        );
        assert!(
            (chain.s_end as i64 - 7_000).abs() < 100,
            "s_end {}",
            chain.s_end
        );
        assert!(chain.n_anchors > 10);
    }

    #[test]
    fn reverse_query_maps_with_strand_flag() {
        let subjects = reference();
        let truth = revcomp_bytes(&subjects[0].seq[12_000..13_500]);
        let mapper = SeedChainMapper::build(subjects, &config());
        let chain = mapper.map(&truth).expect("must map");
        assert!(chain.reverse);
        assert!((chain.s_start as i64 - 12_000).abs() < 100);
        assert!((chain.s_end as i64 - 13_500).abs() < 100);
    }

    #[test]
    fn unrelated_query_unmapped() {
        let subjects = reference();
        let mapper = SeedChainMapper::build(subjects, &config());
        let alien = Genome::random(1_500, 0.5, 333).seq;
        assert_eq!(mapper.map(&alien), None);
    }

    #[test]
    fn split_reference_selects_right_contig() {
        let g = Genome::random(30_000, 0.5, 73);
        let subjects = vec![
            SeqRecord::new("left", g.seq[..15_000].to_vec()),
            SeqRecord::new("right", g.seq[15_000..].to_vec()),
        ];
        let mapper = SeedChainMapper::build(subjects, &config());
        let q_left = g.seq[2_000..3_200].to_vec();
        let q_right = g.seq[20_000..21_200].to_vec();
        assert_eq!(mapper.map(&q_left).unwrap().subject, 0);
        let right_chain = mapper.map(&q_right).unwrap();
        assert_eq!(right_chain.subject, 1);
        // Coordinates are contig-relative.
        assert!((right_chain.s_start as i64 - 5_000).abs() < 100);
    }

    #[test]
    fn chain_survives_scattered_mutations() {
        let subjects = reference();
        let mut query = subjects[0].seq[8_000..9_500].to_vec();
        // ~2% substitutions break some anchors but chaining bridges them.
        for i in (0..query.len()).step_by(50) {
            query[i] = match query[i] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        let mapper = SeedChainMapper::build(subjects, &config());
        let chain = mapper.map(&query).expect("must still map");
        assert!((chain.s_start as i64 - 8_000).abs() < 200);
    }

    #[test]
    fn gap_limit_splits_chains() {
        // Two homologous blocks separated by a huge unrelated insert: with
        // max_gap below the insert size the chain cannot bridge it.
        let g = Genome::random(30_000, 0.5, 79);
        let subjects = vec![SeqRecord::new("ref", g.seq.clone())];
        let mut query = g.seq[1_000..2_000].to_vec();
        query.extend_from_slice(&Genome::random(200, 0.5, 555).seq);
        query.extend_from_slice(&g.seq[10_000..11_000]); // 8 kb away on ref
        let cfg = SeedChainConfig {
            max_gap: 3_000,
            ..config()
        };
        let mapper = SeedChainMapper::build(subjects, &cfg);
        let chains = mapper.chains(&query);
        assert!(!chains.is_empty());
        let best = chains[0];
        // The best chain covers one block, not the 10 kb span.
        assert!(
            best.s_end - best.s_start < 5_000,
            "chain bridged the gap: {best:?}"
        );
    }
}
