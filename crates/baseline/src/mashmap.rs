//! A Mashmap-style two-stage winnowed-minhash mapper.
//!
//! Index time: every subject's minimizer list is inserted into a positional
//! index `code → [(subject, position)]`.
//!
//! Query time (per end segment):
//! 1. compute the query's minimizer set;
//! 2. **stage 1** — collect every `(subject, position)` occurrence of a
//!    shared minimizer and shortlist subjects whose total shared count
//!    reaches `min_shared`;
//! 3. **stage 2** — for each candidate, slide an ℓ-sized window over its
//!    sorted hit positions and score the subject by the *maximal local
//!    intersection* (the number of distinct query minimizers inside the
//!    best window); report the argmax subject.
//!
//! This mirrors the algorithm the paper compares against; the crucial
//! difference from JEM-mapper is that all locality filtering happens at
//! query time over position lists, instead of being baked into the sketch.

use jem_core::{make_segments, Mapping, ReadEnd};
use jem_index::SubjectId;
use jem_psim::{CostModel, ExecMode, RunReport, World};
use jem_seq::SeqRecord;
use jem_sketch::{minimizers, Minimizer, MinimizerParams};
use std::collections::HashMap;

/// Mashmap-baseline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MashmapConfig {
    /// k-mer size (kept equal to JEM's for head-to-head comparisons).
    pub k: usize,
    /// Minimizer window size `w`.
    pub w: usize,
    /// Window length for stage-2 local intersection (the end-segment ℓ).
    pub ell: usize,
    /// Stage-1 shortlist threshold: minimum shared minimizer occurrences.
    pub min_shared: u32,
}

impl Default for MashmapConfig {
    fn default() -> Self {
        MashmapConfig {
            k: 16,
            w: 100,
            ell: 1000,
            min_shared: 2,
        }
    }
}

/// One positional posting: a minimizer occurrence on a subject.
#[derive(Clone, Copy, Debug)]
struct Posting {
    subject: SubjectId,
    pos: u32,
}

/// The Mashmap-style positional minimizer index.
#[derive(Clone, Debug)]
pub struct MashmapMapper {
    config: MashmapConfig,
    params: MinimizerParams,
    /// minimizer code → occurrences across all subjects.
    index: HashMap<u64, Vec<Posting>>,
    subject_names: Vec<String>,
}

impl MashmapMapper {
    /// Build the positional index over the subject set.
    pub fn build(subjects: Vec<SeqRecord>, config: &MashmapConfig) -> Self {
        let params = MinimizerParams::new(config.k, config.w).expect("invalid k/w");
        let mut index: HashMap<u64, Vec<Posting>> = HashMap::new();
        for (id, rec) in subjects.iter().enumerate() {
            for m in minimizers(&rec.seq, params) {
                index.entry(m.code).or_default().push(Posting {
                    subject: id as SubjectId,
                    pos: m.pos,
                });
            }
        }
        MashmapMapper {
            config: *config,
            params,
            index,
            subject_names: subjects.into_iter().map(|s| s.id).collect(),
        }
    }

    /// Number of indexed subjects.
    pub fn n_subjects(&self) -> usize {
        self.subject_names.len()
    }

    /// Name of subject `id`.
    pub fn subject_name(&self, id: SubjectId) -> &str {
        &self.subject_names[id as usize]
    }

    /// The active configuration.
    pub fn config(&self) -> &MashmapConfig {
        &self.config
    }

    /// Map one end segment; returns the best `(subject, score)` where the
    /// score is the stage-2 maximal local intersection.
    pub fn map_segment(&self, seg: &[u8]) -> Option<(SubjectId, u32)> {
        let query_minis: Vec<Minimizer> = minimizers(seg, self.params);
        if query_minis.is_empty() {
            return None;
        }
        // Stage 1: gather postings of shared minimizers, tagged with which
        // query minimizer produced them (distinctness matters in stage 2).
        // (query_idx, subject, subject_pos)
        let mut hits: Vec<(u32, SubjectId, u32)> = Vec::new();
        let mut dedup_codes: Vec<u64> = query_minis.iter().map(|m| m.code).collect();
        dedup_codes.sort_unstable();
        dedup_codes.dedup();
        for (qi, code) in dedup_codes.iter().enumerate() {
            if let Some(postings) = self.index.get(code) {
                for p in postings {
                    hits.push((qi as u32, p.subject, p.pos));
                }
            }
        }
        if hits.is_empty() {
            return None;
        }
        // Group by subject; shortlist by total shared count.
        hits.sort_unstable_by_key(|&(_, s, pos)| (s, pos));
        let mut best: Option<(SubjectId, u32)> = None;
        let mut i = 0;
        while i < hits.len() {
            let subject = hits[i].1;
            let mut j = i;
            while j < hits.len() && hits[j].1 == subject {
                j += 1;
            }
            let group = &hits[i..j];
            i = j;
            if (group.len() as u32) < self.config.min_shared {
                continue;
            }
            // Stage 2: maximal local intersection — the window of length ℓ
            // (over subject positions) holding the most *distinct* query
            // minimizers.
            let score = max_local_intersection(group, self.config.ell as u32);
            if score >= self.config.min_shared {
                match best {
                    Some((bs, bc)) if score < bc || (score == bc && subject >= bs) => {}
                    _ => best = Some((subject, score)),
                }
            }
        }
        best
    }

    /// Map every read's end segments (sequential driver).
    pub fn map_reads(&self, reads: &[SeqRecord]) -> Vec<Mapping> {
        let segments = make_segments(reads, self.config.ell);
        let mut out = Vec::new();
        for seg in &segments {
            if let Some((subject, score)) = self.map_segment(&seg.seq) {
                out.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits: score,
                });
            }
        }
        out
    }
}

/// Best count of distinct query minimizers within any window of subject
/// positions of length `ell`. `group` is sorted by position.
fn max_local_intersection(group: &[(u32, SubjectId, u32)], ell: u32) -> u32 {
    // Two-pointer sweep with a multiset of query-minimizer ids.
    let mut counts: HashMap<u32, u32> = HashMap::new();
    let mut distinct = 0u32;
    let mut best = 0u32;
    let mut lo = 0usize;
    for hi in 0..group.len() {
        let entry = counts.entry(group[hi].0).or_insert(0);
        if *entry == 0 {
            distinct += 1;
        }
        *entry += 1;
        while group[hi].2 - group[lo].2 > ell {
            let e = counts.get_mut(&group[lo].0).expect("present");
            *e -= 1;
            if *e == 0 {
                distinct -= 1;
            }
            lo += 1;
        }
        best = best.max(distinct);
    }
    best
}

/// Run the Mashmap baseline "multithreaded" the way the paper does (shared
/// index, queries split across `threads` workers), on the simulated world so
/// its runtime is comparable with the distributed JEM numbers of Table II.
///
/// Shared-memory threads communicate through memory, so no collective cost
/// is charged; the makespan is the slowest worker plus the (replicated)
/// index build.
pub fn run_mashmap_threaded(
    subjects: &[SeqRecord],
    reads: &[SeqRecord],
    config: &MashmapConfig,
    threads: usize,
    mode: ExecMode,
) -> (Vec<Mapping>, RunReport) {
    let mut world = World::new(threads, CostModel::zero()).with_mode(mode);
    let mapper = world.superstep_replicated("index build", || {
        MashmapMapper::build(subjects.to_vec(), config)
    });
    let segments = make_segments(reads, config.ell);
    let per_rank: Vec<Vec<Mapping>> = world.superstep("query map", |rank| {
        let range = {
            let base = segments.len() / threads;
            let extra = segments.len() % threads;
            let start = rank * base + rank.min(extra);
            start..(start + base + usize::from(rank < extra)).min(segments.len())
        };
        let mut out = Vec::new();
        for seg in &segments[range] {
            if let Some((subject, score)) = mapper.map_segment(&seg.seq) {
                out.push(Mapping {
                    read_idx: seg.read_idx,
                    end: seg.end,
                    subject,
                    hits: score,
                });
            }
        }
        out
    });
    let mut mappings: Vec<Mapping> = per_rank.into_iter().flatten().collect();
    mappings.sort_unstable(); // total order; see Mapping's Ord doc
    (mappings, world.into_report())
}

/// Convenience: query key for a baseline mapping (same format as core).
pub fn mapping_key(m: &Mapping, reads: &[SeqRecord]) -> String {
    let end = match m.end {
        ReadEnd::Prefix => "prefix",
        ReadEnd::Suffix => "suffix",
    };
    format!("{}/{}", reads[m.read_idx as usize].id, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sim::{
        contig_records, fragment_contigs, read_records, simulate_hifi, ContigProfile, Genome,
        HifiProfile,
    };

    fn config() -> MashmapConfig {
        MashmapConfig {
            k: 12,
            w: 10,
            ell: 400,
            min_shared: 2,
        }
    }

    fn world_data() -> (Genome, Vec<SeqRecord>) {
        let genome = Genome::random(60_000, 0.5, 31);
        let contigs = fragment_contigs(
            &genome,
            &ContigProfile {
                error_rate: 0.0,
                ..ContigProfile::small_genome()
            },
            32,
        );
        (genome, contig_records(&contigs))
    }

    #[test]
    fn verbatim_window_maps_home() {
        let (_, subjects) = world_data();
        let mapper = MashmapMapper::build(subjects.clone(), &config());
        let query = subjects[4].seq[..400.min(subjects[4].seq.len())].to_vec();
        let (best, score) = mapper.map_segment(&query).expect("must map");
        assert_eq!(best, 4);
        assert!(score >= 2);
    }

    #[test]
    fn alien_segment_unmapped() {
        let (_, subjects) = world_data();
        let mapper = MashmapMapper::build(subjects, &config());
        let alien = Genome::random(400, 0.5, 999).seq;
        assert_eq!(mapper.map_segment(&alien), None);
    }

    #[test]
    fn empty_query() {
        let (_, subjects) = world_data();
        let mapper = MashmapMapper::build(subjects, &config());
        assert_eq!(mapper.map_segment(b""), None);
        assert_eq!(mapper.map_segment(b"NNNNNN"), None);
    }

    #[test]
    fn map_reads_end_to_end() {
        let (genome, subjects) = world_data();
        let mapper = MashmapMapper::build(subjects, &config());
        let profile = HifiProfile {
            coverage: 2.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 33));
        let mappings = mapper.map_reads(&reads);
        assert!(!mappings.is_empty());
        for m in &mappings {
            assert!((m.subject as usize) < mapper.n_subjects());
        }
    }

    #[test]
    fn threaded_run_matches_sequential_mappings() {
        let (genome, subjects) = world_data();
        let profile = HifiProfile {
            coverage: 1.0,
            mean_len: 4_000,
            std_len: 800,
            min_len: 1_000,
            error_rate: 0.001,
        };
        let reads = read_records(&simulate_hifi(&genome, &profile, 34));
        let mapper = MashmapMapper::build(subjects.clone(), &config());
        let mut expected = mapper.map_reads(&reads);
        expected.sort_unstable();
        for t in [1usize, 3, 8] {
            let (got, report) =
                run_mashmap_threaded(&subjects, &reads, &config(), t, ExecMode::Sequential);
            assert_eq!(got, expected, "threads = {t}");
            assert!(report.makespan_secs() > 0.0);
        }
    }

    #[test]
    fn local_intersection_window_logic() {
        // Positions 0..5 close together (5 distinct), one far outlier of the
        // same query minimizer 0.
        let group: Vec<(u32, SubjectId, u32)> = vec![
            (0, 0, 0),
            (1, 0, 10),
            (2, 0, 20),
            (3, 0, 30),
            (4, 0, 40),
            (0, 0, 5000),
        ];
        assert_eq!(max_local_intersection(&group, 100), 5);
        // Tiny window: only individual hits.
        assert_eq!(max_local_intersection(&group, 1), 1);
        // Duplicate query minimizers in one window count once.
        let dup: Vec<(u32, SubjectId, u32)> = vec![(7, 0, 0), (7, 0, 10), (7, 0, 20)];
        assert_eq!(max_local_intersection(&dup, 100), 1);
    }
}
