//! Property-based tests for the baseline mappers.

use jem_baseline::{
    ClassicMinHashConfig, ClassicMinHashMapper, MashmapConfig, MashmapMapper, SeedChainConfig,
    SeedChainMapper,
};
use jem_index::LazyHitCounter;
use jem_seq::alphabet::revcomp_bytes;
use jem_seq::SeqRecord;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mashmap_window_of_subject_maps_home(
        subjects in prop::collection::vec(dna(1_500, 3_000), 2..5),
        pick in 0usize..5,
        frac in 0.0f64..0.5,
    ) {
        let recs: Vec<SeqRecord> = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("c{i}"), s.clone()))
            .collect();
        let config = MashmapConfig { k: 12, w: 8, ell: 500, min_shared: 2 };
        let mapper = MashmapMapper::build(recs, &config);
        let idx = pick % subjects.len();
        let offset = (subjects[idx].len() as f64 * frac) as usize;
        let end = (offset + 500).min(subjects[idx].len());
        let query = &subjects[idx][offset..end];
        if let Some((best, score)) = mapper.map_segment(query) {
            // Random subjects may coincidentally share minimizers, but the
            // verbatim source must win or at least tie at a high score.
            prop_assert!(score >= 2);
            if best as usize != idx {
                // Only acceptable if the winner has genuinely high overlap
                // (vanishingly rare for random sequences) — flag it.
                prop_assert!(false, "window of c{idx} mapped to c{best} (score {score})");
            }
        } else {
            prop_assert!(false, "verbatim window failed to map");
        }
    }

    #[test]
    fn mashmap_strand_invariant(subject in dna(2_000, 3_000)) {
        let config = MashmapConfig { k: 12, w: 8, ell: 500, min_shared: 2 };
        let mapper = MashmapMapper::build(
            vec![SeqRecord::new("c0", subject.clone())],
            &config,
        );
        let fwd = &subject[500..1000];
        let rc = revcomp_bytes(fwd);
        let a = mapper.map_segment(fwd);
        let b = mapper.map_segment(&rc);
        prop_assert_eq!(a.map(|x| x.0), b.map(|x| x.0), "canonical minimizers are strand-free");
    }

    #[test]
    fn classic_minhash_full_subject_hits_all_trials(
        subjects in prop::collection::vec(dna(800, 2_000), 1..4),
    ) {
        let recs: Vec<SeqRecord> = subjects
            .iter()
            .enumerate()
            .map(|(i, s)| SeqRecord::new(format!("c{i}"), s.clone()))
            .collect();
        let config = ClassicMinHashConfig { k: 12, trials: 12, ell: 1000, seed: 5 };
        let mapper = ClassicMinHashMapper::build(&recs, &config);
        for (i, s) in subjects.iter().enumerate() {
            let mut counter = LazyHitCounter::new(mapper.n_subjects());
            let (best, hits) = mapper
                .map_segment(s, i as u64, &mut counter)
                .expect("identical sequence must map");
            prop_assert_eq!(hits as usize, 12, "all trials must collide for an identical query");
            // best may tie with a duplicate subject; verify it's truly equal.
            prop_assert!(subjects[best as usize] == *s || best as usize == i);
        }
    }

    #[test]
    fn seedchain_coordinates_within_tolerance(
        reference in dna(8_000, 15_000),
        start_frac in 0.0f64..0.6,
    ) {
        let config = SeedChainConfig { k: 11, w: 5, max_predecessors: 50, max_gap: 2_000, min_score: 22 };
        let mapper = SeedChainMapper::build(
            vec![SeqRecord::new("ref", reference.clone())],
            &config,
        );
        let start = (reference.len() as f64 * start_frac) as usize;
        let end = (start + 1_200).min(reference.len());
        let chain = mapper.map(&reference[start..end]).expect("verbatim region must map");
        prop_assert_eq!(chain.subject, 0);
        prop_assert!(!chain.reverse);
        prop_assert!((chain.s_start as i64 - start as i64).abs() < 150,
            "s_start {} vs {}", chain.s_start, start);
        prop_assert!((chain.s_end as i64 - end as i64).abs() < 150);
        prop_assert!(chain.q_start < chain.q_end);
        prop_assert!(chain.s_start < chain.s_end);
    }

    #[test]
    fn seedchain_reverse_strand_detected(reference in dna(8_000, 12_000)) {
        let config = SeedChainConfig { k: 11, w: 5, max_predecessors: 50, max_gap: 2_000, min_score: 22 };
        let mapper = SeedChainMapper::build(
            vec![SeqRecord::new("ref", reference.clone())],
            &config,
        );
        let query = revcomp_bytes(&reference[3_000..4_200]);
        let chain = mapper.map(&query).expect("revcomp region must map");
        prop_assert!(chain.reverse);
        prop_assert!((chain.s_start as i64 - 3_000).abs() < 150);
    }
}
