//! `--metrics` end to end: the snapshot a `jem` run writes must parse under
//! the documented schema, carry nonzero stage spans and counters, and the
//! instrumented run must not change the mapping output.

use jem_obs::Snapshot;
use std::path::PathBuf;
use std::process::Command;

fn jem() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jem"))
}

fn run(cmd: &mut Command) {
    let out = cmd.output().expect("spawn jem");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jem_metrics_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn load_snapshot(path: &std::path::Path) -> Snapshot {
    let json = std::fs::read_to_string(path).expect("metrics file written");
    Snapshot::from_json(&json).expect("metrics JSON parses under schema v1")
}

#[test]
fn map_metrics_snapshot_has_pipeline_breakdown() {
    let dir = workdir("map");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "80000", "--coverage", "3", "--seed", "17"]));

    // Uninstrumented reference run, then the same mapping with a live
    // recorder and a bounded thread count.
    run(jem().args(["map", "--subjects", &p("contigs.fa")]).args([
        "--queries",
        &p("reads.fq"),
        "--out",
        &p("plain.tsv"),
    ]));
    run(jem()
        .args(["map", "--subjects", &p("contigs.fa")])
        .args(["--queries", &p("reads.fq"), "--out", &p("metered.tsv")])
        .args(["--threads", "2", "--metrics", &p("metrics.json")]));

    let plain = std::fs::read_to_string(p("plain.tsv")).unwrap();
    let metered = std::fs::read_to_string(p("metered.tsv")).unwrap();
    assert_eq!(metered, plain, "--metrics/--threads changed the mappings");

    let snap = load_snapshot(&dir.join("metrics.json"));
    for counter in [
        "sketch.sequences",
        "sketch.windows_scanned",
        "sketch.minimizers_kept",
        "index.entries",
        "map.segments",
        "map.mapped",
    ] {
        assert!(snap.counter(counter) > 0, "counter {counter} stayed zero");
    }
    for span in ["sketch/minimizers", "index/build", "map/parallel"] {
        assert!(snap.span_ns(span) > 0, "span {span} recorded no time");
    }
    assert!(
        snap.histograms.contains_key("map.chunk_ns"),
        "parallel driver must record chunk timings"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_metrics_snapshot_has_simulated_breakdown() {
    let dir = workdir("dist");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "60000", "--coverage", "2", "--seed", "23"]));
    run(jem()
        .args(["distributed", "--subjects", &p("contigs.fa")])
        .args(["--queries", &p("reads.fq"), "--ranks", "4"])
        .args(["--fault-plan", "crash@1:subject sketch"])
        .args(["--metrics", &p("metrics.json")]));

    let snap = load_snapshot(&dir.join("metrics.json"));
    assert!(snap.counter("psim.supersteps") > 0);
    assert!(snap.counter("psim.collectives") > 0);
    assert!(snap.counter("psim.comm_bytes") > 0);
    // The injected crash surfaces in both the fault and recovery counters.
    assert_eq!(snap.counter("psim.crashes"), 1);
    assert!(snap.counter("psim.retries") >= 1);
    assert!(snap.counter("psim.reassigned_blocks") >= 1);
    // The Fig.-7-style per-step breakdown comes out of the same recorder.
    for span in [
        "psim/input load",
        "psim/subject sketch",
        "psim/sketch gather",
        "psim/global table build",
        "psim/query map",
        "psim/result gather",
    ] {
        assert!(
            snap.spans.contains_key(span),
            "step span {span} missing from snapshot"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_metrics_snapshot_covers_build() {
    let dir = workdir("index");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "50000", "--coverage", "2", "--seed", "29"]));
    run(jem()
        .args([
            "index",
            "--subjects",
            &p("contigs.fa"),
            "--out",
            &p("index.jem"),
        ])
        .args(["--metrics", &p("metrics.json")]));

    let snap = load_snapshot(&dir.join("metrics.json"));
    assert!(snap.counter("index.subjects") > 0);
    assert!(snap.counter("index.keys") > 0);
    assert!(snap.span_ns("index/build") > 0);
    assert!(snap.histograms["index.bucket_occupancy"].count > 0);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_threads_values_are_usage_errors() {
    for threads in ["0", "none"] {
        let out = jem()
            .args(["map", "--subjects", "x.fa", "--queries", "y.fq"])
            .args(["--threads", threads])
            .output()
            .unwrap();
        assert!(!out.status.success());
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--threads"),
            "expected a --threads usage error for {threads:?}"
        );
    }
}
