//! Drives the `jem` binary end to end through temp files.

use std::path::PathBuf;
use std::process::Command;

fn jem() -> Command {
    Command::new(env!("CARGO_BIN_EXE_jem"))
}

fn run(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn jem");
    assert!(
        out.status.success(),
        "command failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jem_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow() {
    let dir = workdir("full");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();

    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "120000", "--coverage", "5", "--seed", "7"]));
    for f in ["genome.fa", "contigs.fa", "reads.fq", "truth.tsv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    run(jem().args([
        "index",
        "--subjects",
        &p("contigs.fa"),
        "--out",
        &p("index.jem"),
    ]));
    assert!(dir.join("index.jem").exists());

    run(jem().args([
        "map",
        "--index",
        &p("index.jem"),
        "--queries",
        &p("reads.fq"),
        "--out",
        &p("map.tsv"),
    ]));
    let tsv = std::fs::read_to_string(p("map.tsv")).unwrap();
    assert!(tsv.starts_with("#query\tsubject"), "TSV header missing");
    assert!(tsv.lines().count() > 10, "suspiciously few mappings");

    let eval_out = run(jem().args([
        "eval",
        "--mappings",
        &p("map.tsv"),
        "--truth",
        &p("truth.tsv"),
    ]));
    let precision: f64 = eval_out
        .lines()
        .find_map(|l| l.strip_prefix("precision\t"))
        .expect("precision line")
        .parse()
        .unwrap();
    assert!(precision > 0.9, "CLI pipeline precision {precision}");

    run(jem().args([
        "scaffold",
        "--subjects",
        &p("contigs.fa"),
        "--mappings",
        &p("map.tsv"),
        "--out",
        &p("scaffolds.fa"),
    ]));
    let scaffolds = std::fs::read_to_string(p("scaffolds.fa")).unwrap();
    assert!(scaffolds.contains(">scaffold_0"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn map_without_prebuilt_index() {
    let dir = workdir("noindex");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "60000", "--coverage", "3", "--seed", "9"]));
    let out = run(jem().args([
        "map",
        "--subjects",
        &p("contigs.fa"),
        "--queries",
        &p("reads.fq"),
    ]));
    assert!(out.starts_with("#query"), "stdout TSV expected");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn assemble_from_genome() {
    let dir = workdir("asm");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "50000", "--coverage", "2", "--seed", "3"]));
    run(jem().args([
        "assemble",
        "--simulate-from",
        &p("genome.fa"),
        "--out",
        &p("asm.fa"),
        "--coverage",
        "25",
    ]));
    let asm = std::fs::read_to_string(p("asm.fa")).unwrap();
    assert!(asm.contains(">contig_0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contained_reports_incidences() {
    let dir = workdir("contained");
    let p = |name: &str| dir.join(name).to_string_lossy().into_owned();
    run(jem()
        .args(["simulate", "--out", dir.to_str().unwrap()])
        .args(["--genome-len", "80000", "--coverage", "3", "--seed", "5"]));
    let out = run(jem().args([
        "contained",
        "--subjects",
        &p("contigs.fa"),
        "--queries",
        &p("reads.fq"),
    ]));
    assert!(
        out.starts_with("#read\tsubject"),
        "header expected, got {out:.60}"
    );
    // Tiling must report at least as many incidences as reads (each read
    // touches >= 1 contig with 95% contig coverage).
    assert!(out.lines().count() > 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported() {
    let out = jem()
        .args(["map", "--queries", "/nonexistent"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let out = jem().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = jem().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let out = run(jem().arg("help"));
    assert!(out.contains("USAGE"));
    for cmd in ["index", "map", "simulate", "assemble", "eval", "scaffold"] {
        assert!(out.contains(cmd), "{cmd} missing from help");
    }
}
