//! `jem` — the JEM-Mapper command-line toolkit.
//!
//! ```text
//! jem simulate    --out data/ --genome-len 500000 --coverage 10
//! jem index       --subjects data/contigs.fa --out data/index.jem
//! jem map         --index data/index.jem --queries data/reads.fq --out data/map.tsv
//! jem serve       --index data/index.jem --addr 127.0.0.1:7878 --shards 4
//! jem query       --addr 127.0.0.1:7878 --queries data/reads.fq --out data/map.tsv
//! jem distributed --subjects data/contigs.fa --queries data/reads.fq --ranks 8 \
//!                 --fault-plan 'crash@1:subject sketch'
//! jem eval        --mappings data/map.tsv --truth data/truth.tsv
//! jem scaffold    --subjects data/contigs.fa --mappings data/map.tsv --out data/scaffolds.fa
//! jem assemble    --simulate-from data/genome.fa --out data/asm.fa
//! ```

mod args;
mod commands;
mod error;
mod io;

use args::Args;
use error::CliError;

const USAGE: &str = "\
jem — parallel sketch-based mapping of long reads to contigs (JEM-mapper)

USAGE: jem <command> [--flag value ...]

COMMANDS:
  index       build a JEM sketch index over a contig set
                (--subjects FILE | --upgrade OLD.jem  rewrite an existing
                v3/v4 artifact) --out FILE [--format v4|v3, default v4]
                [--k 16] [--w 100] [--trials 30] [--ell 1000] [--seed N]
                [--metrics FILE] [--syncmer S  use closed syncmers
                instead of minimizers]
  map         map long-read end segments to contigs (TSV to --out or stdout)
                (--index FILE | --subjects FILE) --queries FILE|- [--out FILE]
                [--paf FILE  also refine to coordinates + MAPQ as PAF;
                needs --subjects for the contig sequences]
                [--parallel] [--threads N] [--metrics FILE]
                [config flags as for index]  (--queries - reads stdin)
  serve       keep a persisted index resident and serve mapping requests
              over TCP until `jem query --shutdown` (DESIGN.md §10–§11)
                --index FILE [--addr 127.0.0.1:7878] [--shards 4]
                [--slots LO-HI  own only this slice of the slot space,
                as one shard of a `jem route` topology]
                [--workers 4] [--queue 64] [--batch 16] [--metrics FILE]
                [--prefault  touch every index page at load time]
                [--quota-rate T/S  per-client admission quota, 0 = off]
                [--quota-burst N] [--max-conns 256] [--max-inflight 32]
                [--idle-timeout-ms 2000  reap idle/half-open conns]
                [--straggle-ms 0  slow every batch, for deadline testing]
                [--panic-every 0  panic every Nth index pass, chaos only]
  route       scatter-gather front-end over `jem serve --slots` shards:
              pooled shard connections, hedged retries, per-shard circuit
              breakers, per-client admission quotas, degraded answers
              naming missing shards (DESIGN.md §13, §16)
                --topology 'LO-HI@ADDR[,REPLICA];...' [--addr
                127.0.0.1:7979] [--epoch 0] [--hedge-ms 50  0 = off]
                [--breaker-failures 3] [--breaker-cooldown-ms 250]
                [--deadline MS] [--io-timeout-ms 10000]
                [--quota-rate T/S  0 = off] [--quota-burst N]
                [--max-inflight 256] [--idle-timeout-ms 2000]
                [--pool-idle 4  idle conns kept per shard, 0 = off]
                [--pool-age-ms 1500  retire pooled conns older than this]
                [--metrics FILE]
                [--snapshot FILE  topology + breaker-state report]
  query       map reads through a running `jem serve` or `jem route`
              (TSV as for map)
                --addr HOST:PORT (--queries FILE|- | --ping | --shutdown
                | --reload FILE  hot-swap the server's index)
                [--client-id NAME  identify to quota-enforcing servers;
                over-quota exits 75 with the server's retry hint]
                [--chunk 64] [--deadline MS  shed instead of serving late]
                [--out FILE] [--paf FILE --subjects contigs.fa  refine the
                served hits to coordinates client-side]
                [--via-router [--allow-degraded  accept
                partial answers, report missing shards on stderr]]
  distributed run the S1–S4 pipeline on simulated MPI ranks, with optional
              fault injection and recovery (makespan + fault report)
                --subjects FILE --queries FILE [--ranks 8] [--threads]
                [--fault-plan 'crash@R:STEP,corrupt@R:STEP,straggle@R:STEP*F']
                [--corruption-seed N] [--retries 3] [--checkpoint FILE]
                [--metrics FILE] [--out FILE] [config flags]
  simulate    generate a synthetic genome, contig set, HiFi reads and truth
                --out DIR [--genome-len 500000] [--coverage 10]
                [--profile eukaryotic|bacterial] [--seed 42] [--ell 1000]
  assemble    de Bruijn assembly of short reads (Minia-substitute)
                (--reads FILE | --simulate-from GENOME.fa [--coverage 30])
                --out FILE [--k 31] [--min-abundance 3] [--min-len 500]
                [--tip-len 93]
  contained   whole-read tiled mapping: every contig a read touches,
              including interior-contained ones
                (--index FILE | --subjects FILE) --queries FILE
                [--stride ELL/2] [--out FILE]
  eval        score a mapping TSV against truth coordinates (Fig. 4 benchmark)
                (--mappings FILE | --paf FILE | both) --truth FILE [--k 16]
                [--tolerance 100  max start offset in bases for a PAF
                placement to count as correct]
  bench       std-only micro-benchmarks on a seeded simulated dataset
              (stage: sketch). Writes a JSON perf trajectory file.
                jem bench sketch [--out BENCH_sketch.json]
                [--genome-len 2000000] [--coverage 2] [--iters 3]
                [config flags as for index]
  scaffold    chain contigs linked by long reads into scaffolds
                --subjects FILE --mappings FILE --out FILE
                [--min-support 2] [--gap 100]
  help        print this message
";

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = match argv.next() {
        Some(c) => c,
        None => {
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    // `jem bench <stage>` carries one positional stage name; peel it off
    // before flag parsing (the parser rejects bare positionals by design).
    let mut argv = argv.peekable();
    let bench_stage = if command == "bench" {
        match argv.peek() {
            Some(tok) if !tok.starts_with("--") => argv.next(),
            _ => None,
        }
    } else {
        None
    };
    let result = Args::parse(argv).and_then(|args| match command.as_str() {
        "bench" => commands::cmd_bench(bench_stage.as_deref(), &args),
        "index" => commands::cmd_index(&args),
        "map" => commands::cmd_map(&args),
        "serve" => commands::cmd_serve(&args),
        "route" => commands::cmd_route(&args),
        "query" => commands::cmd_query(&args),
        "distributed" => commands::cmd_distributed(&args),
        "contained" => commands::cmd_contained(&args),
        "simulate" => commands::cmd_simulate(&args),
        "assemble" => commands::cmd_assemble(&args),
        "eval" => commands::cmd_eval(&args),
        "scaffold" => commands::cmd_scaffold(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command {other:?} (try `jem help`)"
        ))),
    });
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
