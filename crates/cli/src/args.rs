//! Minimal `--flag value` argument parser (no external dependencies).

use crate::error::CliError;
use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs plus bare switches.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an iterator of raw arguments. A `--key` followed by a
    /// value that does not start with `--` binds that value; otherwise it
    /// is a boolean switch. Non-flag tokens are rejected.
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Args, CliError> {
        let mut args = Args::default();
        let mut raw = raw.peekable();
        while let Some(token) = raw.next() {
            let key = token
                .strip_prefix("--")
                .ok_or_else(|| {
                    CliError::Usage(format!("unexpected argument {token:?} (expected --flag)"))
                })?
                .to_string();
            if key.is_empty() {
                return Err(CliError::Usage("empty flag name".into()));
            }
            match raw.peek() {
                Some(v) if !v.starts_with("--") => {
                    let value = raw.next().expect("peeked");
                    if args.flags.insert(key.clone(), value).is_some() {
                        return Err(CliError::Usage(format!("flag --{key} given twice")));
                    }
                }
                _ => args.switches.push(key),
            }
        }
        Ok(args)
    }

    /// Value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Required value of `--key`.
    pub fn req(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Parsed value of `--key` with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("cannot parse --{key} value {v:?}"))),
        }
    }

    /// Was bare switch `--key` given?
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, CliError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_switches() {
        let a = parse(&["--in", "x.fa", "--verbose", "--k", "16"]).unwrap();
        assert_eq!(a.get("in"), Some("x.fa"));
        assert_eq!(a.get_or("k", 0usize).unwrap(), 16);
        assert!(a.has("verbose"));
        assert!(!a.has("quiet"));
        assert_eq!(a.get_or("w", 100usize).unwrap(), 100);
    }

    #[test]
    fn required_flag_error() {
        let a = parse(&[]).unwrap();
        let err = a.req("in").unwrap_err();
        assert!(err.to_string().contains("--in"));
        assert!(matches!(err, CliError::Usage(_)));
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn rejects_bare_positional() {
        assert!(matches!(parse(&["x.fa"]).unwrap_err(), CliError::Usage(_)));
    }

    #[test]
    fn rejects_duplicate_flag() {
        assert!(parse(&["--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn bad_parse_reported() {
        let a = parse(&["--k", "sixteen"]).unwrap();
        assert!(matches!(
            a.get_or("k", 0usize).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn trailing_switch() {
        let a = parse(&["--fast"]).unwrap();
        assert!(a.has("fast"));
    }
}
