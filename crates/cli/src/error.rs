//! The CLI's typed error: every failure a `jem` command can hit maps to a
//! variant here, prints as one line, and exits nonzero — no `String`
//! plumbing, no panics on malformed user input.

use jem_core::ResilienceError;
use jem_seq::SeqError;
use std::fmt;

/// A failure of a `jem` invocation.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line: unknown command, missing/duplicate/malformed flags.
    Usage(String),
    /// An OS-level I/O failure on a named path.
    Io {
        /// Path the operation failed on.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A named input file exists but its contents are malformed (truncated
    /// FASTQ, corrupt index, bad FASTA header, …).
    Format {
        /// Path of the malformed file.
        path: String,
        /// What the parser rejected.
        source: SeqError,
    },
    /// Inputs parse individually but are semantically inconsistent (e.g. a
    /// mapping TSV referencing an unknown contig).
    Data(String),
    /// The server refused the request under per-client admission control.
    /// Distinct from transient `Busy` failures: the server named a wait,
    /// and retrying sooner is guaranteed to be refused again.
    Throttled {
        /// How long the server said to wait before retrying.
        retry_after: std::time::Duration,
    },
    /// The resilient distributed run could not complete.
    Resilience(ResilienceError),
}

impl CliError {
    /// Wrap an I/O error with the path it struck.
    pub fn io(path: &str) -> impl FnOnce(std::io::Error) -> CliError + '_ {
        move |source| CliError::Io {
            path: path.to_string(),
            source,
        }
    }

    /// Wrap a parse/format error with the file it struck.
    pub fn format(path: &str) -> impl FnOnce(SeqError) -> CliError + '_ {
        move |source| CliError::Format {
            path: path.to_string(),
            source,
        }
    }

    /// Process exit code for this failure: 2 for usage errors (like
    /// conventional Unix tools), 75 (`EX_TEMPFAIL`) for quota throttling
    /// — scripts can branch on it and honor the retry hint — and 1 for
    /// everything else.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Throttled { .. } => 75,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Format { path, source } => write!(f, "{path}: {source}"),
            CliError::Data(msg) => write!(f, "{msg}"),
            CliError::Throttled { retry_after } => write!(
                f,
                "server throttled this client: retry after {}ms",
                retry_after.as_millis()
            ),
            CliError::Resilience(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Format { source, .. } => Some(source),
            CliError::Resilience(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ResilienceError> for CliError {
    fn from(e: ResilienceError) -> Self {
        CliError::Resilience(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_one_line() {
        let errs: Vec<CliError> = vec![
            CliError::Usage("missing required flag --out".into()),
            CliError::Io {
                path: "x.fa".into(),
                source: std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
            },
            CliError::Resilience(jem_core::ResilienceError::AllRanksFailed {
                step: "subject sketch".into(),
            }),
            CliError::Format {
                path: "r.fq".into(),
                source: SeqError::Format {
                    line: 3,
                    msg: "truncated record".into(),
                },
            },
            CliError::Data("mapping references unknown contig \"c9\"".into()),
            CliError::Throttled {
                retry_after: std::time::Duration::from_millis(250),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.contains('\n'), "multi-line error: {s:?}");
        }
    }

    #[test]
    fn exit_codes() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Data("x".into()).exit_code(), 1);
        let throttled = CliError::Throttled {
            retry_after: std::time::Duration::from_millis(100),
        };
        assert_eq!(throttled.exit_code(), 75, "EX_TEMPFAIL for quota refusals");
        assert!(throttled.to_string().contains("100ms"));
    }

    #[test]
    fn io_and_format_carry_sources() {
        use std::error::Error;
        let e = CliError::io("f.fa")(std::io::Error::other("boom"));
        assert!(e.source().is_some());
        let e = CliError::format("f.fq")(SeqError::Format {
            line: 1,
            msg: "bad".into(),
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("f.fq"));
    }
}
