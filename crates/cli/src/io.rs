//! Shared file I/O helpers for the CLI commands.

use crate::error::CliError;
use jem_seq::{FastaReader, FastqReader, FastqRecord, SeqRecord};
use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

/// Read sequences from FASTA or FASTQ, sniffing the format from the first
/// non-whitespace byte (`>` vs `@`). Malformed input — including a file
/// truncated mid-record — is a [`CliError::Format`], never a panic.
///
/// The path `-` reads standard input instead, so queries can be streamed
/// into `jem map` / `jem query` from a pipe.
pub fn read_sequences(path: &str) -> Result<Vec<SeqRecord>, CliError> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut buf)
            .map_err(CliError::io("<stdin>"))?;
        return sniff_sequences(buf.as_slice(), "<stdin>");
    }
    let reader = BufReader::new(File::open(path).map_err(CliError::io(path))?);
    sniff_sequences(reader, path)
}

/// Format-sniffing core of [`read_sequences`], shared by the file and
/// stdin paths (`label` names the source in errors).
fn sniff_sequences<R: BufRead>(mut reader: R, label: &str) -> Result<Vec<SeqRecord>, CliError> {
    let first = {
        let buf = reader.fill_buf().map_err(CliError::io(label))?;
        buf.iter().copied().find(|b| !b.is_ascii_whitespace())
    };
    match first {
        Some(b'>') => FastaReader::new(reader)
            .read_all()
            .map_err(CliError::format(label)),
        Some(b'@') => Ok(FastqReader::new(reader)
            .read_all()
            .map_err(CliError::format(label))?
            .into_iter()
            .map(FastqRecord::into_seq_record)
            .collect()),
        Some(other) => Err(CliError::Data(format!(
            "{label}: unrecognized format (starts with {:?}, expected '>' or '@')",
            other as char
        ))),
        None => Ok(Vec::new()),
    }
}

/// Write sequences as FASTA.
pub fn write_fasta(path: &str, records: &[SeqRecord]) -> Result<(), CliError> {
    let mut w = jem_seq::FastaWriter::create(Path::new(path)).map_err(CliError::format(path))?;
    w.write_all_records(records)
        .map_err(CliError::format(path))?;
    w.flush().map_err(CliError::format(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, content: &[u8]) -> String {
        let path = std::env::temp_dir().join(format!("jemcli_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn sniffs_fasta() {
        let p = tmp("a.fa", b">x\nACGT\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sniffs_fastq() {
        let p = tmp("a.fq", b"@x\nACGT\n+\nIIII\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("a.txt", b"hello world\n");
        assert!(read_sequences(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let err = read_sequences("/nonexistent/surely/absent.fa").unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        assert!(err.to_string().contains("absent.fa"));
    }

    #[test]
    fn truncated_fastq_is_a_format_error() {
        // Quality line missing entirely.
        let p = tmp("trunc1.fq", b"@x\nACGT\n+\n");
        let err = read_sequences(&p).unwrap_err();
        assert!(matches!(err, CliError::Format { .. }), "got {err:?}");
        assert!(err.to_string().contains(&p), "message must name the file");
        std::fs::remove_file(&p).ok();
        // Record cut mid-way: second record has no sequence line.
        let p = tmp("trunc2.fq", b"@x\nACGT\n+\nIIII\n@y\n");
        let err = read_sequences(&p).unwrap_err();
        assert!(matches!(err, CliError::Format { .. }), "got {err:?}");
        std::fs::remove_file(&p).ok();
        // Quality shorter than sequence.
        let p = tmp("trunc3.fq", b"@x\nACGT\n+\nII\n");
        assert!(read_sequences(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stdin_style_buffer_sniffs_both_formats() {
        // The `-` path funnels stdin bytes through the same sniffing core.
        let recs = sniff_sequences(&b">x\nACGT\n"[..], "<stdin>").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        let recs = sniff_sequences(&b"@x\nACGT\n+\nIIII\n"[..], "<stdin>").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        let err = sniff_sequences(&b"garbage"[..], "<stdin>").unwrap_err();
        assert!(
            err.to_string().contains("<stdin>"),
            "errors name the source"
        );
    }

    #[test]
    fn empty_file_is_empty() {
        let p = tmp("empty", b"  \n");
        assert!(read_sequences(&p).unwrap().is_empty());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fasta_roundtrip_via_helpers() {
        let p = tmp("rt.fa", b"");
        let recs = vec![SeqRecord::new("s1", b"ACGTACGT".to_vec())];
        write_fasta(&p, &recs).unwrap();
        assert_eq!(read_sequences(&p).unwrap(), recs);
        std::fs::remove_file(&p).ok();
    }
}
