//! Shared file I/O helpers for the CLI commands.

use jem_seq::{FastaReader, FastqReader, FastqRecord, SeqRecord};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Read sequences from FASTA or FASTQ, sniffing the format from the first
/// non-whitespace byte (`>` vs `@`).
pub fn read_sequences(path: &str) -> Result<Vec<SeqRecord>, String> {
    let mut reader = BufReader::new(
        File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?,
    );
    let first = {
        let buf = reader.fill_buf().map_err(|e| format!("cannot read {path}: {e}"))?;
        buf.iter().copied().find(|b| !b.is_ascii_whitespace())
    };
    match first {
        Some(b'>') => FastaReader::new(reader)
            .read_all()
            .map_err(|e| format!("FASTA parse error in {path}: {e}")),
        Some(b'@') => Ok(FastqReader::new(reader)
            .read_all()
            .map_err(|e| format!("FASTQ parse error in {path}: {e}"))?
            .into_iter()
            .map(FastqRecord::into_seq_record)
            .collect()),
        Some(other) => Err(format!(
            "{path}: unrecognized format (starts with {:?}, expected '>' or '@')",
            other as char
        )),
        None => Ok(Vec::new()),
    }
}

/// Write sequences as FASTA.
pub fn write_fasta(path: &str, records: &[SeqRecord]) -> Result<(), String> {
    let mut w = jem_seq::FastaWriter::create(Path::new(path))
        .map_err(|e| format!("cannot create {path}: {e}"))?;
    w.write_all_records(records).map_err(|e| format!("write error on {path}: {e}"))?;
    w.flush().map_err(|e| format!("flush error on {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, content: &[u8]) -> String {
        let path = std::env::temp_dir().join(format!("jemcli_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn sniffs_fasta() {
        let p = tmp("a.fa", b">x\nACGT\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sniffs_fastq() {
        let p = tmp("a.fq", b"@x\nACGT\n+\nIIII\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("a.txt", b"hello world\n");
        assert!(read_sequences(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn empty_file_is_empty() {
        let p = tmp("empty", b"  \n");
        assert!(read_sequences(&p).unwrap().is_empty());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fasta_roundtrip_via_helpers() {
        let p = tmp("rt.fa", b"");
        let recs = vec![SeqRecord::new("s1", b"ACGTACGT".to_vec())];
        write_fasta(&p, &recs).unwrap();
        assert_eq!(read_sequences(&p).unwrap(), recs);
        std::fs::remove_file(&p).ok();
    }
}
