//! Shared file I/O helpers for the CLI commands.

use crate::error::CliError;
use jem_seq::{FastaReader, FastqReader, FastqRecord, SeqRecord};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Read sequences from FASTA or FASTQ, sniffing the format from the first
/// non-whitespace byte (`>` vs `@`). Malformed input — including a file
/// truncated mid-record — is a [`CliError::Format`], never a panic.
///
/// The path `-` reads standard input instead, so queries can be streamed
/// into `jem map` / `jem query` from a pipe.
pub fn read_sequences(path: &str) -> Result<Vec<SeqRecord>, CliError> {
    if path == "-" {
        let mut buf = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut buf)
            .map_err(CliError::io("<stdin>"))?;
        return sniff_sequences(buf.as_slice(), "<stdin>");
    }
    let reader = BufReader::new(File::open(path).map_err(CliError::io(path))?);
    sniff_sequences(reader, path)
}

/// Format-sniffing core of [`read_sequences`], shared by the file and
/// stdin paths (`label` names the source in errors).
fn sniff_sequences<R: BufRead>(mut reader: R, label: &str) -> Result<Vec<SeqRecord>, CliError> {
    let first = {
        let buf = reader.fill_buf().map_err(CliError::io(label))?;
        buf.iter().copied().find(|b| !b.is_ascii_whitespace())
    };
    match first {
        Some(b'>') => FastaReader::new(reader)
            .read_all()
            .map_err(CliError::format(label)),
        Some(b'@') => Ok(FastqReader::new(reader)
            .read_all()
            .map_err(CliError::format(label))?
            .into_iter()
            .map(FastqRecord::into_seq_record)
            .collect()),
        Some(other) => Err(CliError::Data(format!(
            "{label}: unrecognized format (starts with {:?}, expected '>' or '@')",
            other as char
        ))),
        None => Ok(Vec::new()),
    }
}

/// A file that only appears at its destination on a clean, complete
/// write. Bytes are buffered into `<path>.tmp`; [`AtomicFile::commit`]
/// flushes, fsyncs, and atomically renames the temporary over the
/// destination. If the `AtomicFile` is dropped uncommitted — an error
/// midway, a panic, a killed process before the rename — the destination
/// is untouched and the temporary is removed, so a crash mid-write can
/// never leave a truncated index that later fails checksum decode, or a
/// half-written TSV that looks complete.
pub struct AtomicFile {
    tmp: PathBuf,
    dest: PathBuf,
    writer: Option<BufWriter<File>>,
}

impl AtomicFile {
    /// Open `<path>.tmp` for buffered writing.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<AtomicFile> {
        let dest = path.as_ref().to_path_buf();
        let tmp = PathBuf::from(format!("{}.tmp", dest.display()));
        let writer = Some(BufWriter::new(File::create(&tmp)?));
        Ok(AtomicFile { tmp, dest, writer })
    }

    /// Flush, fsync, and rename the temporary onto the destination. On
    /// any failure the temporary is removed and the destination keeps its
    /// previous content (or absence).
    pub fn commit(mut self) -> std::io::Result<()> {
        let writer = self.writer.take().expect("commit consumes the writer");
        let result = (|| {
            let file = writer.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            std::fs::rename(&self.tmp, &self.dest)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&self.tmp);
        }
        result
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.writer.as_mut().expect("not committed").write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.as_mut().expect("not committed").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() {
            // Uncommitted: abandon the partial bytes, keep the old file.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Atomically replace `path` with `bytes` (metrics snapshots and other
/// one-shot dumps).
pub fn write_file_atomic(path: &str, bytes: &[u8]) -> Result<(), CliError> {
    let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
    out.write_all(bytes).map_err(CliError::io(path))?;
    out.commit().map_err(CliError::io(path))
}

/// Write sequences as FASTA, atomically.
pub fn write_fasta(path: &str, records: &[SeqRecord]) -> Result<(), CliError> {
    let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
    {
        let mut w = jem_seq::FastaWriter::new(&mut out);
        w.write_all_records(records)
            .map_err(CliError::format(path))?;
        w.flush().map_err(CliError::format(path))?;
    }
    out.commit().map_err(CliError::io(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, content: &[u8]) -> String {
        let path = std::env::temp_dir().join(format!("jemcli_{}_{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn sniffs_fasta() {
        let p = tmp("a.fa", b">x\nACGT\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn sniffs_fastq() {
        let p = tmp("a.fq", b"@x\nACGT\n+\nIIII\n");
        let recs = read_sequences(&p).unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn rejects_garbage() {
        let p = tmp("a.txt", b"hello world\n");
        assert!(read_sequences(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn missing_file_is_io_error_with_path() {
        let err = read_sequences("/nonexistent/surely/absent.fa").unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        assert!(err.to_string().contains("absent.fa"));
    }

    #[test]
    fn truncated_fastq_is_a_format_error() {
        // Quality line missing entirely.
        let p = tmp("trunc1.fq", b"@x\nACGT\n+\n");
        let err = read_sequences(&p).unwrap_err();
        assert!(matches!(err, CliError::Format { .. }), "got {err:?}");
        assert!(err.to_string().contains(&p), "message must name the file");
        std::fs::remove_file(&p).ok();
        // Record cut mid-way: second record has no sequence line.
        let p = tmp("trunc2.fq", b"@x\nACGT\n+\nIIII\n@y\n");
        let err = read_sequences(&p).unwrap_err();
        assert!(matches!(err, CliError::Format { .. }), "got {err:?}");
        std::fs::remove_file(&p).ok();
        // Quality shorter than sequence.
        let p = tmp("trunc3.fq", b"@x\nACGT\n+\nII\n");
        assert!(read_sequences(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn stdin_style_buffer_sniffs_both_formats() {
        // The `-` path funnels stdin bytes through the same sniffing core.
        let recs = sniff_sequences(&b">x\nACGT\n"[..], "<stdin>").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        let recs = sniff_sequences(&b"@x\nACGT\n+\nIIII\n"[..], "<stdin>").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        let err = sniff_sequences(&b"garbage"[..], "<stdin>").unwrap_err();
        assert!(
            err.to_string().contains("<stdin>"),
            "errors name the source"
        );
    }

    #[test]
    fn empty_file_is_empty() {
        let p = tmp("empty", b"  \n");
        assert!(read_sequences(&p).unwrap().is_empty());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fasta_roundtrip_via_helpers() {
        let p = tmp("rt.fa", b"");
        let recs = vec![SeqRecord::new("s1", b"ACGTACGT".to_vec())];
        write_fasta(&p, &recs).unwrap();
        assert_eq!(read_sequences(&p).unwrap(), recs);
        assert!(
            !Path::new(&format!("{p}.tmp")).exists(),
            "commit must clean up the temporary"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn atomic_commit_replaces_and_cleans_up() {
        let p = tmp("atomic.out", b"old content");
        let mut out = AtomicFile::create(&p).unwrap();
        out.write_all(b"new content").unwrap();
        // Until commit, the destination still holds the old bytes.
        assert_eq!(std::fs::read(&p).unwrap(), b"old content");
        out.commit().unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"new content");
        assert!(!Path::new(&format!("{p}.tmp")).exists());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn uncommitted_atomic_file_leaves_no_trace() {
        let p = tmp("atomic.abort", b"precious");
        {
            let mut out = AtomicFile::create(&p).unwrap();
            out.write_all(b"half a wri").unwrap();
            // Dropped without commit: the error path.
        }
        assert_eq!(
            std::fs::read(&p).unwrap(),
            b"precious",
            "an aborted write must not clobber the destination"
        );
        assert!(
            !Path::new(&format!("{p}.tmp")).exists(),
            "the temporary must be removed on abort"
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn write_file_atomic_creates_fresh_files() {
        let p = format!("{}-fresh", tmp("atomic.fresh", b""));
        write_file_atomic(&p, b"{\"ok\":true}").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"{\"ok\":true}");
        std::fs::remove_file(&p).ok();
    }
}
