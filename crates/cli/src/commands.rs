//! The `jem` subcommands.

use crate::args::Args;
use crate::error::CliError;
use crate::io::{read_sequences, write_fasta, write_file_atomic, AtomicFile};
use jem_anchor::{write_paf, AnchorPipeline, PafRow, RefineScratch, RefineStats, Refiner};
use jem_core::{
    load_index_path, load_index_path_opts, make_segments, map_reads_parallel_with,
    run_distributed_resilient, save_index, save_index_v3, write_mappings_tsv,
    write_mappings_tsv_named, Integrity, JemMapper, MapperConfig, Mapping, ReadEnd,
    ResilienceOptions,
};
use jem_eval::{parse_paf, Benchmark, MappingMetrics, PafAccuracy};
use jem_psim::{CostModel, ExecMode, FaultPlan};
use jem_scaffold::{scaffold, AssemblyStats, ScaffoldParams};
use jem_seq::{FastqRecord, FastqWriter, SeqRecord};
use jem_sim::{
    contig_records, fragment_contigs, read_records, simulate_hifi, simulate_illumina,
    ContigProfile, Genome, GenomeProfile, HifiProfile, IlluminaProfile, SegmentEnd,
};
use jem_sketch::{JemSketch, Minimizer, SketchScheme, SketchScratch};
use std::fs::File;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::time::Instant;

/// Arm the process-global metrics recorder when `--metrics PATH` is given.
/// Must run before any pipeline work so every stage reports into it.
/// Returns the output path plus the typed handle to snapshot at the end.
fn metrics_recorder(
    args: &Args,
) -> Result<Option<(String, &'static jem_obs::MetricsRecorder)>, CliError> {
    match args.get("metrics") {
        None => Ok(None),
        Some(path) => {
            let rec = jem_obs::install_default().ok_or_else(|| {
                CliError::Usage("--metrics: a metrics recorder is already installed".into())
            })?;
            Ok(Some((path.to_string(), rec)))
        }
    }
}

/// Dump the recorder's snapshot as JSON (schema in DESIGN.md §9) to `path`.
fn write_metrics(path: &str, rec: &jem_obs::MetricsRecorder) -> Result<(), CliError> {
    write_file_atomic(path, rec.snapshot().to_json().as_bytes())?;
    eprintln!("metrics snapshot written to {path}");
    Ok(())
}

/// Parse `--threads N` (None when absent). Also exports `RAYON_NUM_THREADS`
/// so the lazily-initialized global rayon pool is sized to match; the value
/// is additionally passed to [`map_reads_parallel_with`], which bounds the
/// chunk count even if the pool was already built.
fn thread_count(args: &Args) -> Result<Option<usize>, CliError> {
    if args.has("threads") {
        return Err(CliError::Usage(
            "--threads needs a value (e.g. --threads 4)".into(),
        ));
    }
    match args.get("threads") {
        None => Ok(None),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| CliError::Usage(format!("cannot parse --threads value {v:?}")))?;
            if n == 0 {
                return Err(CliError::Usage("--threads must be at least 1".into()));
            }
            std::env::set_var("RAYON_NUM_THREADS", n.to_string());
            Ok(Some(n))
        }
    }
}

/// Parse `--key N` with a default, rejecting zero — the shared validation
/// for every count-like knob (`--shards`, `--workers`, `--queue`,
/// `--batch`, `--chunk`): a zero would panic or deadlock deep inside the
/// service, so it is refused at the CLI boundary as a usage error.
fn positive_count(args: &Args, key: &str, default: usize) -> Result<usize, CliError> {
    let n: usize = args.get_or(key, default)?;
    if n == 0 {
        return Err(CliError::Usage(format!("--{key} must be at least 1")));
    }
    Ok(n)
}

fn mapper_config(args: &Args) -> Result<(MapperConfig, SketchScheme), CliError> {
    let d = MapperConfig::default();
    let config = MapperConfig {
        k: args.get_or("k", d.k)?,
        w: args.get_or("w", d.w)?,
        trials: args.get_or("trials", d.trials)?,
        ell: args.get_or("ell", d.ell)?,
        seed: args.get_or("seed", d.seed)?,
    };
    config
        .jem_params()
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    let scheme = match args.get("syncmer") {
        None => SketchScheme::Minimizer { w: config.w },
        Some(v) => {
            let s: usize = v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad --syncmer value {v:?}")))?;
            SketchScheme::ClosedSyncmer { s }
        }
    };
    scheme
        .validate(config.k)
        .map_err(|e| CliError::Usage(format!("invalid sketch scheme: {e}")))?;
    Ok((config, scheme))
}

/// `jem index (--subjects contigs.fa | --upgrade old.jem) --out index.jem
///  [--format v4|v3] [--k --w --trials --ell --seed] [--metrics FILE]`
///
/// `--upgrade` rewrites an existing artifact (v3 or v4) in the requested
/// format — the migration path from legacy JEMIDX3 files to the
/// mmap-ready v4 layout. Mapping output is byte-identical either way.
pub fn cmd_index(args: &Args) -> Result<(), CliError> {
    let metrics = metrics_recorder(args)?;
    let out_path = args.req("out")?;
    let format = args.get("format").unwrap_or("v4");
    if !matches!(format, "v3" | "v4") {
        return Err(CliError::Usage(format!(
            "--format must be v3 or v4, got {format:?}"
        )));
    }
    let mapper = match (args.get("upgrade"), args.get("subjects")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--upgrade and --subjects are mutually exclusive".into(),
            ))
        }
        (Some(old), None) => {
            let mapper = load_index_path(Path::new(old)).map_err(CliError::format(old))?;
            eprintln!(
                "upgrading {old}: {} subjects, {} sketch entries → {format}",
                mapper.n_subjects(),
                mapper.table().entry_count()
            );
            mapper
        }
        (None, _) => {
            let subjects = read_sequences(args.req("subjects")?)?;
            let (config, scheme) = mapper_config(args)?;
            eprintln!(
                "indexing {} subjects (k={}, T={}, ell={}, scheme={scheme:?})",
                subjects.len(),
                config.k,
                config.trials,
                config.ell
            );
            JemMapper::build_with_scheme(&subjects, &config, scheme)
        }
    };
    // Atomic persist: the index appears at `--out` only after a complete,
    // fsynced write, so a crash here can never leave a truncated artifact
    // that later fails checksum decode in `jem serve`/`jem map`.
    let mut out = AtomicFile::create(out_path).map_err(CliError::io(out_path))?;
    match format {
        "v3" => {
            eprintln!(
                "WARNING: --format v3 is deprecated; v4 is the default and the only \
                 mmap-servable layout. v3 artifacts stay loadable, and `jem index \
                 --upgrade` rewrites them as v4."
            );
            save_index_v3(&mut out, &mapper).map_err(CliError::format(out_path))?
        }
        _ => save_index(&mut out, &mapper).map_err(CliError::format(out_path))?,
    }
    out.commit().map_err(CliError::io(out_path))?;
    eprintln!(
        "wrote {out_path} ({format}): {} sketch entries over {} trials",
        mapper.table().entry_count(),
        mapper.config().trials
    );
    if let Some((path, rec)) = metrics {
        write_metrics(&path, rec)?;
    }
    Ok(())
}

/// Load a mapper from `--index` (memory-mapped when the artifact is
/// JEMIDX v4) or build one from `--subjects`.
fn load_or_build_mapper(args: &Args) -> Result<JemMapper, CliError> {
    match (args.get("index"), args.get("subjects")) {
        (Some(path), _) => load_index_path(Path::new(path)).map_err(CliError::format(path)),
        (None, Some(path)) => {
            let (config, scheme) = mapper_config(args)?;
            Ok(JemMapper::build_with_scheme(
                &read_sequences(path)?,
                &config,
                scheme,
            ))
        }
        (None, None) => Err(CliError::Usage("need --index or --subjects".into())),
    }
}

/// Build a stage-2 [`Refiner`] over `subjects`, first checking the contig
/// set actually belongs to `mapper`'s index — coordinate output against
/// the wrong FASTA would silently name the wrong contigs.
fn build_refiner(mapper: &JemMapper, subjects: Vec<SeqRecord>) -> Result<Refiner, CliError> {
    if subjects.len() != mapper.n_subjects() {
        return Err(CliError::Data(format!(
            "--subjects holds {} sequences but the index names {} — not the indexed contig set",
            subjects.len(),
            mapper.n_subjects()
        )));
    }
    for (i, rec) in subjects.iter().enumerate() {
        let expect = mapper.subject_name(i as u32);
        if rec.id != expect {
            return Err(CliError::Data(format!(
                "--subjects disagrees with the index at subject {i}: {:?} vs indexed {expect:?}",
                rec.id
            )));
        }
    }
    Ok(Refiner::new(mapper.scheme(), mapper.config().k, subjects))
}

/// `jem map (--index index.jem | --subjects contigs.fa) --queries reads.fq
///  [--out out.tsv] [--paf out.paf] [--parallel] [--threads N]
///  [--metrics FILE] [config flags]`
///
/// `--paf FILE` additionally runs stage-2 anchor refinement (chained
/// coordinates, strand, MAPQ) and writes standard PAF records. It needs
/// the contig sequences, so `--subjects` is required alongside it even
/// when the stage-1 index comes from `--index`. The default TSV output is
/// byte-identical with or without `--paf` — stage 2 is strictly additive.
pub fn cmd_map(args: &Args) -> Result<(), CliError> {
    let metrics = metrics_recorder(args)?;
    let threads = thread_count(args)?;
    let mapper = load_or_build_mapper(args)?;
    let reads = read_sequences(args.req("queries")?)?;
    eprintln!(
        "mapping {} reads against {} subjects",
        reads.len(),
        mapper.n_subjects()
    );
    // `--threads N` implies the parallel driver (with its width bounded).
    let parallel = args.has("parallel") || threads.is_some();
    let (mappings, paf) = match args.get("paf") {
        None => {
            let mappings = if parallel {
                map_reads_parallel_with(&mapper, &reads, threads)
            } else {
                mapper.map_reads(&reads)
            };
            (mappings, None)
        }
        Some(paf_path) => {
            let subjects_path = args.get("subjects").ok_or_else(|| {
                CliError::Usage(
                    "--paf needs --subjects: stage-2 refinement re-sketches the contig sequences"
                        .into(),
                )
            })?;
            let refiner = build_refiner(&mapper, read_sequences(subjects_path)?)?;
            let pipeline = AnchorPipeline::new(&mapper, &refiner);
            let out = if parallel {
                pipeline.run_parallel(&reads, threads)
            } else {
                pipeline.run(&reads)
            };
            (out.mappings, Some((paf_path, out.paf)))
        }
    };
    eprintln!("{} end segments mapped", mappings.len());
    if let Some((paf_path, rows)) = &paf {
        let mut out = AtomicFile::create(paf_path).map_err(CliError::io(paf_path))?;
        write_paf(&mut out, rows, &reads, mapper.subject_names())
            .map_err(CliError::io(paf_path))?;
        out.commit().map_err(CliError::io(paf_path))?;
        eprintln!(
            "{} segments refined to coordinates → {paf_path}",
            rows.len()
        );
    }
    match args.get("out") {
        Some(path) => {
            let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
            write_mappings_tsv(&mut out, &mappings, &reads, &mapper)
                .map_err(CliError::format(path))?;
            out.commit().map_err(CliError::io(path))?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_mappings_tsv(&mut lock, &mappings, &reads, &mapper)
                .map_err(CliError::format("<stdout>"))?;
        }
    }
    if let Some((path, rec)) = metrics {
        write_metrics(&path, rec)?;
    }
    Ok(())
}

/// `jem distributed --subjects contigs.fa --queries reads.fq [--ranks 8]
///  [--fault-plan SPEC] [--retries 3] [--checkpoint FILE] [--threads]
///  [--out out.tsv] [--metrics FILE] [config flags]` — run the S1–S4
///  pipeline on simulated ranks, optionally under an injected fault plan,
///  and report the simulated makespan plus recovery counters.
pub fn cmd_distributed(args: &Args) -> Result<(), CliError> {
    let metrics = metrics_recorder(args)?;
    let subjects = read_sequences(args.req("subjects")?)?;
    let reads = read_sequences(args.req("queries")?)?;
    let (config, scheme) = mapper_config(args)?;
    if !matches!(scheme, SketchScheme::Minimizer { .. }) {
        return Err(CliError::Usage(
            "the distributed driver supports only the minimizer scheme (drop --syncmer)".into(),
        ));
    }
    let p: usize = args.get_or("ranks", 8)?;
    if p == 0 {
        return Err(CliError::Usage("--ranks must be at least 1".into()));
    }
    let plan = match args.get("fault-plan") {
        None => FaultPlan::none(),
        Some(spec) => {
            FaultPlan::parse(spec).map_err(|e| CliError::Usage(format!("bad --fault-plan: {e}")))?
        }
    }
    .with_corruption_seed(args.get_or("corruption-seed", 0u64)?);
    let opts = ResilienceOptions {
        plan,
        max_retries: args.get_or("retries", 3)?,
        checkpoint: args.get("checkpoint").map(std::path::PathBuf::from),
    };
    // `--threads` is a mode switch here (ranks are simulated): bare it
    // selects the threaded executor; with a value it additionally sizes
    // the pool, so the value is validated like everywhere else.
    let mode = if args.has("threads") || args.get("threads").is_some() {
        if let Some(v) = args.get("threads") {
            let n: usize = v
                .parse()
                .map_err(|_| CliError::Usage(format!("cannot parse --threads value {v:?}")))?;
            if n == 0 {
                return Err(CliError::Usage("--threads must be at least 1".into()));
            }
            std::env::set_var("RAYON_NUM_THREADS", n.to_string());
        }
        ExecMode::Threaded
    } else {
        ExecMode::Sequential
    };
    eprintln!(
        "distributed run: {} subjects, {} reads on {p} simulated ranks (plan: {})",
        subjects.len(),
        reads.len(),
        opts.plan
    );
    let outcome = run_distributed_resilient(
        &subjects,
        &reads,
        &config,
        p,
        CostModel::ethernet_10g(),
        mode,
        &opts,
    )?;

    let b = outcome.breakdown();
    eprintln!(
        "simulated makespan: {:.6} s",
        outcome.report.makespan_secs()
    );
    eprintln!(
        "  input load {:.6}  subject sketch {:.6}  gather {:.6}  table build {:.6}  query map {:.6}",
        b.input_load, b.subject_sketch, b.sketch_gather, b.table_build, b.query_map
    );
    let fs = outcome.report.fault_stats;
    if fs.any() {
        eprintln!("faults/recovery: {fs}");
    }
    eprintln!(
        "{} segments mapped to {} mappings",
        outcome.n_segments,
        outcome.mappings.len()
    );

    if let Some(path) = args.get("out") {
        let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
        let write = |out: &mut dyn Write| -> std::io::Result<()> {
            writeln!(out, "#query\tsubject\thits\ttrials")?;
            for m in &outcome.mappings {
                writeln!(
                    out,
                    "{}\t{}\t{}\t{}",
                    m.query_key(&reads),
                    subjects[m.subject as usize].id,
                    m.hits,
                    config.trials
                )?;
            }
            Ok(())
        };
        write(&mut out).map_err(CliError::io(path))?;
        out.commit().map_err(CliError::io(path))?;
    }
    if let Some((path, rec)) = metrics {
        write_metrics(&path, rec)?;
    }
    Ok(())
}

/// `jem simulate --out DIR [--genome-len N] [--coverage C] [--profile
///  bacterial|eukaryotic] [--seed S]` — writes genome.fa, contigs.fa,
///  reads.fq and truth.tsv (the Fig. 4 coordinate inputs).
pub fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let dir = args.req("out")?;
    std::fs::create_dir_all(dir).map_err(CliError::io(dir))?;
    let genome_len: usize = args.get_or("genome-len", 500_000)?;
    let coverage: f64 = args.get_or("coverage", 10.0)?;
    let seed: u64 = args.get_or("seed", 42)?;
    let ell: usize = args.get_or("ell", 1000)?;
    let profile = args.get("profile").unwrap_or("eukaryotic");
    let (gp, cp) = match profile {
        "bacterial" => (
            GenomeProfile::bacterial(genome_len),
            ContigProfile::bacterial(),
        ),
        "eukaryotic" => (
            GenomeProfile::eukaryotic(genome_len),
            ContigProfile::eukaryotic(),
        ),
        other => {
            return Err(CliError::Usage(format!(
                "unknown --profile {other:?} (bacterial|eukaryotic)"
            )))
        }
    };
    let genome = Genome::from_profile("genome", &gp, seed);
    let contigs = fragment_contigs(&genome, &cp, seed + 1);
    let reads = simulate_hifi(
        &genome,
        &HifiProfile {
            coverage,
            ..Default::default()
        },
        seed + 2,
    );

    let join = |name: &str| Path::new(dir).join(name).to_string_lossy().into_owned();
    write_fasta(
        &join("genome.fa"),
        &[SeqRecord::new("genome", genome.seq.clone())],
    )?;
    write_fasta(&join("contigs.fa"), &contig_records(&contigs))?;
    {
        let path = join("reads.fq");
        let mut out = AtomicFile::create(&path).map_err(CliError::io(&path))?;
        {
            let mut w = FastqWriter::new(&mut out);
            for r in &reads {
                w.write_record(&FastqRecord::with_uniform_quality(
                    r.id.clone(),
                    r.seq.clone(),
                    b'K',
                ))
                .map_err(CliError::format(&path))?;
            }
            w.flush().map_err(CliError::format(&path))?;
        }
        out.commit().map_err(CliError::io(&path))?;
    }
    {
        let path = join("truth.tsv");
        let mut out = AtomicFile::create(&path).map_err(CliError::io(&path))?;
        let write = |w: &mut dyn Write| -> std::io::Result<()> {
            writeln!(w, "#kind\tkey\tstart\tend")?;
            for c in &contigs {
                writeln!(w, "S\t{}\t{}\t{}", c.id, c.ref_start, c.ref_end)?;
            }
            for r in &reads {
                let (s, e) = r.segment_ref_range(SegmentEnd::Prefix, ell);
                writeln!(w, "Q\t{}/prefix\t{s}\t{e}", r.id)?;
                if r.len() > ell {
                    let (s, e) = r.segment_ref_range(SegmentEnd::Suffix, ell);
                    writeln!(w, "Q\t{}/suffix\t{s}\t{e}", r.id)?;
                }
            }
            Ok(())
        };
        write(&mut out).map_err(CliError::io(&path))?;
        out.commit().map_err(CliError::io(&path))?;
    }
    eprintln!(
        "wrote {dir}/: genome ({} bp), {} contigs, {} reads, truth.tsv",
        genome.len(),
        contigs.len(),
        reads.len()
    );
    Ok(())
}

/// `jem assemble --reads short.fq --out contigs.fa [--k --min-abundance
///  --min-len --tip-len]` — plus `--simulate-from genome.fa --coverage C`
///  to generate the short reads on the fly.
pub fn cmd_assemble(args: &Args) -> Result<(), CliError> {
    let read_seqs: Vec<Vec<u8>> = match (args.get("reads"), args.get("simulate-from")) {
        (Some(path), _) => read_sequences(path)?.into_iter().map(|r| r.seq).collect(),
        (None, Some(genome_path)) => {
            let genome_recs = read_sequences(genome_path)?;
            let rec = genome_recs
                .first()
                .ok_or_else(|| CliError::Data(format!("{genome_path}: empty genome file")))?;
            let genome = Genome {
                name: rec.id.clone(),
                seq: rec.seq.clone(),
                repeat_regions: Vec::new(),
            };
            let profile = IlluminaProfile {
                coverage: args.get_or("coverage", 30.0)?,
                ..Default::default()
            };
            simulate_illumina(&genome, &profile, args.get_or("seed", 42)?)
                .into_iter()
                .map(|r| r.seq)
                .collect()
        }
        (None, None) => return Err(CliError::Usage("need --reads or --simulate-from".into())),
    };
    let params = jem_dbg::AssemblyParams {
        k: args.get_or("k", 31)?,
        min_abundance: args.get_or("min-abundance", 3)?,
        min_contig_len: args.get_or("min-len", 500)?,
        tip_len: args.get_or("tip-len", 93)?,
    };
    eprintln!(
        "assembling {} reads (k={}, min_abundance={})",
        read_seqs.len(),
        params.k,
        params.min_abundance
    );
    let contigs = jem_dbg::assemble(&read_seqs, &params);
    let stats = AssemblyStats::from_lengths(contigs.iter().map(|c| c.seq.len()));
    eprintln!("{stats}");
    write_fasta(args.req("out")?, &contigs)
}

/// `jem contained (--index FILE | --subjects FILE) --queries reads.fq
///  [--stride ell/2] [--out FILE]` — whole-read tiled mapping: reports every
///  contig a read touches, including contigs contained in its interior
///  (invisible to end-segment mapping).
pub fn cmd_contained(args: &Args) -> Result<(), CliError> {
    let mapper = load_or_build_mapper(args)?;
    let reads = read_sequences(args.req("queries")?)?;
    let stride: usize = args.get_or("stride", mapper.config().ell / 2)?;
    if stride == 0 {
        return Err(CliError::Usage("--stride must be positive".into()));
    }
    let mut rows = Vec::new();
    for read in &reads {
        for h in mapper.contained_hits(&read.seq, stride) {
            rows.push(format!(
                "{}\t{}\t{}\t{}\t{}\t{}",
                read.id,
                mapper.subject_name(h.subject),
                h.first_offset,
                h.last_offset,
                h.windows,
                h.best_hits
            ));
        }
    }
    eprintln!(
        "{} (read, contig) incidences over {} reads",
        rows.len(),
        reads.len()
    );
    let header = "#read\tsubject\tfirst_offset\tlast_offset\twindows\tbest_hits";
    match args.get("out") {
        Some(path) => {
            let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
            let write = |out: &mut dyn Write| -> std::io::Result<()> {
                writeln!(out, "{header}")?;
                for r in &rows {
                    writeln!(out, "{r}")?;
                }
                Ok(())
            };
            write(&mut out).map_err(CliError::io(path))?;
            out.commit().map_err(CliError::io(path))?;
        }
        None => {
            println!("{header}");
            for r in &rows {
                println!("{r}");
            }
        }
    }
    Ok(())
}

/// Parse a mapping TSV (query, subject, hits, trials) into pairs.
fn read_mapping_pairs(path: &str) -> Result<Vec<(String, String, u32)>, CliError> {
    let file = File::open(path).map_err(CliError::io(path))?;
    let mut out = Vec::new();
    for (no, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(CliError::io(path))?;
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split('\t');
        let q = fields
            .next()
            .ok_or_else(|| CliError::Data(format!("{path}:{}: missing query", no + 1)))?;
        let s = fields
            .next()
            .ok_or_else(|| CliError::Data(format!("{path}:{}: missing subject", no + 1)))?;
        let hits: u32 = fields
            .next()
            .unwrap_or("1")
            .parse()
            .map_err(|_| CliError::Data(format!("{path}:{}: bad hits field", no + 1)))?;
        out.push((q.to_string(), s.to_string(), hits));
    }
    Ok(out)
}

/// `jem eval (--mappings out.tsv | --paf out.paf | both) --truth truth.tsv
///  [--k 16] [--tolerance 100]`
///
/// `--mappings` scores best-contig TSV output with the paper's Fig. 4
/// precision/recall. `--paf` scores stage-2 coordinate output: a record is
/// correct when the contig is a true subject *and* the placement projects
/// to within `--tolerance` bases of the truth start (strand-agnostic).
pub fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let truth_path = args.req("truth")?;
    let k: u64 = args.get_or("k", 16)?;
    let mut queries = Vec::new();
    let mut subjects = Vec::new();
    let file = File::open(truth_path).map_err(CliError::io(truth_path))?;
    for (no, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(CliError::io(truth_path))?;
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 4 {
            return Err(CliError::Data(format!(
                "{truth_path}:{}: expected 4 fields",
                no + 1
            )));
        }
        let start: u64 = fields[2]
            .parse()
            .map_err(|_| CliError::Data(format!("{truth_path}:{}: bad start", no + 1)))?;
        let end: u64 = fields[3]
            .parse()
            .map_err(|_| CliError::Data(format!("{truth_path}:{}: bad end", no + 1)))?;
        match fields[0] {
            "Q" => queries.push((fields[1].to_string(), (start, end))),
            "S" => subjects.push((fields[1].to_string(), (start, end))),
            other => {
                return Err(CliError::Data(format!(
                    "{truth_path}:{}: unknown kind {other:?}",
                    no + 1
                )))
            }
        }
    }
    if args.get("mappings").is_none() && args.get("paf").is_none() {
        return Err(CliError::Usage("need --mappings or --paf (or both)".into()));
    }
    if let Some(mappings_path) = args.get("mappings") {
        let bench = Benchmark::from_coordinates(&queries, &subjects, k);
        let pairs: Vec<(String, String)> = read_mapping_pairs(mappings_path)?
            .into_iter()
            .map(|(q, s, _)| (q, s))
            .collect();
        let m = MappingMetrics::classify(&pairs, &bench);
        println!(
            "precision\t{:.4}\nrecall\t{:.4}\nf1\t{:.4}\ntp\t{}\nfp\t{}\nfn\t{}",
            m.precision(),
            m.recall(),
            m.f1(),
            m.tp,
            m.fp,
            m.fn_
        );
    }
    if let Some(paf_path) = args.get("paf") {
        let tolerance: u64 = args.get_or("tolerance", 100)?;
        let text = std::fs::read_to_string(paf_path).map_err(CliError::io(paf_path))?;
        let records = parse_paf(&text).map_err(|e| CliError::Data(format!("{paf_path}: {e}")))?;
        let acc = PafAccuracy::classify(&records, &queries, &subjects, k, tolerance);
        println!(
            "paf_accuracy\t{:.4}\npaf_recall\t{:.4}\npaf_mean_offset\t{:.2}\n\
             paf_records\t{}\npaf_correct\t{}\npaf_wrong_contig\t{}\npaf_wrong_position\t{}\n\
             paf_unknown_query\t{}\npaf_missed\t{}",
            acc.accuracy(),
            acc.recall(),
            acc.mean_offset(),
            acc.records,
            acc.correct,
            acc.wrong_contig,
            acc.wrong_position,
            acc.unknown_query,
            acc.missed
        );
    }
    Ok(())
}

/// `jem scaffold --subjects contigs.fa --mappings out.tsv --out scaffolds.fa
///  [--min-support 2] [--gap 100]`
pub fn cmd_scaffold(args: &Args) -> Result<(), CliError> {
    let contigs = read_sequences(args.req("subjects")?)?;
    let name_to_id: std::collections::HashMap<&str, u32> = contigs
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id.as_str(), i as u32))
        .collect();
    let raw = read_mapping_pairs(args.req("mappings")?)?;
    let mut read_ids: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut mappings = Vec::new();
    for (q, s, hits) in &raw {
        let (read, end) = q
            .rsplit_once('/')
            .ok_or_else(|| CliError::Data(format!("query key {q:?} lacks /prefix or /suffix")))?;
        let end = match end {
            "prefix" => ReadEnd::Prefix,
            "suffix" => ReadEnd::Suffix,
            other => {
                return Err(CliError::Data(format!(
                    "unknown read end {other:?} in {q:?}"
                )))
            }
        };
        let next = read_ids.len() as u32;
        let read_idx = *read_ids.entry(read.to_string()).or_insert(next);
        let subject = *name_to_id
            .get(s.as_str())
            .ok_or_else(|| CliError::Data(format!("mapping references unknown contig {s:?}")))?;
        mappings.push(Mapping {
            read_idx,
            end,
            subject,
            hits: *hits,
        });
    }
    let params = ScaffoldParams {
        min_support: args.get_or("min-support", 2)?,
        gap_n: args.get_or("gap", 100)?,
    };
    let scaffolds = scaffold(&mappings, &contigs, &params);
    let before = AssemblyStats::from_lengths(contigs.iter().map(|c| c.seq.len()));
    let after = AssemblyStats::from_lengths(scaffolds.iter().map(|s| s.seq.len()));
    eprintln!("contigs:   {before}");
    eprintln!("scaffolds: {after}");
    write_fasta(args.req("out")?, &scaffolds)
}

/// Wall-clock a closure `iters` times and keep the best (smallest) run in
/// nanoseconds — the standard noise-rejection scheme for a std-only bench.
fn best_of_ns(iters: usize, mut f: impl FnMut()) -> u64 {
    (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .min()
        .expect("at least one iteration")
}

/// Input bases per second at the best observed wall-clock.
fn bases_per_sec(bases: usize, ns: u64) -> u64 {
    ((bases as u128 * 1_000_000_000) / u128::from(ns.max(1))) as u64
}

/// `jem bench <stage>` — std-only micro-benchmarks over a seeded simulated
/// dataset. The only stage today is `sketch`; the measured numbers land in
/// a JSON trajectory file (default `BENCH_sketch.json`) so kernel changes
/// are tracked against a committed baseline instead of folklore.
pub fn cmd_bench(stage: Option<&str>, args: &Args) -> Result<(), CliError> {
    match stage {
        Some("sketch") => bench_sketch(args),
        Some(other) => Err(CliError::Usage(format!(
            "unknown bench stage {other:?} (try `jem bench sketch`)"
        ))),
        None => Err(CliError::Usage(
            "jem bench needs a stage (try `jem bench sketch`)".into(),
        )),
    }
}

/// `jem bench sketch [--out BENCH_sketch.json] [--genome-len 2000000]
///  [--coverage 2] [--iters 3] [config flags as for index]` — time the four
///  layers of the sketching hot path on a seeded simulated contig set:
///  block 2-bit encoding, position-list extraction (minimizers), T-trial
///  sketch selection, and the end-to-end segment mapping loop. Each stage
///  runs through the steady-state scratch-reuse path the production
///  pipeline takes. Best-of-`--iters` wall clocks, reported as a bases/sec
///  table on stderr, plus the `sketch.*` jem-obs counters for the same run.
fn bench_sketch(args: &Args) -> Result<(), CliError> {
    let out_path = args.get("out").unwrap_or("BENCH_sketch.json");
    let genome_len: usize = args.get_or("genome-len", 2_000_000)?;
    let coverage: f64 = args.get_or("coverage", 2.0)?;
    let iters = positive_count(args, "iters", 3)?;
    let (config, scheme) = mapper_config(args)?;
    // Arm the recorder unconditionally: the counters are part of the report.
    let rec = jem_obs::install_default();

    // Deterministic dataset: same seed → same genome, contigs and reads,
    // so two checkouts produce comparable throughput on the same machine.
    let genome = Genome::random(genome_len, 0.5, config.seed);
    let contigs = contig_records(&fragment_contigs(
        &genome,
        &ContigProfile {
            error_rate: 0.0,
            ..ContigProfile::small_genome()
        },
        config.seed + 1,
    ));
    let reads = read_records(&simulate_hifi(
        &genome,
        &HifiProfile {
            coverage,
            ..Default::default()
        },
        config.seed + 2,
    ));
    let subject_bases: usize = contigs.iter().map(|c| c.seq.len()).sum();
    let query_bases: usize = reads.iter().map(|r| r.seq.len()).sum();
    eprintln!(
        "bench sketch: {} contigs ({subject_bases} bases), {} reads ({query_bases} bases), \
         k={} T={} ell={} iters={iters}",
        contigs.len(),
        reads.len(),
        config.k,
        config.trials,
        config.ell
    );

    // Stage 0 — block 2-bit encoding over every contig (the front half of
    // minimizer extraction, measured on its own so encoder changes are
    // visible instead of folded into the winnowing number).
    let mut encoder = jem_seq::BlockEncoded::default();
    let encode_ns = best_of_ns(iters, || {
        for c in contigs.iter() {
            encoder.encode_into(&c.seq);
        }
    });

    // Stage 1 — position-list extraction over every contig, through the
    // same scratch-reuse path the index builder and mapping loops take.
    let mut lists: Vec<Vec<Minimizer>> = vec![Vec::new(); contigs.len()];
    let mut winnow = jem_sketch::WinnowScratch::default();
    let minimizers_ns = best_of_ns(iters, || {
        for (c, list) in contigs.iter().zip(lists.iter_mut()) {
            scheme.extract_into(&c.seq, config.k, &mut winnow, list);
        }
    });
    let n_positions: usize = lists.iter().map(Vec::len).sum();

    // Stage 2 — T-trial sketch selection over the precomputed lists,
    // through the steady-state reuse path every production loop takes (one
    // scratch and one output sketch carried across all subjects).
    let family = config.hash_family();
    let mut sketch_entries = 0usize;
    let mut scratch = SketchScratch::new();
    let mut sketch = JemSketch::default();
    let select_ns = best_of_ns(iters, || {
        sketch_entries = 0;
        for list in &lists {
            jem_sketch::sketch_minimizer_list_into(
                list,
                config.ell,
                &family,
                &mut scratch,
                &mut sketch,
            );
            sketch_entries += sketch.total_entries();
        }
    });

    // Stage 3 — end-to-end segment mapping against a built index.
    let mapper = JemMapper::build_with_scheme(&contigs, &config, scheme);
    let segments = make_segments(&reads, config.ell);
    let mut n_mapped = 0usize;
    let map_ns = best_of_ns(iters, || {
        n_mapped = mapper.map_segments(&segments).len();
    });

    let counters: Vec<(String, u64)> = match rec {
        Some(r) => r
            .snapshot()
            .counters
            .into_iter()
            .filter(|(k, _)| k.starts_with("sketch."))
            .collect(),
        None => Vec::new(),
    };

    let mut json = String::new();
    json.push_str("{\n  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"config\": {{\"k\": {}, \"w\": {}, \"trials\": {}, \"ell\": {}, \"seed\": {}}},\n",
        config.k, config.w, config.trials, config.ell, config.seed
    ));
    json.push_str(&format!(
        "  \"dataset\": {{\"genome_len\": {genome_len}, \"subjects\": {}, \"subject_bases\": {subject_bases}, \
         \"reads\": {}, \"query_bases\": {query_bases}, \"segments\": {}, \"positions\": {n_positions}}},\n",
        contigs.len(),
        reads.len(),
        segments.len()
    ));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str("  \"stages\": {\n");
    json.push_str(&format!(
        "    \"encode\": {{\"ns\": {encode_ns}, \"bases_per_sec\": {}}},\n",
        bases_per_sec(subject_bases, encode_ns)
    ));
    json.push_str(&format!(
        "    \"minimizers\": {{\"ns\": {minimizers_ns}, \"bases_per_sec\": {}}},\n",
        bases_per_sec(subject_bases, minimizers_ns)
    ));
    json.push_str(&format!(
        "    \"select\": {{\"ns\": {select_ns}, \"bases_per_sec\": {}, \"sketch_entries\": {sketch_entries}}},\n",
        bases_per_sec(subject_bases, select_ns)
    ));
    json.push_str(&format!(
        "    \"map\": {{\"ns\": {map_ns}, \"bases_per_sec\": {}, \"mapped\": {n_mapped}}}\n",
        bases_per_sec(query_bases, map_ns)
    ));
    json.push_str("  },\n  \"counters\": {");
    for (i, (k, v)) in counters.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("\n    \"{k}\": {v}"));
    }
    json.push_str("\n  }\n}\n");

    let mut out = AtomicFile::create(out_path).map_err(CliError::io(out_path))?;
    out.write_all(json.as_bytes())
        .map_err(CliError::io(out_path))?;
    out.commit().map_err(CliError::io(out_path))?;
    eprintln!("{:<12} {:>14} {:>16}", "stage", "best ns", "bases/s");
    for (stage, bases, ns) in [
        ("encode", subject_bases, encode_ns),
        ("minimizers", subject_bases, minimizers_ns),
        ("select", subject_bases, select_ns),
        ("map", query_bases, map_ns),
    ] {
        eprintln!("{stage:<12} {ns:>14} {:>16}", bases_per_sec(bases, ns));
    }
    eprintln!("bench report written to {out_path}");
    Ok(())
}

/// Map a serving-layer failure onto the CLI error taxonomy. Quota
/// refusals keep their type (and retry hint) so the process exits with
/// `EX_TEMPFAIL` instead of a generic failure.
fn serve_err(e: jem_serve::ServeError) -> CliError {
    match e {
        jem_serve::ServeError::Throttled { retry_after } => CliError::Throttled { retry_after },
        other => CliError::Data(format!("serve: {other}")),
    }
}

/// Parse the `--quota-rate`/`--quota-burst` pair shared by `jem serve`
/// and `jem route` into a validated [`jem_serve::QuotaConfig`].
fn quota_config(args: &Args) -> Result<jem_serve::QuotaConfig, CliError> {
    let quota = jem_serve::QuotaConfig {
        rate: args.get_or("quota-rate", 0.0f64)?,
        burst: args.get_or("quota-burst", 0.0f64)?,
    };
    quota
        .validate()
        .map_err(|e| CliError::Usage(format!("--quota-rate/--quota-burst: {e}")))?;
    Ok(quota)
}

/// Parse a `LO-HI` half-open slot range (for `jem serve --slots`).
fn parse_slot_range(spec: &str, n_slots: usize) -> Result<std::ops::Range<usize>, CliError> {
    let bad = || {
        CliError::Usage(format!(
            "--slots must be LO-HI with 0 <= LO < HI <= --shards ({n_slots}), got {spec:?}"
        ))
    };
    let (lo, hi) = spec.split_once('-').ok_or_else(bad)?;
    let lo: usize = lo.trim().parse().map_err(|_| bad())?;
    let hi: usize = hi.trim().parse().map_err(|_| bad())?;
    if lo >= hi || hi > n_slots {
        return Err(bad());
    }
    Ok(lo..hi)
}

/// `jem serve --index index.jem [--addr 127.0.0.1:7878] [--shards 4]
///  [--slots LO-HI] [--workers 4] [--queue 64] [--batch 16] [--prefault]
///  [--quota-rate TOKENS/S [--quota-burst N]] [--max-conns 256]
///  [--max-inflight 32] [--idle-timeout-ms 2000] [--metrics FILE]
///  [--straggle-ms 0] [--panic-every 0]` — load a persisted index into a
///  shard-partitioned resident table and serve mapping requests until a
///  remote `jem query --shutdown`. The shutdown drains every admitted
///  request, then the final metrics snapshot is written to `--metrics`.
///
/// `--quota-rate` turns on per-client admission control (token-bucket,
/// one token per mapped segment, keyed by `jem query --client-id`);
/// over-quota v3 clients are answered `Throttled` with a retry hint,
/// older clients `Busy`. `--max-conns` bounds concurrent connections,
/// `--max-inflight` bounds queued requests per connection, and
/// `--idle-timeout-ms` reaps connections that go quiet mid-handshake
/// (slow-loris defense).
///
/// `--slots LO-HI` makes this process one shard of a router topology: it
/// keeps only the sketch entries hashing into that slice of the
/// `--shards`-slot space and answers the router's `MapPartial` requests
/// from it (every shard of a topology must agree on `--shards`).
///
/// The index is loaded and checksum-validated *before* the listen socket
/// binds: a bad `--index` fails fast with a nonzero exit instead of
/// accepting connections it could never answer.
pub fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let index_path = args.req("index")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878");
    let shards = positive_count(args, "shards", 4)?;
    let owned = match args.get("slots") {
        None => 0..shards,
        Some(spec) => parse_slot_range(spec, shards)?,
    };
    let config = jem_serve::ServerConfig {
        workers: positive_count(args, "workers", 4)?,
        queue_cap: positive_count(args, "queue", 64)?,
        batch: positive_count(args, "batch", 16)?,
        straggle_ms: args.get_or("straggle-ms", 0u64)?,
        panic_every: args.get_or("panic-every", 0u64)?,
        quota: quota_config(args)?,
        max_conns: positive_count(args, "max-conns", 256)?,
        max_inflight: positive_count(args, "max-inflight", 32)?,
        idle_timeout: std::time::Duration::from_millis(positive_count(
            args,
            "idle-timeout-ms",
            2_000,
        )? as u64),
        ..Default::default()
    };
    // `--prefault` advises the kernel the whole v4 mapping will be needed
    // and touches every page at load time, trading a slower start for no
    // first-query page-fault stalls. Behavior is otherwise identical.
    let mapper = load_index_path_opts(Path::new(index_path), Integrity::Full, args.has("prefault"))
        .map_err(CliError::format(index_path))?;
    eprintln!(
        "loaded {index_path}: {} subjects, {} sketch entries → slots {}-{} of {shards}",
        mapper.n_subjects(),
        mapper.table().entry_count(),
        owned.start,
        owned.end
    );
    let sharded = jem_serve::ShardedIndex::with_slots(mapper, shards, owned);
    let handle = jem_serve::start(sharded, addr, &config).map_err(serve_err)?;
    eprintln!(
        "serving on {} ({} workers, queue {}, batch {})",
        handle.addr(),
        config.workers,
        config.queue_cap,
        config.batch
    );
    eprintln!("stop with: jem query --addr {} --shutdown", handle.addr());
    let snapshot = handle.join();
    if let Some(path) = args.get("metrics") {
        write_file_atomic(path, snapshot.to_json().as_bytes())?;
        eprintln!("metrics snapshot written to {path}");
    }
    eprintln!("server drained and stopped");
    Ok(())
}

/// `jem route --topology "LO-HI@ADDR[,REPLICA];..." [--addr 127.0.0.1:7979]
///  [--epoch 0] [--hedge-ms 50] [--breaker-failures 3]
///  [--breaker-cooldown-ms 250] [--deadline MS] [--io-timeout-ms 10000]
///  [--quota-rate TOKENS/S [--quota-burst N]] [--max-inflight 256]
///  [--max-conns 1024] [--idle-timeout-ms 2000] [--pool-idle 4]
///  [--pool-age-ms 1500]
///  [--metrics FILE] [--snapshot FILE]` — front a set of `jem serve
///  --slots` shard processes with a scatter-gather router: full answers
///  are byte-identical to a single-process `jem serve`; when shards are
///  down the router answers typed errors (strict queries) or degraded
///  answers naming the missing shard ids (`jem query --allow-degraded`).
///
/// `--hedge-ms 0` disables hedged retries; `--deadline MS` caps every
/// query's budget router-side (the remaining budget is forwarded to the
/// shards). `--quota-rate` turns on per-client admission control at the
/// router's front door, `--max-inflight` caps concurrently dispatched
/// queries, and `--max-conns` caps live ingress connections (excess
/// answered `Busy` and closed). Shard fetches reuse pooled keep-alive
/// connections:
/// `--pool-idle` bounds the idle set per shard endpoint (0 disables
/// reuse) and `--pool-age-ms` retires a socket before the shard's own
/// idle reaper would (keep it below the shards' `--idle-timeout-ms`).
/// Runs until `jem query --addr <router> --shutdown`; the final metrics
/// go to `--metrics` and a topology + breaker-state report to
/// `--snapshot` (both written atomically).
pub fn cmd_route(args: &Args) -> Result<(), CliError> {
    let topology = args.req("topology")?;
    let registry = jem_serve::ShardRegistry::parse(topology)
        .map_err(serve_err)?
        .with_epoch(args.get_or("epoch", 0u64)?);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7979");
    let hedge_ms: u64 = args.get_or("hedge-ms", 50u64)?;
    let breaker_failures = positive_count(args, "breaker-failures", 3)? as u32;
    let cooldown_ms = positive_count(args, "breaker-cooldown-ms", 250)? as u64;
    let deadline_ms: u64 = args.get_or("deadline", 0u64)?;
    let config = jem_serve::RouterConfig {
        io_timeout: std::time::Duration::from_millis(
            positive_count(args, "io-timeout-ms", 10_000)? as u64,
        ),
        hedge_after: (hedge_ms > 0).then(|| std::time::Duration::from_millis(hedge_ms)),
        breaker_failures,
        breaker_cooldown: jem_serve::RetryPolicy::new(
            8,
            std::time::Duration::from_millis(cooldown_ms),
        ),
        deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        quota: quota_config(args)?,
        max_inflight: positive_count(args, "max-inflight", 256)?,
        max_conns: positive_count(args, "max-conns", 1_024)?,
        idle_timeout: std::time::Duration::from_millis(positive_count(
            args,
            "idle-timeout-ms",
            2_000,
        )? as u64),
        pool_max_idle: args.get_or("pool-idle", 4usize)?,
        pool_max_age: std::time::Duration::from_millis(
            positive_count(args, "pool-age-ms", 1_500)? as u64
        ),
    };
    let (n_shards, n_slots) = (registry.len(), registry.n_slots());
    let handle = jem_serve::start_router(registry, addr, &config).map_err(serve_err)?;
    eprintln!(
        "routing on {} across {n_shards} shards ({n_slots} slots); \
         hedge {}, breaker opens after {breaker_failures} failures",
        handle.addr(),
        if hedge_ms > 0 {
            format!("after {hedge_ms} ms")
        } else {
            "off".into()
        }
    );
    eprintln!("stop with: jem query --addr {} --shutdown", handle.addr());
    let report = handle.join();
    if let Some(path) = args.get("metrics") {
        write_file_atomic(path, report.metrics.to_json().as_bytes())?;
        eprintln!("metrics snapshot written to {path}");
    }
    if let Some(path) = args.get("snapshot") {
        write_file_atomic(path, report.status.as_bytes())?;
        eprintln!("status snapshot written to {path}");
    }
    eprintln!("router stopped");
    Ok(())
}

/// `jem query --addr HOST:PORT (--queries reads.fq | --queries - | --ping |
///  --shutdown | --reload FILE) [--client-id NAME] [--chunk 64]
///  [--deadline MS] [--out FILE] [--paf FILE --subjects contigs.fa]
///  [--via-router [--allow-degraded]]`
///  — map reads through a running `jem serve`. The index parameters
///  (segment length, subject names, trial count) come from the server's
///  `Info` response, so the rendered TSV is byte-identical to an offline
///  `jem map` against the same index. `--reload FILE` asks the server to
///  hot-swap its resident index (the path is resolved on the *server's*
///  filesystem); `--deadline MS` attaches a queue deadline to each mapping
///  request so an overloaded server sheds it instead of serving it late.
///
/// `--client-id NAME` identifies this invocation to quota-enforcing
/// servers (requests ride a v3 tagged envelope); an over-quota reply is a
/// typed `Throttled` whose retry hint the built-in retries honor, and an
/// exhausted retry budget exits 75 (`EX_TEMPFAIL`) rather than 1.
///
/// `--via-router` declares that `--addr` points at a `jem route` front-end;
/// with `--allow-degraded` on top, queries accept partial answers when
/// shards are down — any missing shard ids are reported on stderr and the
/// exit stays 0 (an answer with named gaps beats no answer). Without
/// `--allow-degraded`, a router with missing shards fails the query with a
/// typed error naming them.
pub fn cmd_query(args: &Args) -> Result<(), CliError> {
    let addr = args.req("addr")?;
    let via_router = args.has("via-router");
    let allow_degraded = args.has("allow-degraded");
    if allow_degraded && !via_router {
        return Err(CliError::Usage(
            "--allow-degraded needs --via-router: degraded answers come from the router tier"
                .into(),
        ));
    }
    let mut client = jem_serve::Client::new(addr);
    if let Some(id) = args.get("client-id") {
        if id.len() > jem_serve::MAX_CLIENT_ID {
            return Err(CliError::Usage(format!(
                "--client-id must be at most {} bytes, got {}",
                jem_serve::MAX_CLIENT_ID,
                id.len()
            )));
        }
        client = client.with_client_id(id);
    }
    if args.has("ping") {
        client.ping().map_err(serve_err)?;
        eprintln!("pong from {addr}");
        return Ok(());
    }
    if args.has("shutdown") {
        client.shutdown_server().map_err(serve_err)?;
        eprintln!("server at {addr} is shutting down");
        return Ok(());
    }
    if let Some(path) = args.get("reload") {
        let summary = client.reload(path).map_err(serve_err)?;
        eprintln!("server at {addr} reloaded: {summary}");
        return Ok(());
    }
    if let Some(ms) = args.get("deadline") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| CliError::Usage(format!("--deadline must be milliseconds, got {ms:?}")))?;
        client = client.with_deadline(std::time::Duration::from_millis(ms));
    }
    let chunk = positive_count(args, "chunk", 64)?;
    let reads = read_sequences(args.req("queries")?)?;
    let info = client.info().map_err(serve_err)?;
    let segments = make_segments(&reads, info.config.ell);
    eprintln!(
        "querying {addr}: {} reads → {} end segments (ell={}, {} subjects served)",
        reads.len(),
        segments.len(),
        info.config.ell,
        info.subject_names.len()
    );
    let mut mappings: Vec<Mapping> = Vec::new();
    let mut missing: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for part in segments.chunks(chunk) {
        if allow_degraded {
            let (chunk_mappings, gaps) = client
                .map_segments_degraded_retry(part, 10, std::time::Duration::from_millis(50))
                .map_err(serve_err)?;
            mappings.extend(chunk_mappings);
            missing.extend(gaps);
        } else {
            mappings.extend(
                client
                    .map_segments_retry(part, 10, std::time::Duration::from_millis(50))
                    .map_err(serve_err)?,
            );
        }
    }
    // Chunks arrive individually sorted; restore the documented global
    // total order so the TSV matches the offline driver byte for byte.
    mappings.sort_unstable();
    eprintln!("{} end segments mapped", mappings.len());
    if let Some(paf_path) = args.get("paf") {
        // Client-side stage 2: the server answers best-contig only, so the
        // client re-sketches its local copy of the contig set (validated
        // against the served name table) and refines each served hit into
        // coordinates. MAPQ margins here see one candidate contig per
        // segment — within-contig competitors only.
        let subjects_path = args.get("subjects").ok_or_else(|| {
            CliError::Usage(
                "--paf needs --subjects: stage-2 refinement runs client-side over the contig \
                 sequences"
                    .into(),
            )
        })?;
        let subjects = read_sequences(subjects_path)?;
        if subjects.len() != info.subject_names.len() {
            return Err(CliError::Data(format!(
                "--subjects holds {} sequences but the server names {}",
                subjects.len(),
                info.subject_names.len()
            )));
        }
        for (rec, served) in subjects.iter().zip(&info.subject_names) {
            if rec.id != *served {
                return Err(CliError::Data(format!(
                    "--subjects disagrees with the served index: {:?} vs served {served:?}",
                    rec.id
                )));
            }
        }
        let refiner = Refiner::new(info.scheme, info.config.k, subjects);
        let by_key: std::collections::HashMap<(u32, ReadEnd), usize> = segments
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.read_idx, s.end), i))
            .collect();
        let mut scratch = RefineScratch::default();
        let mut stats = RefineStats::default();
        let mut rows: Vec<PafRow> = Vec::new();
        for m in &mappings {
            let Some(&i) = by_key.get(&(m.read_idx, m.end)) else {
                continue;
            };
            let seg = &segments[i];
            if let Some(p) =
                refiner.refine_segment(&seg.seq, &[(m.subject, m.hits)], &mut scratch, &mut stats)
            {
                let placed = Mapping {
                    subject: p.subject,
                    hits: p.hits,
                    ..*m
                };
                rows.push(PafRow::from_placement(
                    &placed,
                    &p,
                    seg.seq.len(),
                    info.config.k,
                ));
            }
        }
        let rec = jem_obs::recorder();
        if rec.enabled() {
            stats.flush(rec);
        }
        let mut out = AtomicFile::create(paf_path).map_err(CliError::io(paf_path))?;
        write_paf(&mut out, &rows, &reads, &info.subject_names).map_err(CliError::io(paf_path))?;
        out.commit().map_err(CliError::io(paf_path))?;
        eprintln!(
            "{} segments refined to coordinates → {paf_path}",
            rows.len()
        );
    }
    if !missing.is_empty() {
        eprintln!(
            "WARNING: degraded answer — shards {:?} were missing from the merge; \
             segments whose collisions live in those slot ranges may be absent or weaker",
            missing.iter().collect::<Vec<_>>()
        );
    }
    match args.get("out") {
        Some(path) => {
            let mut out = AtomicFile::create(path).map_err(CliError::io(path))?;
            write_mappings_tsv_named(
                &mut out,
                &mappings,
                &reads,
                &info.subject_names,
                info.config.trials,
            )
            .map_err(CliError::format(path))?;
            out.commit().map_err(CliError::io(path))?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            write_mappings_tsv_named(
                &mut lock,
                &mappings,
                &reads,
                &info.subject_names,
                info.config.trials,
            )
            .map_err(CliError::format("<stdout>"))?;
        }
    }
    Ok(())
}
