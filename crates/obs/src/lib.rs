//! # jem-obs — pipeline observability for JEM-Mapper
//!
//! A lightweight, dependency-free metrics layer. The paper's evaluation
//! hinges on a per-stage runtime breakdown (Fig. 7) and on stage statistics
//! (sketching density, table occupancy, mapping throughput); this crate is
//! the substrate every pipeline crate reports into so those numbers come
//! from the code that does the work, not from ad-hoc bench scaffolding —
//! the same design minimap2 uses for its self-reported stage statistics.
//!
//! Three primitive kinds, all behind the [`Recorder`] trait:
//!
//! * **Counters** — monotonically increasing `u64` sums ("windows scanned",
//!   "minimizers kept", "collisions probed").
//! * **Histograms** — fixed-bucket (power-of-two) value distributions
//!   ("bucket occupancy", "per-chunk nanoseconds").
//! * **Span timers** — hierarchical wall-clock accumulators named by
//!   `/`-separated paths (`"map/segments"`, `"psim/subject sketch"`), used
//!   through the RAII [`Span`] guard.
//!
//! The default recorder is [`NoopRecorder`]: every method is an empty body
//! and [`Recorder::enabled`] is `false`, so instrumented code skips even the
//! `Instant::now()` calls — the disabled path costs one static pointer read
//! per batch. Instrumentation is *observational only*: installing a real
//! recorder must never change pipeline output (tested in `jem-core`).
//!
//! ## Usage
//!
//! ```
//! use jem_obs::{MetricsRecorder, Recorder};
//!
//! let rec = MetricsRecorder::new();
//! rec.add("sketch.windows_scanned", 1024);
//! rec.observe("index.bucket_occupancy", 3);
//! {
//!     let _span = jem_obs::Span::enter(&rec, "map/segments");
//!     // ... work ...
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("sketch.windows_scanned"), 1024);
//! assert!(snap.to_json().contains("\"schema_version\": 1"));
//! ```
//!
//! Pipeline crates report through the process-global recorder
//! ([`fn@recorder`]), which the CLI swaps for a [`MetricsRecorder`] when
//! `--metrics <path>` is given (see [`install`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod recorder;
pub mod snapshot;

pub use recorder::{MetricsRecorder, NoopRecorder, Recorder, Span};
pub use snapshot::{HistogramSnapshot, ParseError, Snapshot, SpanSnapshot};

use std::sync::OnceLock;

static GLOBAL: OnceLock<&'static dyn Recorder> = OnceLock::new();
static NOOP: NoopRecorder = NoopRecorder;

/// The process-global recorder. Defaults to the no-op recorder until
/// [`install`] is called; the read is one atomic load.
pub fn recorder() -> &'static dyn Recorder {
    match GLOBAL.get() {
        Some(r) => *r,
        None => &NOOP,
    }
}

/// Install `rec` as the process-global recorder. Returns `false` if a
/// recorder was already installed (the first installation wins, like the
/// `log` crate's logger). The recorder must be `'static`; long-lived
/// processes typically leak one `MetricsRecorder` at startup.
pub fn install(rec: &'static dyn Recorder) -> bool {
    GLOBAL.set(rec).is_ok()
}

/// Leak a fresh [`MetricsRecorder`], install it globally, and return the
/// typed handle (for [`MetricsRecorder::snapshot`]). Returns `None` if a
/// recorder was already installed.
pub fn install_default() -> Option<&'static MetricsRecorder> {
    let rec: &'static MetricsRecorder = Box::leak(Box::new(MetricsRecorder::new()));
    install(rec).then_some(rec)
}

/// Add `delta` to global counter `name`.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    recorder().add(name, delta);
}

/// Record `value` into global histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    recorder().observe(name, value);
}

/// Open a span on the global recorder (no-op — not even a clock read — when
/// the global recorder is disabled).
#[inline]
pub fn span(path: &'static str) -> Span<'static> {
    Span::enter(recorder(), path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_noop() {
        // Must not panic and must stay disabled before any install; other
        // tests in this binary do not install, so order cannot break this.
        add("test.counter", 1);
        observe("test.hist", 1);
        let _s = span("test/span");
    }
}
