//! The [`Recorder`] trait, its no-op and collecting implementations, and
//! the RAII [`Span`] timer guard.

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Number of power-of-two histogram buckets: bucket `i` holds values whose
/// bit length is `i` (bucket 0 holds the value 0, bucket 1 holds 1, bucket
/// 2 holds 2–3, …, bucket 64 holds values ≥ 2^63).
pub(crate) const N_BUCKETS: usize = 65;

/// Sink for pipeline metrics. All methods take `&self` and must be
/// thread-safe: instrumentation reports from rayon workers and simulated
/// ranks concurrently.
///
/// Metric names are `&'static str` by design — instrumentation sites name
/// their metrics statically (documented in DESIGN.md §9), so recorders
/// never allocate for a name.
pub trait Recorder: Send + Sync {
    /// Add `delta` to the monotonically increasing counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Record one observation of `value` into histogram `name`.
    fn observe(&self, name: &'static str, value: u64);
    /// Accumulate `nanos` of wall-clock under span `path` (called by
    /// [`Span`] on drop; `path` components are `/`-separated).
    fn span_ns(&self, path: &'static str, nanos: u64);
    /// Whether this recorder actually collects anything. Instrumentation
    /// uses this to skip clock reads and stat assembly entirely — the
    /// contract is: when `enabled()` is `false`, every other method is a
    /// no-op and may simply not be called.
    fn enabled(&self) -> bool;
}

/// The always-disabled recorder: every method is an empty body, so the
/// instrumented pipeline with no recorder installed does no metric work at
/// all (and, via [`Recorder::enabled`], not even clock reads).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn add(&self, _name: &'static str, _delta: u64) {}
    #[inline]
    fn observe(&self, _name: &'static str, _value: u64) {}
    #[inline]
    fn span_ns(&self, _path: &'static str, _nanos: u64) {}
    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// One collected histogram: fixed power-of-two buckets plus summary stats.
#[derive(Debug)]
struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; N_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }
}

/// Bucket index of `value`: its bit length (0 for 0).
pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The collecting recorder: atomic counters behind a name registry, locked
/// fixed-bucket histograms and span accumulators. Counter hot paths take a
/// read lock plus one `fetch_add`; a write lock is taken only the first
/// time a name is seen.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
    /// Counters whose names are built at runtime (per-shard fan-out
    /// metrics like `router.shard.3.failures`). Kept out of the
    /// [`Recorder`] trait on purpose: the static-name contract stays, and
    /// only sites that genuinely need a dynamic name pay the lock + the
    /// allocation.
    dyn_counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Mutex<BTreeMap<&'static str, (u64, u64)>>, // (count, total_ns)
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter whose name is built at runtime. Dynamic
    /// names share the namespace of the static counters in
    /// [`MetricsRecorder::snapshot`] (a collision sums into one counter),
    /// so dotted per-instance names (`router.shard.0.failures`) are the
    /// convention.
    pub fn add_dyn(&self, name: impl Into<String>, delta: u64) {
        let mut map = self.dyn_counters.lock().expect("dyn counter lock poisoned");
        *map.entry(name.into()).or_insert(0) += delta;
    }

    /// Point-in-time copy of everything recorded so far. Stable: maps are
    /// ordered by name, so equal states serialize identically.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .read()
            .expect("counter lock poisoned")
            .iter()
            .map(|(&name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        for (name, &v) in self
            .dyn_counters
            .lock()
            .expect("dyn counter lock poisoned")
            .iter()
        {
            *counters.entry(name.clone()).or_insert(0) += v;
        }
        let histograms = self
            .histograms
            .lock()
            .expect("histogram lock poisoned")
            .iter()
            .map(|(&name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u32, c))
                    .collect();
                (
                    name.to_string(),
                    HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: if h.count == 0 { 0 } else { h.min },
                        max: h.max,
                        buckets,
                    },
                )
            })
            .collect();
        let spans = self
            .spans
            .lock()
            .expect("span lock poisoned")
            .iter()
            .map(|(&name, &(count, total_ns))| (name.to_string(), SpanSnapshot { count, total_ns }))
            .collect();
        Snapshot {
            counters,
            histograms,
            spans,
        }
    }
}

impl Recorder for MetricsRecorder {
    fn add(&self, name: &'static str, delta: u64) {
        {
            let map = self.counters.read().expect("counter lock poisoned");
            if let Some(c) = map.get(name) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut map = self.counters.write().expect("counter lock poisoned");
        map.entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.histograms
            .lock()
            .expect("histogram lock poisoned")
            .entry(name)
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    fn span_ns(&self, path: &'static str, nanos: u64) {
        let mut spans = self.spans.lock().expect("span lock poisoned");
        let entry = spans.entry(path).or_insert((0, 0));
        entry.0 += 1;
        entry.1 = entry.1.saturating_add(nanos);
    }

    fn enabled(&self) -> bool {
        true
    }
}

/// RAII span timer: measures wall-clock from [`Span::enter`] to drop and
/// reports it via [`Recorder::span_ns`]. Hierarchy is expressed in the path
/// (`"map"`, `"map/segments"`): nested guards under nested paths yield
/// parent totals that include child totals.
///
/// On a disabled recorder the guard holds no start time — construction and
/// drop are both free of clock reads.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    path: &'static str,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Start timing `path` against `rec`.
    #[inline]
    pub fn enter(rec: &'a dyn Recorder, path: &'static str) -> Self {
        let start = rec.enabled().then(Instant::now);
        Span { rec, path, start }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.rec.span_ns(self.path, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRecorder::new();
        r.add("a", 1);
        r.add("b", 10);
        r.add("a", 2);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 3);
        assert_eq!(s.counter("b"), 10);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn dynamic_names_accumulate_and_merge_into_the_snapshot() {
        let r = MetricsRecorder::new();
        r.add_dyn("router.shard.0.failures", 1);
        r.add_dyn(String::from("router.shard.0.failures"), 2);
        r.add_dyn("router.shard.1.ok", 5);
        // A dynamic name colliding with a static one sums into one counter.
        r.add("collide", 10);
        r.add_dyn("collide", 3);
        let s = r.snapshot();
        assert_eq!(s.counter("router.shard.0.failures"), 3);
        assert_eq!(s.counter("router.shard.1.ok"), 5);
        assert_eq!(s.counter("collide"), 13);
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let r = MetricsRecorder::new();
        for v in [0u64, 1, 5, 5, 1000] {
            r.observe("h", v);
        }
        let s = r.snapshot();
        let h = &s.histograms["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1011);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // Buckets: 0 → bit 0; 1 → bit 1; 5,5 → bit 3; 1000 → bit 10.
        assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (10, 1)]);
    }

    #[test]
    fn spans_accumulate_count_and_time() {
        let r = MetricsRecorder::new();
        for _ in 0..3 {
            let _s = Span::enter(&r, "work");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = r.snapshot();
        let sp = &s.spans["work"];
        assert_eq!(sp.count, 3);
        assert!(
            sp.total_ns >= 3_000_000,
            "3 × 1ms slept, got {}",
            sp.total_ns
        );
    }

    #[test]
    fn noop_records_nothing_and_span_skips_clock() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        let s = Span::enter(&noop, "x");
        assert!(
            s.start.is_none(),
            "disabled recorder must skip Instant::now"
        );
        drop(s);
    }

    #[test]
    fn concurrent_adds_are_lossless() {
        let r = std::sync::Arc::new(MetricsRecorder::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    r.add("n", 1);
                    r.observe("h", 7);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.counter("n"), 8000);
        assert_eq!(s.histograms["h"].count, 8000);
    }

    #[test]
    fn empty_histogram_min_is_zero_in_snapshot() {
        let r = MetricsRecorder::new();
        r.observe("h", 3);
        let s = r.snapshot();
        assert_eq!(s.histograms["h"].min, 3);
    }
}
