//! Stable, serializable snapshots of a [`MetricsRecorder`](crate::MetricsRecorder).
//!
//! The JSON layout (schema version 1, documented in DESIGN.md §9):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "counters": { "<name>": <u64>, ... },
//!   "histograms": {
//!     "<name>": { "count": u64, "sum": u64, "min": u64, "max": u64,
//!                  "buckets": [[bit, count], ...] }, ...
//!   },
//!   "spans": { "<path>": { "count": u64, "total_ns": u64 }, ... }
//! }
//! ```
//!
//! Keys are emitted in sorted order (the maps are `BTreeMap`s), histogram
//! buckets list only non-empty `[bit-length, count]` pairs, and every number
//! is an unsigned integer — so equal snapshots always produce byte-identical
//! JSON, making the file diffable across runs (the perf-trajectory property
//! CI's bench-smoke artifact relies on).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version of the JSON layout this crate writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (0 when `count == 0`).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty `(bit_length, count)` buckets, ascending by bit length;
    /// bucket `b` holds values of bit length `b` (0 → the value 0,
    /// 1 → 1, 2 → 2–3, …).
    pub buckets: Vec<(u32, u64)>,
}

/// Point-in-time copy of one span accumulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SpanSnapshot {
    /// Number of completed spans under this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across them.
    pub total_ns: u64,
}

impl SpanSnapshot {
    /// Total span seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }
}

/// A complete, stable snapshot of a recorder's state.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span accumulators by path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// Counter value, 0 if the counter was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds recorded under span `path` (0 if absent).
    pub fn span_ns(&self, path: &str) -> u64 {
        self.spans.get(path).map_or(0, |s| s.total_ns)
    }

    /// Serialize to the schema-version-1 JSON document. Deterministic:
    /// equal snapshots yield byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");

        out.push_str("  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {value}", escape(name));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
                escape(name),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (j, (bit, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{bit}, {count}]");
            }
            out.push_str("]}");
        }
        out.push_str(if self.histograms.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        out.push_str("  \"spans\": {");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                escape(path),
                s.count,
                s.total_ns
            );
        }
        out.push_str(if self.spans.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });

        out.push('}');
        out.push('\n');
        out
    }
}

impl Snapshot {
    /// Parse a schema-version-1 JSON document (as produced by
    /// [`Snapshot::to_json`]) back into a `Snapshot`. This is the reference
    /// decoder for the `--metrics` file format; round-tripping through
    /// `to_json`/`from_json` is lossless (tested in `tests/roundtrip.rs`).
    ///
    /// The parser accepts any whitespace layout, so hand-edited or
    /// re-serialized documents decode too, but it only understands the
    /// schema's shape: string keys, unsigned-integer values, and the three
    /// fixed top-level sections.
    pub fn from_json(text: &str) -> Result<Snapshot, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let snap = p.document()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(snap)
    }
}

/// Error from [`Snapshot::from_json`]: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Minimal recursive-descent parser for the snapshot schema. Kept private:
/// it is not a general JSON parser (no floats, booleans, or null — the
/// schema has none).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    /// Peek the next non-whitespace byte without consuming it.
    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Metric names never contain surrogate pairs;
                            // reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape unsupported"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected unsigned integer"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("integer out of u64 range"))
    }

    /// Parse `{ "key": value, ... }` applying `field` to each entry.
    fn object(
        &mut self,
        mut field: impl FnMut(&mut Self, String) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            field(self, key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn document(&mut self) -> Result<Snapshot, ParseError> {
        let mut snap = Snapshot::default();
        let mut version = None;
        self.object(|p, key| match key.as_str() {
            "schema_version" => {
                version = Some(p.number()?);
                Ok(())
            }
            "counters" => p.object(|p, name| {
                let v = p.number()?;
                snap.counters.insert(name, v);
                Ok(())
            }),
            "histograms" => p.object(|p, name| {
                let h = p.histogram()?;
                snap.histograms.insert(name, h);
                Ok(())
            }),
            "spans" => p.object(|p, path| {
                let s = p.span()?;
                snap.spans.insert(path, s);
                Ok(())
            }),
            _ => Err(p.err("unknown top-level key")),
        })?;
        match version {
            Some(SCHEMA_VERSION) => Ok(snap),
            Some(_) => Err(self.err("unsupported schema_version")),
            None => Err(self.err("missing schema_version")),
        }
    }

    fn histogram(&mut self) -> Result<HistogramSnapshot, ParseError> {
        let mut h = HistogramSnapshot::default();
        self.object(|p, key| match key.as_str() {
            "count" => {
                h.count = p.number()?;
                Ok(())
            }
            "sum" => {
                h.sum = p.number()?;
                Ok(())
            }
            "min" => {
                h.min = p.number()?;
                Ok(())
            }
            "max" => {
                h.max = p.number()?;
                Ok(())
            }
            "buckets" => {
                p.expect(b'[')?;
                if p.peek() == Some(b']') {
                    p.pos += 1;
                    return Ok(());
                }
                loop {
                    p.expect(b'[')?;
                    let bit = p.number()?;
                    let bit = u32::try_from(bit).map_err(|_| p.err("bucket bit too large"))?;
                    p.expect(b',')?;
                    let count = p.number()?;
                    p.expect(b']')?;
                    h.buckets.push((bit, count));
                    match p.peek() {
                        Some(b',') => p.pos += 1,
                        Some(b']') => {
                            p.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(p.err("expected ',' or ']'")),
                    }
                }
            }
            _ => Err(p.err("unknown histogram key")),
        })?;
        Ok(h)
    }

    fn span(&mut self) -> Result<SpanSnapshot, ParseError> {
        let mut s = SpanSnapshot::default();
        self.object(|p, key| match key.as_str() {
            "count" => {
                s.count = p.number()?;
                Ok(())
            }
            "total_ns" => {
                s.total_ns = p.number()?;
                Ok(())
            }
            _ => Err(p.err("unknown span key")),
        })?;
        Ok(s)
    }
}

/// Escape a metric name for embedding in a JSON string literal. Names are
/// static identifiers (`[a-z0-9._/ -]`), but escape defensively anyway.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("b.two".into(), 2);
        s.counters.insert("a.one".into(), 1);
        s.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                count: 3,
                sum: 9,
                min: 1,
                max: 5,
                buckets: vec![(1, 1), (3, 2)],
            },
        );
        s.spans.insert(
            "map/segments".into(),
            SpanSnapshot {
                count: 4,
                total_ns: 123_456,
            },
        );
        s
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        // Sorted keys: "a.one" before "b.two".
        assert!(a.find("a.one").unwrap() < a.find("b.two").unwrap());
    }

    #[test]
    fn empty_snapshot_is_valid_json_shape() {
        let j = Snapshot::default().to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"histograms\": {}"));
        assert!(j.contains("\"spans\": {}"));
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.counter("a.one"), 1);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.span_ns("map/segments"), 123_456);
        assert_eq!(s.span_ns("missing"), 0);
        assert!((s.spans["map/segments"].total_secs() - 123_456e-9).abs() < 1e-15);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\u000ab");
    }
}
