//! The JSON snapshot schema round-trips: `Snapshot::to_json` output parses
//! back via `Snapshot::from_json` into an identical value, and
//! re-serializing is byte-identical (acceptance criterion of the
//! observability layer — CI trend scripts and plotters rely on this file
//! format being stable and self-describing).

use jem_obs::{MetricsRecorder, Recorder, Snapshot, Span};

#[test]
fn populated_snapshot_round_trips() {
    let rec = MetricsRecorder::new();
    rec.add("sketch.windows_scanned", 4096);
    rec.add("map.segments", 17);
    for v in [0u64, 1, 2, 3, 100, 1_000_000, u64::MAX] {
        rec.observe("index.bucket_occupancy", v);
    }
    {
        let _outer = Span::enter(&rec, "map");
        let _inner = Span::enter(&rec, "map/segments");
    }

    let snap = rec.snapshot();
    let json = snap.to_json();
    let decoded = Snapshot::from_json(&json).expect("snapshot JSON must parse");
    assert_eq!(decoded, snap, "schema must round-trip");

    // Round-tripping again through to_json is byte-identical.
    assert_eq!(decoded.to_json(), json);
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = MetricsRecorder::new().snapshot();
    let decoded = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(decoded, snap);
}

#[test]
fn awkward_names_survive_the_trip() {
    let mut snap = Snapshot::default();
    snap.counters.insert("quote\"back\\slash".into(), 7);
    snap.counters.insert("newline\nname".into(), 9);
    snap.counters.insert("unicode π name".into(), 3);
    let decoded = Snapshot::from_json(&snap.to_json()).unwrap();
    assert_eq!(decoded, snap);
}

#[test]
fn whitespace_layout_is_irrelevant() {
    // A reformatted (minified) document with the same content decodes to
    // the same snapshot — the format is JSON, not "our exact pretty-print".
    let dense = "{\"schema_version\":1,\"counters\":{\"a\":1},\
                 \"histograms\":{\"h\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,\
                 \"buckets\":[[3,1]]}},\"spans\":{\"s\":{\"count\":2,\"total_ns\":9}}}";
    let snap = Snapshot::from_json(dense).unwrap();
    assert_eq!(snap.counter("a"), 1);
    assert_eq!(snap.histograms["h"].buckets, vec![(3, 1)]);
    assert_eq!(snap.spans["s"].count, 2);
    // And the canonical serialization of the decoded value round-trips.
    assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
}

#[test]
fn malformed_documents_are_rejected() {
    for bad in [
        "",
        "{",
        "{}",                                                 // missing schema_version
        "{\"schema_version\": 2, \"counters\": {}}",          // future version
        "{\"schema_version\": 1, \"counters\": {\"a\": -1}}", // negative
        "{\"schema_version\": 1} trailing",
    ] {
        assert!(Snapshot::from_json(bad).is_err(), "accepted: {bad:?}");
    }
}
