//! Property-based tests for the data simulators.

use jem_seq::alphabet::revcomp_bytes;
use jem_sim::{
    fragment_contigs, simulate_hifi, simulate_illumina, Contig, ContigProfile, Genome, HifiProfile,
    IlluminaProfile, SegmentEnd, Strand,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn genome_is_dna_and_deterministic(
        len in 1_000usize..40_000,
        gc in 0.2f64..0.8,
        seed in 0u64..100,
    ) {
        let g = Genome::random(len, gc, seed);
        prop_assert_eq!(g.len(), len);
        prop_assert!(g.seq.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
        prop_assert_eq!(Genome::random(len, gc, seed).seq, g.seq);
    }

    #[test]
    fn error_free_reads_match_genome(seed in 0u64..50) {
        let g = Genome::random(30_000, 0.5, seed);
        let p = HifiProfile { coverage: 1.0, mean_len: 4_000, std_len: 800, min_len: 1_000, error_rate: 0.0 };
        for r in simulate_hifi(&g, &p, seed + 1) {
            prop_assert!(r.ref_end <= g.len());
            prop_assert!(r.ref_start < r.ref_end);
            let region = &g.seq[r.ref_start..r.ref_end];
            match r.strand {
                Strand::Forward => prop_assert_eq!(&r.seq, region),
                Strand::Reverse => prop_assert_eq!(r.seq.clone(), revcomp_bytes(region)),
            }
        }
    }

    #[test]
    fn segment_ranges_inside_read_range(seed in 0u64..50, ell in 100usize..3_000) {
        let g = Genome::random(30_000, 0.5, seed);
        let p = HifiProfile { coverage: 1.0, mean_len: 4_000, std_len: 800, min_len: 1_000, error_rate: 0.001 };
        for r in simulate_hifi(&g, &p, seed + 2) {
            for end in [SegmentEnd::Prefix, SegmentEnd::Suffix] {
                let (s, e) = r.segment_ref_range(end, ell);
                prop_assert!(r.ref_start <= s && e <= r.ref_end);
                prop_assert!(e - s <= ell.min(r.ref_end - r.ref_start));
                prop_assert!(s < e);
                // The segment itself is a slice of the read.
                let seg = r.segment(end, ell);
                prop_assert!(seg.len() <= ell);
                prop_assert!(!seg.is_empty());
            }
            // Prefix and suffix ranges together cover the read's extremes.
            let (ps, pe) = r.segment_ref_range(SegmentEnd::Prefix, ell);
            let (ss, se) = r.segment_ref_range(SegmentEnd::Suffix, ell);
            prop_assert_eq!(ps.min(ss), r.ref_start);
            prop_assert_eq!(pe.max(se), r.ref_end);
        }
    }

    #[test]
    fn contigs_disjoint_sorted_within_genome(seed in 0u64..50, gap in 0.0f64..0.5) {
        let g = Genome::random(100_000, 0.5, seed);
        let profile = ContigProfile { gap_fraction: gap, ..ContigProfile::eukaryotic() };
        let contigs = fragment_contigs(&g, &profile, seed + 3);
        let mut prev_end = 0usize;
        for c in &contigs {
            prop_assert!(c.ref_start >= prev_end, "overlap");
            prop_assert!(c.ref_end <= g.len());
            prop_assert_eq!(c.len(), c.ref_end - c.ref_start);
            prop_assert!(c.len() >= profile.min_len);
            prev_end = c.ref_end;
        }
        // Ids are sequential.
        for (i, c) in contigs.iter().enumerate() {
            prop_assert_eq!(&c.id, &format!("contig_{i}"));
        }
    }

    #[test]
    fn illumina_reads_fixed_length(seed in 0u64..30, cov in 1.0f64..10.0) {
        let g = Genome::random(20_000, 0.5, seed);
        let p = IlluminaProfile { coverage: cov, ..Default::default() };
        let reads = simulate_illumina(&g, &p, seed + 4);
        prop_assert!(reads.iter().all(|r| r.seq.len() == p.read_len));
        prop_assert!(reads.iter().all(|r| r.ref_start + p.read_len <= g.len()));
        let expect = (g.len() as f64 * cov / p.read_len as f64).ceil() as usize;
        prop_assert_eq!(reads.len(), expect);
    }

    #[test]
    fn coverage_scales_base_count(cov in 2.0f64..20.0, seed in 0u64..20) {
        let g = Genome::random(50_000, 0.5, seed);
        let p = HifiProfile { coverage: cov, mean_len: 5_000, std_len: 500, min_len: 1_000, error_rate: 0.0 };
        let total: usize = simulate_hifi(&g, &p, seed).iter().map(|r| r.len()).sum();
        let observed = total as f64 / g.len() as f64;
        prop_assert!((observed - cov).abs() < cov * 0.5 + 1.0, "target {cov}, got {observed}");
    }

    #[test]
    fn contig_total_respects_gap_fraction(gap in 0.05f64..0.4, seed in 0u64..20) {
        let g = Genome::random(500_000, 0.5, seed);
        let profile = ContigProfile { gap_fraction: gap, ..ContigProfile::eukaryotic() };
        let covered: usize =
            fragment_contigs(&g, &profile, seed).iter().map(Contig::len).sum();
        let frac = covered as f64 / g.len() as f64;
        prop_assert!((frac - (1.0 - gap)).abs() < 0.15, "gap {gap}, covered {frac}");
    }
}
