//! Illumina-like short-read simulation (ART substitute).
//!
//! 100 bp single-end reads with ~1% substitution error, uniform sampling,
//! random strand — the input regime the paper feeds to ART before
//! assembling contigs with Minia. These reads feed `jem-dbg`.

use crate::genome::{mutate_base, Genome};
use jem_seq::alphabet::revcomp_bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Short-read simulation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct IlluminaProfile {
    /// Target coverage (short-read studies commonly use 30–50×).
    pub coverage: f64,
    /// Read length in bases (paper: 100 bp).
    pub read_len: usize,
    /// Per-base substitution error rate (Illumina: <1%).
    pub error_rate: f64,
}

impl Default for IlluminaProfile {
    fn default() -> Self {
        IlluminaProfile {
            coverage: 30.0,
            read_len: 100,
            error_rate: 0.005,
        }
    }
}

/// A simulated short read with its ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct ShortRead {
    /// Read bases.
    pub seq: Vec<u8>,
    /// Genome start (0-based).
    pub ref_start: usize,
    /// True if sampled from the reverse strand.
    pub reverse: bool,
}

/// Simulate short reads over `genome` at the profile's coverage.
pub fn simulate_illumina(genome: &Genome, profile: &IlluminaProfile, seed: u64) -> Vec<ShortRead> {
    assert!(profile.read_len > 0, "read length must be positive");
    assert!(
        genome.len() >= profile.read_len,
        "genome shorter than a read"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_reads =
        ((genome.len() as f64 * profile.coverage) / profile.read_len as f64).ceil() as usize;
    let mut reads = Vec::with_capacity(n_reads);
    let span = genome.len() - profile.read_len + 1;
    for _ in 0..n_reads {
        let start = rng.gen_range(0..span);
        let reverse = rng.gen_bool(0.5);
        let mut seq = genome.seq[start..start + profile.read_len].to_vec();
        if reverse {
            seq = revcomp_bytes(&seq);
        }
        for b in seq.iter_mut() {
            if rng.gen_bool(profile.error_rate) {
                *b = mutate_base(&mut rng, *b);
            }
        }
        reads.push(ShortRead {
            seq,
            ref_start: start,
            reverse,
        });
    }
    reads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_count_and_length() {
        let g = Genome::random(50_000, 0.5, 1);
        let p = IlluminaProfile {
            coverage: 10.0,
            ..Default::default()
        };
        let reads = simulate_illumina(&g, &p, 2);
        assert_eq!(reads.len(), (50_000.0 * 10.0 / 100.0) as usize);
        assert!(reads.iter().all(|r| r.seq.len() == 100));
    }

    #[test]
    fn deterministic() {
        let g = Genome::random(20_000, 0.5, 4);
        let p = IlluminaProfile::default();
        assert_eq!(simulate_illumina(&g, &p, 6), simulate_illumina(&g, &p, 6));
    }

    #[test]
    fn substitution_rate_close_to_target() {
        let g = Genome::random(100_000, 0.5, 3);
        let p = IlluminaProfile {
            coverage: 5.0,
            error_rate: 0.02,
            ..Default::default()
        };
        let reads = simulate_illumina(&g, &p, 9);
        let mut errs = 0usize;
        let mut total = 0usize;
        for r in &reads {
            let truth = if r.reverse {
                revcomp_bytes(&g.seq[r.ref_start..r.ref_start + p.read_len])
            } else {
                g.seq[r.ref_start..r.ref_start + p.read_len].to_vec()
            };
            errs += r.seq.iter().zip(&truth).filter(|(a, b)| a != b).count();
            total += p.read_len;
        }
        let rate = errs as f64 / total as f64;
        assert!((rate - 0.02).abs() < 0.005, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "genome shorter")]
    fn tiny_genome_rejected() {
        let g = Genome::random(50, 0.5, 1);
        simulate_illumina(&g, &IlluminaProfile::default(), 1);
    }
}
