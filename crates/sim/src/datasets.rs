//! Scaled analogues of the paper's eight input datasets (Table I).
//!
//! The paper's genomes span 4.6 Mbp (E. coli) to 339 Mbp (B. splendens).
//! Running those sizes through every experiment on a laptop-class host is
//! impractical, so each dataset is reproduced as a *scaled analogue*: the
//! genome shrinks (bacteria ~1/10, eukaryotes ~1/64; `scale` multiplies
//! further), while every distribution that shapes the algorithms —
//! coverage (10×), read-length distribution, contig-length distribution,
//! gap fraction, repeat density — matches Table I. Quality metrics and
//! scaling *shapes* are size-free; absolute runtimes are not (documented in
//! EXPERIMENTS.md).

use crate::contig::{fragment_contigs, Contig, ContigProfile};
use crate::genome::{Genome, GenomeProfile};
use crate::hifi::{simulate_hifi, HifiProfile, SimulatedRead};

/// The paper's eight inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// E. coli (bacterial, 4.64 Mbp).
    EColi,
    /// P. aeruginosa (bacterial, 6.26 Mbp).
    PAeruginosa,
    /// C. elegans (eukaryotic, 100 Mbp).
    CElegans,
    /// D. busckii (eukaryotic, 118 Mbp).
    DBusckii,
    /// Human chromosome 7 (159 Mbp).
    HumanChr7,
    /// Human chromosome 8 (145 Mbp).
    HumanChr8,
    /// B. splendens (eukaryotic, 339 Mbp — the paper's headline input).
    BSplendens,
    /// O. sativa chr 8 with *real* PacBio reads (28.4 Mbp genome).
    OSativaChr8,
}

impl DatasetId {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetId::EColi => "E. coli",
            DatasetId::PAeruginosa => "P. aeruginosa",
            DatasetId::CElegans => "C. elegans",
            DatasetId::DBusckii => "D. busckii",
            DatasetId::HumanChr7 => "Human chr 7",
            DatasetId::HumanChr8 => "Human chr 8",
            DatasetId::BSplendens => "B. splendens",
            DatasetId::OSativaChr8 => "O. sativa chr 8 (real)",
        }
    }
}

/// Everything needed to generate one dataset analogue.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Which paper input this mirrors.
    pub id: DatasetId,
    /// Genome generation parameters.
    pub genome: GenomeProfile,
    /// Contig fragmentation parameters.
    pub contig: ContigProfile,
    /// Long-read simulation parameters.
    pub hifi: HifiProfile,
}

impl DatasetSpec {
    /// Generate the full dataset deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> SimulatedDataset {
        let genome = Genome::from_profile(self.id.name(), &self.genome, seed);
        let contigs = fragment_contigs(&genome, &self.contig, seed.wrapping_add(1));
        let reads = simulate_hifi(&genome, &self.hifi, seed.wrapping_add(2));
        SimulatedDataset {
            spec: self.clone(),
            genome,
            contigs,
            reads,
        }
    }
}

/// A generated dataset: genome + contigs (subjects) + long reads (queries).
#[derive(Clone, Debug)]
pub struct SimulatedDataset {
    /// The spec this dataset was generated from.
    pub spec: DatasetSpec,
    /// The reference genome (ground truth only; the mappers never see it).
    pub genome: Genome,
    /// The subject set `S`.
    pub contigs: Vec<Contig>,
    /// The query set `Q` (full-length reads; segmentation happens in the mapper).
    pub reads: Vec<SimulatedRead>,
}

impl SimulatedDataset {
    /// Table I-style statistics row.
    pub fn stats(&self) -> DatasetStats {
        let n_contigs = self.contigs.len();
        let subject_bp: usize = self.contigs.iter().map(Contig::len).sum();
        let contig_mean = if n_contigs == 0 {
            0.0
        } else {
            subject_bp as f64 / n_contigs as f64
        };
        let contig_std = std_dev(self.contigs.iter().map(Contig::len), contig_mean);
        let n_reads = self.reads.len();
        let query_bp: usize = self.reads.iter().map(SimulatedRead::len).sum();
        let read_mean = if n_reads == 0 {
            0.0
        } else {
            query_bp as f64 / n_reads as f64
        };
        let read_std = std_dev(self.reads.iter().map(SimulatedRead::len), read_mean);
        DatasetStats {
            name: self.spec.id.name(),
            genome_bp: self.genome.len(),
            n_contigs,
            subject_bp,
            contig_mean,
            contig_std,
            n_reads,
            query_bp,
            read_mean,
            read_std,
        }
    }
}

/// One row of Table I.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Input name.
    pub name: &'static str,
    /// Genome length in bp.
    pub genome_bp: usize,
    /// Number of contigs (≥ min length).
    pub n_contigs: usize,
    /// Total subject size in bp.
    pub subject_bp: usize,
    /// Mean contig length.
    pub contig_mean: f64,
    /// Contig length std. dev.
    pub contig_std: f64,
    /// Number of long reads.
    pub n_reads: usize,
    /// Total query size in bp.
    pub query_bp: usize,
    /// Mean read length.
    pub read_mean: f64,
    /// Read length std. dev.
    pub read_std: f64,
}

fn std_dev(values: impl Iterator<Item = usize> + Clone, mean: f64) -> f64 {
    let (sum_sq, n) = values.fold((0.0f64, 0usize), |(s, n), v| {
        let d = v as f64 - mean;
        (s + d * d, n + 1)
    });
    if n == 0 {
        0.0
    } else {
        (sum_sq / n as f64).sqrt()
    }
}

/// The eight scaled analogues of Table I. `scale` multiplies every genome
/// length (1.0 = the default bench scale documented in DESIGN.md §4).
pub fn paper_analogues(scale: f64) -> Vec<DatasetSpec> {
    assert!(scale > 0.0, "scale must be positive");
    let sz = |base: usize| ((base as f64 * scale) as usize).max(20_000);
    let mut specs = Vec::new();

    // --- Bacterial inputs: near-repeat-free, long contigs, tiny gaps.
    for (id, len, contig_mean, contig_std, gap) in [
        (DatasetId::EColi, 464_000, 12_400, 14_000, 0.026),
        (DatasetId::PAeruginosa, 626_000, 13_400, 18_200, 0.017),
    ] {
        let mut genome = GenomeProfile::bacterial(sz(len));
        genome.gc_content = 0.5;
        specs.push(DatasetSpec {
            id,
            genome,
            contig: ContigProfile {
                mean_len: contig_mean,
                std_len: contig_std,
                min_len: 500,
                gap_fraction: gap,
                error_rate: 0.0005,
            },
            hifi: HifiProfile::default(),
        });
    }

    // --- Eukaryotic inputs: repeat-rich, short contigs, larger gaps.
    for (id, len, repeat_frac, contig_mean, contig_std, gap) in [
        (DatasetId::CElegans, 1_600_000, 0.12, 2_800, 4_700, 0.146),
        (DatasetId::DBusckii, 1_850_000, 0.15, 2_500, 3_150, 0.078),
        (DatasetId::HumanChr7, 2_500_000, 0.20, 2_000, 1_930, 0.303),
        (DatasetId::HumanChr8, 2_270_000, 0.20, 2_050, 1_880, 0.238),
        (DatasetId::BSplendens, 5_300_000, 0.18, 3_460, 4_180, 0.02),
    ] {
        let mut genome = GenomeProfile::eukaryotic(sz(len));
        genome.repeat_fraction = repeat_frac;
        specs.push(DatasetSpec {
            id,
            genome,
            contig: ContigProfile {
                mean_len: contig_mean,
                std_len: contig_std,
                min_len: 500,
                gap_fraction: gap,
                error_rate: 0.0005,
            },
            hifi: HifiProfile::default(),
        });
    }

    // --- O. sativa chr 8: real-data analogue (longer reads, sparse contigs).
    specs.push(DatasetSpec {
        id: DatasetId::OSativaChr8,
        genome: {
            let mut g = GenomeProfile::eukaryotic(sz(890_000));
            g.repeat_fraction = 0.15;
            g
        },
        contig: ContigProfile {
            mean_len: 1_850,
            std_len: 2_070,
            min_len: 500,
            gap_fraction: 0.353,
            error_rate: 0.0005,
        },
        hifi: HifiProfile::real_data_analogue(),
    });

    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_analogues() {
        let specs = paper_analogues(1.0);
        assert_eq!(specs.len(), 8);
        let names: Vec<&str> = specs.iter().map(|s| s.id.name()).collect();
        assert!(names.contains(&"B. splendens"));
        assert!(names.contains(&"O. sativa chr 8 (real)"));
    }

    #[test]
    fn scale_shrinks_genomes() {
        let big = paper_analogues(1.0);
        let small = paper_analogues(0.1);
        for (b, s) in big.iter().zip(&small) {
            assert!(s.genome.length <= b.genome.length);
            assert!(s.genome.length >= 20_000, "floor respected");
        }
    }

    #[test]
    fn generate_small_dataset_end_to_end() {
        let spec = &paper_analogues(0.05)[0]; // E. coli analogue, tiny
        let ds = spec.generate(42);
        assert!(!ds.contigs.is_empty());
        assert!(!ds.reads.is_empty());
        let stats = ds.stats();
        assert_eq!(stats.name, "E. coli");
        assert!(stats.subject_bp <= stats.genome_bp);
        assert!(stats.contig_mean >= 500.0);
        // 10x coverage → query_bp ≈ 10 × genome.
        let cov = stats.query_bp as f64 / stats.genome_bp as f64;
        assert!((cov - 10.0).abs() < 3.0, "coverage {cov}");
    }

    #[test]
    fn bacterial_vs_eukaryotic_character() {
        let specs = paper_analogues(1.0);
        let ecoli = specs.iter().find(|s| s.id == DatasetId::EColi).unwrap();
        let human = specs.iter().find(|s| s.id == DatasetId::HumanChr7).unwrap();
        assert!(ecoli.genome.repeat_fraction < human.genome.repeat_fraction);
        assert!(ecoli.contig.mean_len > human.contig.mean_len);
    }

    #[test]
    fn real_analogue_reads_longer() {
        let specs = paper_analogues(1.0);
        let osativa = specs
            .iter()
            .find(|s| s.id == DatasetId::OSativaChr8)
            .unwrap();
        assert!(osativa.hifi.mean_len > 15_000);
    }

    #[test]
    fn generation_deterministic() {
        let spec = &paper_analogues(0.05)[0];
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.genome.seq, b.genome.seq);
        assert_eq!(a.contigs.len(), b.contigs.len());
        assert_eq!(a.reads.len(), b.reads.len());
    }
}
