//! Direct contig generation (fast path to a Minia-like contig set).
//!
//! The paper's contigs come from Minia assemblies of simulated Illumina
//! reads — a fragmented, non-redundant tiling of the genome whose lengths
//! vary over 10³–10⁵ bp with gaps between fragments. [`fragment_contigs`]
//! produces such a set directly from the genome with exact truth
//! coordinates (the workspace's `jem-dbg` crate provides the full
//! read-assembly path when assembly itself is the thing under test).

use crate::genome::{mutate_base, Genome};
use jem_seq::SeqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Contig length/gap distribution parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ContigProfile {
    /// Mean contig length.
    pub mean_len: usize,
    /// Contig length standard deviation (distribution is lognormal-ish:
    /// normal draws clamped below at `min_len`, matching the heavy
    /// +std.dev of Table I).
    pub std_len: usize,
    /// Minimum contig length (paper filters contigs ≥ 500 bp).
    pub min_len: usize,
    /// Fraction of the genome NOT covered by contigs (assembly gaps);
    /// Table I subject totals run ~70–100% of genome length.
    pub gap_fraction: f64,
    /// Per-base error rate inside contigs (assembly miscalls; tiny).
    pub error_rate: f64,
}

impl ContigProfile {
    /// Bacterial analogue (Table I E. coli: 12.4 kbp ± 14 kbp, ~97% covered).
    pub fn bacterial() -> Self {
        ContigProfile {
            mean_len: 12_400,
            std_len: 14_000,
            min_len: 500,
            gap_fraction: 0.03,
            error_rate: 0.0005,
        }
    }

    /// Eukaryote analogue (Table I C. elegans-like: 2.8 kbp ± 4.7 kbp, ~85%).
    pub fn eukaryotic() -> Self {
        ContigProfile {
            mean_len: 2_800,
            std_len: 4_700,
            min_len: 500,
            gap_fraction: 0.15,
            error_rate: 0.0005,
        }
    }

    /// A compact profile for doc examples and small tests.
    pub fn small_genome() -> Self {
        ContigProfile {
            mean_len: 3_000,
            std_len: 1_500,
            min_len: 500,
            gap_fraction: 0.1,
            error_rate: 0.0,
        }
    }
}

/// A contig with its truth coordinates on the source genome.
#[derive(Clone, Debug)]
pub struct Contig {
    /// Contig identifier.
    pub id: String,
    /// Contig bases.
    pub seq: Vec<u8>,
    /// Genome start (0-based, inclusive).
    pub ref_start: usize,
    /// Genome end (exclusive).
    pub ref_end: usize,
}

impl Contig {
    /// Contig length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the contig is empty (never produced by the generator).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Fragment `genome` into a contig set following `profile`.
///
/// Contigs tile the genome left to right, separated by gaps whose sizes are
/// drawn so the total gap mass matches `gap_fraction`. The resulting set is
/// non-redundant (disjoint genome intervals) — the assumption the paper
/// makes of Minia output.
pub fn fragment_contigs(genome: &Genome, profile: &ContigProfile, seed: u64) -> Vec<Contig> {
    assert!(
        profile.mean_len >= profile.min_len,
        "mean_len must be >= min_len"
    );
    assert!(
        (0.0..1.0).contains(&profile.gap_fraction),
        "gap_fraction must be in [0,1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut contigs = Vec::new();
    let n = genome.len();
    // Mean gap sized so that gaps occupy gap_fraction of the genome:
    // per contig of mean_len there is one gap of g where
    // g / (g + mean_len) = gap_fraction.
    let mean_gap = if profile.gap_fraction == 0.0 {
        0.0
    } else {
        profile.gap_fraction * profile.mean_len as f64 / (1.0 - profile.gap_fraction)
    };

    let mut pos = 0usize;
    let mut i = 0usize;
    while pos < n {
        let len = sample_clamped(
            &mut rng,
            profile.mean_len as f64,
            profile.std_len as f64,
            profile.min_len,
        )
        .min(n - pos);
        if len >= profile.min_len {
            let mut seq = genome.seq[pos..pos + len].to_vec();
            if profile.error_rate > 0.0 {
                for b in seq.iter_mut() {
                    if rng.gen_bool(profile.error_rate) {
                        *b = mutate_base(&mut rng, *b);
                    }
                }
            }
            contigs.push(Contig {
                id: format!("contig_{i}"),
                seq,
                ref_start: pos,
                ref_end: pos + len,
            });
            i += 1;
        }
        pos += len;
        // Gap: exponential draw around the mean gap size.
        if mean_gap > 0.0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            pos += (-u.ln() * mean_gap) as usize;
        }
    }
    contigs
}

/// Convert contigs to plain [`SeqRecord`]s (dropping truth).
pub fn contig_records(contigs: &[Contig]) -> Vec<SeqRecord> {
    contigs
        .iter()
        .map(|c| SeqRecord::new(c.id.clone(), c.seq.clone()))
        .collect()
}

fn sample_clamped(rng: &mut StdRng, mean: f64, std: f64, min: usize) -> usize {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + z * std).max(min as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> Genome {
        Genome::random(500_000, 0.5, 17)
    }

    #[test]
    fn contigs_are_disjoint_and_ordered() {
        let g = genome();
        let contigs = fragment_contigs(&g, &ContigProfile::eukaryotic(), 3);
        assert!(!contigs.is_empty());
        for w in contigs.windows(2) {
            assert!(w[0].ref_end <= w[1].ref_start, "contigs must not overlap");
        }
    }

    #[test]
    fn coordinates_match_sequence_when_error_free() {
        let g = genome();
        let profile = ContigProfile {
            error_rate: 0.0,
            ..ContigProfile::eukaryotic()
        };
        for c in fragment_contigs(&g, &profile, 5) {
            assert_eq!(c.seq, g.seq[c.ref_start..c.ref_end].to_vec());
            assert_eq!(c.len(), c.ref_end - c.ref_start);
        }
    }

    #[test]
    fn gap_fraction_respected() {
        let g = Genome::random(2_000_000, 0.5, 21);
        let profile = ContigProfile {
            gap_fraction: 0.2,
            ..ContigProfile::eukaryotic()
        };
        let contigs = fragment_contigs(&g, &profile, 7);
        let covered: usize = contigs.iter().map(Contig::len).sum();
        let cov = covered as f64 / g.len() as f64;
        assert!(
            (cov - 0.8).abs() < 0.08,
            "covered fraction {cov}, target 0.8"
        );
    }

    #[test]
    fn min_length_enforced() {
        let g = genome();
        let contigs = fragment_contigs(&g, &ContigProfile::eukaryotic(), 9);
        assert!(contigs.iter().all(|c| c.len() >= 500));
    }

    #[test]
    fn mean_length_in_band() {
        let g = Genome::random(3_000_000, 0.5, 2);
        let profile = ContigProfile::eukaryotic();
        let contigs = fragment_contigs(&g, &profile, 11);
        let mean = contigs.iter().map(Contig::len).sum::<usize>() as f64 / contigs.len() as f64;
        // Clamping at min_len biases the mean upward; just demand the band.
        assert!(
            mean > 2_000.0 && mean < 6_500.0,
            "mean contig length {mean}"
        );
    }

    #[test]
    fn deterministic() {
        let g = genome();
        let a = fragment_contigs(&g, &ContigProfile::bacterial(), 13);
        let b = fragment_contigs(&g, &ContigProfile::bacterial(), 13);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.seq == y.seq));
    }

    #[test]
    fn records_conversion() {
        let g = genome();
        let contigs = fragment_contigs(&g, &ContigProfile::small_genome(), 1);
        let recs = contig_records(&contigs);
        assert_eq!(recs.len(), contigs.len());
        assert_eq!(recs[0].id, "contig_0");
    }
}
