//! Synthetic genomes with planted repeat families.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic genome.
#[derive(Clone, Debug, PartialEq)]
pub struct GenomeProfile {
    /// Total genome length in bases.
    pub length: usize,
    /// GC content in `[0, 1]` (fraction of G/C bases in random regions).
    pub gc_content: f64,
    /// Fraction of the genome covered by planted repeat copies, `[0, 1)`.
    pub repeat_fraction: f64,
    /// Number of distinct repeat families to plant.
    pub repeat_families: usize,
    /// Repeat element length range (inclusive).
    pub repeat_len: (usize, usize),
    /// Per-base divergence between copies of the same family, `[0, 1)`.
    /// Real eukaryotic repeats are not verbatim; divergence keeps copies
    /// near-identical but not k-mer-identical everywhere.
    pub repeat_divergence: f64,
}

impl GenomeProfile {
    /// Bacterial-like: almost repeat-free.
    pub fn bacterial(length: usize) -> Self {
        GenomeProfile {
            length,
            gc_content: 0.5,
            repeat_fraction: 0.02,
            repeat_families: 3,
            repeat_len: (500, 3000),
            repeat_divergence: 0.02,
        }
    }

    /// Eukaryote-like: dense, moderately diverged repeat families.
    pub fn eukaryotic(length: usize) -> Self {
        GenomeProfile {
            length,
            gc_content: 0.41,
            repeat_fraction: 0.25,
            repeat_families: 12,
            repeat_len: (300, 5000),
            repeat_divergence: 0.05,
        }
    }
}

/// A synthetic genome with known repeat layout.
#[derive(Clone, Debug)]
pub struct Genome {
    /// Genome name (used as FASTA id).
    pub name: String,
    /// The full sequence (ACGT only).
    pub seq: Vec<u8>,
    /// Half-open ranges where repeat copies were planted.
    pub repeat_regions: Vec<std::ops::Range<usize>>,
}

impl Genome {
    /// Random genome without planted repeats.
    pub fn random(length: usize, gc_content: f64, seed: u64) -> Self {
        let profile = GenomeProfile {
            length,
            gc_content,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (0, 0),
            repeat_divergence: 0.0,
        };
        Genome::from_profile("random", &profile, seed)
    }

    /// Generate a genome from a profile, deterministically from `seed`.
    pub fn from_profile(name: &str, profile: &GenomeProfile, seed: u64) -> Self {
        assert!(profile.length > 0, "genome length must be positive");
        assert!(
            (0.0..=1.0).contains(&profile.gc_content),
            "gc_content must be a fraction"
        );
        assert!(
            (0.0..1.0).contains(&profile.repeat_fraction),
            "repeat_fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq = Vec::with_capacity(profile.length);
        for _ in 0..profile.length {
            seq.push(random_base(&mut rng, profile.gc_content));
        }

        // Plant repeat copies over random positions until the target
        // fraction of bases lies inside a repeat region.
        let mut repeat_regions = Vec::new();
        if profile.repeat_fraction > 0.0 && profile.repeat_families > 0 {
            let families: Vec<Vec<u8>> = (0..profile.repeat_families)
                .map(|_| {
                    let len = rng
                        .gen_range(profile.repeat_len.0..=profile.repeat_len.1)
                        .min(profile.length);
                    (0..len)
                        .map(|_| random_base(&mut rng, profile.gc_content))
                        .collect()
                })
                .collect();
            let target = (profile.length as f64 * profile.repeat_fraction) as usize;
            let mut planted = 0usize;
            let mut guard = 0;
            while planted < target && guard < 100_000 {
                guard += 1;
                let fam = &families[rng.gen_range(0..families.len())];
                if fam.len() >= profile.length {
                    break;
                }
                let start = rng.gen_range(0..profile.length - fam.len());
                for (i, &b) in fam.iter().enumerate() {
                    seq[start + i] = if rng.gen_bool(profile.repeat_divergence) {
                        mutate_base(&mut rng, b)
                    } else {
                        b
                    };
                }
                repeat_regions.push(start..start + fam.len());
                planted += fam.len();
            }
        }

        Genome {
            name: name.to_string(),
            seq,
            repeat_regions,
        }
    }

    /// Genome length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the genome is empty (never produced by the generators).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Fraction of bases lying inside at least one repeat region.
    pub fn repeat_coverage(&self) -> f64 {
        if self.seq.is_empty() {
            return 0.0;
        }
        let mut covered = vec![false; self.seq.len()];
        for r in &self.repeat_regions {
            for c in covered[r.clone()].iter_mut() {
                *c = true;
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / self.seq.len() as f64
    }
}

fn random_base(rng: &mut StdRng, gc: f64) -> u8 {
    if rng.gen_bool(gc) {
        if rng.gen_bool(0.5) {
            b'G'
        } else {
            b'C'
        }
    } else if rng.gen_bool(0.5) {
        b'A'
    } else {
        b'T'
    }
}

/// Replace `b` with a different random base.
pub(crate) fn mutate_base(rng: &mut StdRng, b: u8) -> u8 {
    const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];
    loop {
        let nb = BASES[rng.gen_range(0..4usize)];
        if nb != b {
            return nb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = Genome::random(10_000, 0.5, 7);
        let b = Genome::random(10_000, 0.5, 7);
        assert_eq!(a.seq, b.seq);
        let c = Genome::random(10_000, 0.5, 8);
        assert_ne!(a.seq, c.seq);
    }

    #[test]
    fn length_and_alphabet() {
        let g = Genome::random(5000, 0.4, 1);
        assert_eq!(g.len(), 5000);
        assert!(g.seq.iter().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
    }

    #[test]
    fn gc_content_approximate() {
        for gc in [0.3, 0.5, 0.7] {
            let g = Genome::random(200_000, gc, 3);
            let observed =
                g.seq.iter().filter(|&&b| b == b'G' || b == b'C').count() as f64 / g.len() as f64;
            assert!(
                (observed - gc).abs() < 0.02,
                "target {gc}, observed {observed}"
            );
        }
    }

    #[test]
    fn repeats_reach_target_fraction() {
        let p = GenomeProfile::eukaryotic(300_000);
        let g = Genome::from_profile("euk", &p, 11);
        let cov = g.repeat_coverage();
        assert!(
            cov > 0.15,
            "repeat coverage {cov} too low for target {}",
            p.repeat_fraction
        );
        assert!(!g.repeat_regions.is_empty());
    }

    #[test]
    fn bacterial_profile_nearly_repeat_free() {
        let g = Genome::from_profile("bac", &GenomeProfile::bacterial(200_000), 5);
        assert!(g.repeat_coverage() < 0.10);
    }

    #[test]
    fn repeat_copies_share_kmers() {
        // Two copies of the same family must share most of their k-mers —
        // the property that creates mapping ambiguity.
        let p = GenomeProfile {
            length: 100_000,
            gc_content: 0.5,
            repeat_fraction: 0.1,
            repeat_families: 1,
            repeat_len: (2000, 2000),
            repeat_divergence: 0.02,
        };
        let g = Genome::from_profile("r", &p, 13);
        assert!(g.repeat_regions.len() >= 2);
        let a = &g.seq[g.repeat_regions[0].clone()];
        let b = &g.seq[g.repeat_regions[1].clone()];
        let j = jem_shared_kmer_fraction(a, b, 16);
        assert!(j > 0.3, "repeat copies share only {j} of k-mers");

        fn jem_shared_kmer_fraction(a: &[u8], b: &[u8], k: usize) -> f64 {
            use std::collections::HashSet;
            let sa: HashSet<&[u8]> = a.windows(k).collect();
            let sb: HashSet<&[u8]> = b.windows(k).collect();
            let inter = sa.intersection(&sb).count();
            inter as f64 / sa.len().min(sb.len()).max(1) as f64
        }
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        Genome::random(0, 0.5, 1);
    }
}
