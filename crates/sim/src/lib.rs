//! # jem-sim — data simulation substrate
//!
//! The paper evaluates on genomes from NCBI with reads from the Sim-it HiFi
//! simulator and contigs from ART-simulated Illumina reads assembled by
//! Minia. None of those artifacts are available offline, so this crate
//! synthesizes equivalents that exercise the same code paths:
//!
//! * [`genome`] — random genomes with configurable GC content and *planted
//!   repeat families*. Repeat density is the property that separates the
//!   paper's bacterial inputs (high precision everywhere) from its
//!   eukaryotic inputs (where JEM's multi-trial selection wins precision),
//!   so eukaryote analogues get dense, diverged repeat families.
//! * [`hifi`] — PacBio-HiFi-like long reads: ~10 kbp normal length
//!   distribution (Table I: 10,205 ± 3,418 for the simulated sets), 99.9%
//!   accuracy with substitution/insertion/deletion errors, uniform sampling
//!   at a target coverage, random strand. True coordinates are retained for
//!   benchmark construction (Fig. 4).
//! * [`illumina`] — ART-like short reads (100 bp, ~1% substitution error)
//!   feeding the de Bruijn assembler substrate (`jem-dbg`).
//! * [`contig`] — direct contig generation: fragments the genome into
//!   Minia-like contig sets (length distributions per Table I, inter-contig
//!   gaps, optional per-base error) with exact truth coordinates.
//! * [`datasets`] — scaled analogues of the paper's eight inputs (Table I).
//!
//! Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contig;
pub mod datasets;
pub mod genome;
pub mod hifi;
pub mod illumina;

pub use contig::{contig_records, fragment_contigs, Contig, ContigProfile};
pub use datasets::{paper_analogues, DatasetId, DatasetSpec, SimulatedDataset};
pub use genome::{Genome, GenomeProfile};
pub use hifi::{read_records, simulate_hifi, HifiProfile, SegmentEnd, SimulatedRead, Strand};
pub use illumina::{simulate_illumina, IlluminaProfile, ShortRead};
