//! PacBio-HiFi-like long-read simulation (Sim-it substitute).
//!
//! Reads are sampled uniformly over the genome with normally distributed
//! lengths (Table I simulated sets: ≈10.2 kbp ± 3.4 kbp), random strand,
//! and a 0.1% error process split across substitutions, insertions and
//! deletions — the HiFi accuracy regime the paper targets. True genome
//! coordinates and strand are kept on every read so the Fig. 4 benchmark
//! can be constructed exactly.

use crate::genome::{mutate_base, Genome};
use jem_seq::alphabet::revcomp_bytes;
use jem_seq::SeqRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strand a read was sampled from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strand {
    /// Read equals the genome region.
    Forward,
    /// Read is the reverse complement of the genome region.
    Reverse,
}

/// Which end segment of a long read (paper §III-B-1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SegmentEnd {
    /// First ℓ bases of the read.
    Prefix,
    /// Last ℓ bases of the read.
    Suffix,
}

/// HiFi simulation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct HifiProfile {
    /// Target sequencing coverage (paper: 10×).
    pub coverage: f64,
    /// Mean read length (paper: ≈10,200).
    pub mean_len: usize,
    /// Read-length standard deviation (paper: ≈3,400).
    pub std_len: usize,
    /// Minimum read length (shorter draws are re-clamped).
    pub min_len: usize,
    /// Total per-base error rate (HiFi: 0.001).
    pub error_rate: f64,
}

impl Default for HifiProfile {
    fn default() -> Self {
        HifiProfile {
            coverage: 10.0,
            mean_len: 10_200,
            std_len: 3_400,
            min_len: 1_000,
            error_rate: 0.001,
        }
    }
}

impl HifiProfile {
    /// The real-data analogue (O. sativa, Table I): ~19.6 kbp ± 4.2 kbp
    /// reads at deep coverage. The paper's real read set is ~10.4 Gbp over
    /// a 28.4 Mbp chromosome (≈370×); we use 60× to keep the workload's
    /// defining trait — a query set dwarfing the subject set — while
    /// staying laptop-runnable.
    pub fn real_data_analogue() -> Self {
        HifiProfile {
            coverage: 60.0,
            mean_len: 19_600,
            std_len: 4_200,
            min_len: 2_000,
            error_rate: 0.001,
        }
    }
}

/// A simulated long read with its ground truth.
#[derive(Clone, Debug)]
pub struct SimulatedRead {
    /// Read identifier.
    pub id: String,
    /// Read bases (error-bearing; reverse-complemented for [`Strand::Reverse`]).
    pub seq: Vec<u8>,
    /// Genome start of the sampled region (0-based, inclusive).
    pub ref_start: usize,
    /// Genome end of the sampled region (exclusive).
    pub ref_end: usize,
    /// Sampled strand.
    pub strand: Strand,
}

impl SimulatedRead {
    /// Read length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the read is empty (never produced by the simulator).
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Extract an end segment of up to `ell` bases (paper §III-B-1).
    /// Reads shorter than `ell` yield the whole read.
    pub fn segment(&self, end: SegmentEnd, ell: usize) -> &[u8] {
        let n = self.seq.len().min(ell);
        match end {
            SegmentEnd::Prefix => &self.seq[..n],
            SegmentEnd::Suffix => &self.seq[self.seq.len() - n..],
        }
    }

    /// Genome coordinates `(start, end)` covered by an end segment.
    ///
    /// For a reverse-strand read, the *prefix* of the read corresponds to
    /// the *end* of the genome region and vice versa. Error indels shift
    /// true coordinates by a handful of bases at a 0.1% rate — negligible
    /// against the ≥k-base-intersection criterion of Fig. 4.
    pub fn segment_ref_range(&self, end: SegmentEnd, ell: usize) -> (usize, usize) {
        let n = (self.ref_end - self.ref_start).min(ell);
        match (end, self.strand) {
            (SegmentEnd::Prefix, Strand::Forward) | (SegmentEnd::Suffix, Strand::Reverse) => {
                (self.ref_start, self.ref_start + n)
            }
            (SegmentEnd::Suffix, Strand::Forward) | (SegmentEnd::Prefix, Strand::Reverse) => {
                (self.ref_end - n, self.ref_end)
            }
        }
    }
}

/// Simulate HiFi reads over `genome` at the profile's coverage.
pub fn simulate_hifi(genome: &Genome, profile: &HifiProfile, seed: u64) -> Vec<SimulatedRead> {
    assert!(profile.coverage > 0.0, "coverage must be positive");
    assert!(
        profile.mean_len > 0 && profile.min_len > 0,
        "lengths must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_reads =
        ((genome.len() as f64 * profile.coverage) / profile.mean_len as f64).ceil() as usize;
    let mut reads = Vec::with_capacity(n_reads);
    for i in 0..n_reads {
        let len = sample_len(&mut rng, profile).min(genome.len());
        let start = if genome.len() == len {
            0
        } else {
            rng.gen_range(0..genome.len() - len)
        };
        let strand = if rng.gen_bool(0.5) {
            Strand::Forward
        } else {
            Strand::Reverse
        };
        let mut seq = genome.seq[start..start + len].to_vec();
        if strand == Strand::Reverse {
            seq = revcomp_bytes(&seq);
        }
        apply_errors(&mut rng, &mut seq, profile.error_rate);
        reads.push(SimulatedRead {
            id: format!("read_{i}"),
            seq,
            ref_start: start,
            ref_end: start + len,
            strand,
        });
    }
    reads
}

/// Convert reads to plain [`SeqRecord`]s (dropping truth).
pub fn read_records(reads: &[SimulatedRead]) -> Vec<SeqRecord> {
    reads
        .iter()
        .map(|r| SeqRecord::new(r.id.clone(), r.seq.clone()))
        .collect()
}

fn sample_len(rng: &mut StdRng, p: &HifiProfile) -> usize {
    // Box-Muller normal draw; clamped below at min_len.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = p.mean_len as f64 + z * p.std_len as f64;
    len.max(p.min_len as f64) as usize
}

/// Apply HiFi-style errors in place: 60% substitutions, 20% insertions,
/// 20% deletions of the error budget.
fn apply_errors(rng: &mut StdRng, seq: &mut Vec<u8>, rate: f64) {
    if rate <= 0.0 {
        return;
    }
    let mut out = Vec::with_capacity(seq.len() + 8);
    for &base in seq.iter() {
        if rng.gen_bool(rate) {
            let roll: f64 = rng.gen();
            if roll < 0.6 {
                out.push(mutate_base(rng, base)); // substitution
            } else if roll < 0.8 {
                out.push(base);
                out.push(*b"ACGT".get(rng.gen_range(0..4usize)).expect("in range"));
                // insertion
            } // else: deletion (skip base)
        } else {
            out.push(base);
        }
    }
    *seq = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> Genome {
        Genome::random(100_000, 0.5, 42)
    }

    #[test]
    fn coverage_determines_read_count() {
        let g = genome();
        let p = HifiProfile {
            coverage: 5.0,
            ..Default::default()
        };
        let reads = simulate_hifi(&g, &p, 1);
        let total: usize = reads.iter().map(SimulatedRead::len).sum();
        let cov = total as f64 / g.len() as f64;
        assert!((cov - 5.0).abs() < 1.5, "observed coverage {cov}");
    }

    #[test]
    fn deterministic() {
        let g = genome();
        let p = HifiProfile::default();
        let a = simulate_hifi(&g, &p, 9);
        let b = simulate_hifi(&g, &p, 9);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.seq == y.seq && x.ref_start == y.ref_start));
    }

    #[test]
    fn length_distribution_clamped_and_centered() {
        let g = Genome::random(1_000_000, 0.5, 3);
        let p = HifiProfile {
            coverage: 3.0,
            ..Default::default()
        };
        let reads = simulate_hifi(&g, &p, 5);
        assert!(reads
            .iter()
            .all(|r| r.len() >= (p.min_len as f64 * 0.99) as usize));
        let mean = reads.iter().map(SimulatedRead::len).sum::<usize>() as f64 / reads.len() as f64;
        assert!(
            (mean - p.mean_len as f64).abs() < 1_000.0,
            "mean length {mean}"
        );
    }

    #[test]
    fn forward_read_matches_genome_modulo_errors() {
        let g = genome();
        let p = HifiProfile {
            error_rate: 0.0,
            ..Default::default()
        };
        let reads = simulate_hifi(&g, &p, 2);
        let fwd = reads
            .iter()
            .find(|r| r.strand == Strand::Forward)
            .expect("some forward read");
        assert_eq!(fwd.seq, g.seq[fwd.ref_start..fwd.ref_end].to_vec());
        let rev = reads
            .iter()
            .find(|r| r.strand == Strand::Reverse)
            .expect("some reverse read");
        assert_eq!(rev.seq, revcomp_bytes(&g.seq[rev.ref_start..rev.ref_end]));
    }

    #[test]
    fn error_rate_measured() {
        let g = Genome::random(500_000, 0.5, 8);
        let p = HifiProfile {
            coverage: 2.0,
            error_rate: 0.01,
            ..Default::default()
        };
        let reads = simulate_hifi(&g, &p, 3);
        // Positional comparison breaks after the first indel (frameshift),
        // so use the per-read mismatch count over a short prefix and take
        // the median: the median read has no frameshift in that window and
        // shows only substitutions.
        let mut per_read: Vec<usize> = reads
            .iter()
            .filter(|r| r.strand == Strand::Forward)
            .map(|r| {
                let n = 100.min(r.len()).min(r.ref_end - r.ref_start);
                (0..n)
                    .filter(|&i| r.seq[i] != g.seq[r.ref_start + i])
                    .count()
            })
            .collect();
        per_read.sort_unstable();
        let median = per_read[per_read.len() / 2];
        let total_errs: usize = per_read.iter().sum();
        assert!(
            median <= 3,
            "median prefix mismatches {median} too high for 1% error"
        );
        assert!(total_errs > 0, "errors must actually be injected");
    }

    #[test]
    fn segments_and_their_coordinates() {
        let r = SimulatedRead {
            id: "r".into(),
            seq: (0..50u8).map(|i| b"ACGT"[i as usize % 4]).collect(),
            ref_start: 100,
            ref_end: 150,
            strand: Strand::Forward,
        };
        assert_eq!(r.segment(SegmentEnd::Prefix, 10), &r.seq[..10]);
        assert_eq!(r.segment(SegmentEnd::Suffix, 10), &r.seq[40..]);
        assert_eq!(r.segment_ref_range(SegmentEnd::Prefix, 10), (100, 110));
        assert_eq!(r.segment_ref_range(SegmentEnd::Suffix, 10), (140, 150));

        let rev = SimulatedRead {
            strand: Strand::Reverse,
            ..r
        };
        assert_eq!(rev.segment_ref_range(SegmentEnd::Prefix, 10), (140, 150));
        assert_eq!(rev.segment_ref_range(SegmentEnd::Suffix, 10), (100, 110));
    }

    #[test]
    fn short_read_segment_is_whole_read() {
        let r = SimulatedRead {
            id: "r".into(),
            seq: b"ACGTACGT".to_vec(),
            ref_start: 0,
            ref_end: 8,
            strand: Strand::Forward,
        };
        assert_eq!(r.segment(SegmentEnd::Prefix, 100), &r.seq[..]);
        assert_eq!(r.segment_ref_range(SegmentEnd::Suffix, 100), (0, 8));
    }

    #[test]
    fn zero_error_rate_produces_exact_reads() {
        let g = genome();
        let p = HifiProfile {
            error_rate: 0.0,
            coverage: 1.0,
            ..Default::default()
        };
        for r in simulate_hifi(&g, &p, 7) {
            let region = &g.seq[r.ref_start..r.ref_end];
            match r.strand {
                Strand::Forward => assert_eq!(r.seq, region),
                Strand::Reverse => assert_eq!(r.seq, revcomp_bytes(region)),
            }
        }
    }
}
