//! Contig link collection from end-segment mappings.

use jem_core::{Mapping, ReadEnd};
use jem_index::SubjectId;
use std::collections::HashMap;

/// An undirected contig–contig link with read support.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContigLink {
    /// Smaller contig id.
    pub a: SubjectId,
    /// Larger contig id.
    pub b: SubjectId,
    /// Number of distinct long reads bridging the pair.
    pub support: u32,
    /// Sum of trial-hit counts over the supporting end segments (a
    /// confidence proxy: higher means cleaner sketch agreement).
    pub total_hits: u32,
}

/// Collect links: a read whose prefix and suffix map to *different*
/// contigs contributes one unit of support to that pair.
///
/// Reads with only one mapped end (or both ends on the same contig — the
/// read is contained or the contig spans it) produce no link. Output is
/// sorted by descending support, then ascending `(a, b)` for determinism.
pub fn collect_links(mappings: &[Mapping]) -> Vec<ContigLink> {
    // Per read: best mapping per end.
    let mut per_read: HashMap<u32, [Option<(SubjectId, u32)>; 2]> = HashMap::new();
    for m in mappings {
        let slot = match m.end {
            ReadEnd::Prefix => 0,
            ReadEnd::Suffix => 1,
        };
        per_read.entry(m.read_idx).or_default()[slot] = Some((m.subject, m.hits));
    }
    let mut agg: HashMap<(SubjectId, SubjectId), (u32, u32)> = HashMap::new();
    for ends in per_read.values() {
        if let [Some((sa, ha)), Some((sb, hb))] = ends {
            if sa != sb {
                let key = (*sa.min(sb), *sa.max(sb));
                let entry = agg.entry(key).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += ha + hb;
            }
        }
    }
    let mut links: Vec<ContigLink> = agg
        .into_iter()
        .map(|((a, b), (support, total_hits))| ContigLink {
            a,
            b,
            support,
            total_hits,
        })
        .collect();
    links.sort_unstable_by(|x, y| {
        y.support
            .cmp(&x.support)
            .then(x.a.cmp(&y.a))
            .then(x.b.cmp(&y.b))
    });
    links
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(read: u32, end: ReadEnd, subject: u32, hits: u32) -> Mapping {
        Mapping {
            read_idx: read,
            end,
            subject,
            hits,
        }
    }

    #[test]
    fn bridging_read_creates_link() {
        let links = collect_links(&[m(0, ReadEnd::Prefix, 3, 10), m(0, ReadEnd::Suffix, 1, 20)]);
        assert_eq!(
            links,
            vec![ContigLink {
                a: 1,
                b: 3,
                support: 1,
                total_hits: 30
            }]
        );
    }

    #[test]
    fn same_contig_both_ends_is_no_link() {
        let links = collect_links(&[m(0, ReadEnd::Prefix, 2, 10), m(0, ReadEnd::Suffix, 2, 10)]);
        assert!(links.is_empty());
    }

    #[test]
    fn single_end_is_no_link() {
        assert!(collect_links(&[m(0, ReadEnd::Prefix, 2, 10)]).is_empty());
    }

    #[test]
    fn support_accumulates_across_reads() {
        let links = collect_links(&[
            m(0, ReadEnd::Prefix, 0, 5),
            m(0, ReadEnd::Suffix, 1, 5),
            m(1, ReadEnd::Prefix, 1, 7),
            m(1, ReadEnd::Suffix, 0, 3),
            m(2, ReadEnd::Prefix, 0, 4),
            m(2, ReadEnd::Suffix, 2, 6),
        ]);
        assert_eq!(links.len(), 2);
        assert_eq!(
            links[0],
            ContigLink {
                a: 0,
                b: 1,
                support: 2,
                total_hits: 20
            }
        );
        assert_eq!(
            links[1],
            ContigLink {
                a: 0,
                b: 2,
                support: 1,
                total_hits: 10
            }
        );
    }

    #[test]
    fn sorted_by_support_then_ids() {
        let links = collect_links(&[
            m(0, ReadEnd::Prefix, 5, 1),
            m(0, ReadEnd::Suffix, 6, 1),
            m(1, ReadEnd::Prefix, 1, 1),
            m(1, ReadEnd::Suffix, 2, 1),
        ]);
        // Equal support: ordered by (a, b).
        assert_eq!(links[0].a, 1);
        assert_eq!(links[1].a, 5);
    }

    #[test]
    fn empty_input() {
        assert!(collect_links(&[]).is_empty());
    }
}
