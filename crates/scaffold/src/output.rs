//! Scaffold sequence construction.

use crate::graph::ScaffoldPath;
use jem_seq::SeqRecord;

/// Build scaffold records: contigs of each path joined with `gap_n` `N`s.
///
/// Orientation note: JEM mappings are strand-free (canonical k-mers), so
/// contig orientation within a scaffold is not determined by the sketch
/// layer; contigs are emitted in input orientation and a downstream
/// polisher is expected to orient them (the paper's workflow delegates the
/// same way). Scaffold ids are `scaffold_<i>` with a member list in the
/// description.
pub fn scaffold_records(
    paths: &[ScaffoldPath],
    contigs: &[SeqRecord],
    gap_n: usize,
) -> Vec<SeqRecord> {
    let mut out = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let mut seq = Vec::new();
        for (j, &cid) in path.contigs.iter().enumerate() {
            if j > 0 {
                seq.extend(std::iter::repeat_n(b'N', gap_n));
            }
            seq.extend_from_slice(&contigs[cid as usize].seq);
        }
        let members: Vec<&str> = path
            .contigs
            .iter()
            .map(|&c| contigs[c as usize].id.as_str())
            .collect();
        out.push(SeqRecord {
            id: format!("scaffold_{i}"),
            desc: Some(format!("members={}", members.join(","))),
            seq,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contig(id: usize, base: u8, len: usize) -> SeqRecord {
        SeqRecord::new(format!("c{id}"), vec![base; len])
    }

    #[test]
    fn joins_with_gaps() {
        let contigs = vec![contig(0, b'A', 10), contig(1, b'C', 5)];
        let paths = vec![ScaffoldPath {
            contigs: vec![0, 1],
        }];
        let recs = scaffold_records(&paths, &contigs, 3);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq.len(), 10 + 3 + 5);
        assert_eq!(&recs[0].seq[10..13], b"NNN");
        assert_eq!(recs[0].desc.as_deref(), Some("members=c0,c1"));
    }

    #[test]
    fn singleton_has_no_gap() {
        let contigs = vec![contig(0, b'G', 7)];
        let paths = vec![ScaffoldPath { contigs: vec![0] }];
        let recs = scaffold_records(&paths, &contigs, 100);
        assert_eq!(recs[0].seq, vec![b'G'; 7]);
    }

    #[test]
    fn zero_gap_concatenates() {
        let contigs = vec![contig(0, b'A', 2), contig(1, b'T', 2)];
        let paths = vec![ScaffoldPath {
            contigs: vec![1, 0],
        }];
        let recs = scaffold_records(&paths, &contigs, 0);
        assert_eq!(recs[0].seq, b"TTAA".to_vec());
    }
}
