//! # jem-scaffold — hybrid scaffolding on top of JEM-mapper
//!
//! The paper motivates L2C mapping as the bottleneck step of *hybrid
//! scaffolding*: a long read whose prefix maps to one contig and whose
//! suffix maps to another proves those contigs are nearby on the genome
//! (paper Fig. 1), and its end-segment strategy deliberately reports "the
//! farthest separated pair of contigs that are linked by this long read".
//! This crate completes that workflow (one of the paper's named future
//! directions — "end-to-end hybrid assembly and scaffolding"):
//!
//! 1. [`links`] — collect contig–contig links from end-segment mappings
//!    and aggregate read support;
//! 2. [`graph`] — build the scaffold graph and extract simple paths
//!    greedily by support (each contig joins at most two neighbours; cycles
//!    are refused);
//! 3. [`output`] — emit scaffold sequences (contigs joined by `N` gaps) as
//!    FASTA-ready records;
//! 4. [`stats`] — assembly statistics (N50/N90, totals) for before/after
//!    comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod links;
pub mod output;
pub mod stats;

pub use graph::{ScaffoldGraph, ScaffoldPath};
pub use links::{collect_links, ContigLink};
pub use output::scaffold_records;
pub use stats::AssemblyStats;

use jem_core::Mapping;
use jem_seq::SeqRecord;

/// Scaffolding parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaffoldParams {
    /// Minimum number of supporting reads for a link to be used.
    pub min_support: u32,
    /// Number of `N` bases inserted between joined contigs.
    pub gap_n: usize,
}

impl Default for ScaffoldParams {
    fn default() -> Self {
        ScaffoldParams {
            min_support: 2,
            gap_n: 100,
        }
    }
}

/// End-to-end scaffolding: mappings → links → paths → scaffold records.
///
/// `contigs` must be the same subject set (same order) the mappings were
/// produced against.
pub fn scaffold(
    mappings: &[Mapping],
    contigs: &[SeqRecord],
    params: &ScaffoldParams,
) -> Vec<SeqRecord> {
    let links = collect_links(mappings);
    let graph = ScaffoldGraph::from_links(&links, contigs.len(), params.min_support);
    let paths = graph.greedy_paths();
    scaffold_records(&paths, contigs, params.gap_n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_core::ReadEnd;

    fn mapping(read: u32, end: ReadEnd, subject: u32) -> Mapping {
        Mapping {
            read_idx: read,
            end,
            subject,
            hits: 10,
        }
    }

    fn contig(id: usize, len: usize) -> SeqRecord {
        SeqRecord::new(format!("c{id}"), vec![b"ACGT"[id % 4]; len])
    }

    #[test]
    fn end_to_end_two_contig_join() {
        let contigs = vec![contig(0, 1000), contig(1, 800), contig(2, 500)];
        // Two reads both bridge c0 and c1; c2 stays isolated.
        let mappings = vec![
            mapping(0, ReadEnd::Prefix, 0),
            mapping(0, ReadEnd::Suffix, 1),
            mapping(1, ReadEnd::Prefix, 1),
            mapping(1, ReadEnd::Suffix, 0),
        ];
        let scaffolds = scaffold(&mappings, &contigs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 2, "c0+c1 joined, c2 alone");
        let joined = scaffolds
            .iter()
            .find(|s| s.seq.len() > 1000)
            .expect("joined scaffold");
        assert_eq!(joined.seq.len(), 1000 + 100 + 800);
        assert!(joined.seq.contains(&b'N'), "gap bases present");
    }

    #[test]
    fn weak_links_ignored() {
        let contigs = vec![contig(0, 1000), contig(1, 800)];
        // Only one supporting read < min_support 2.
        let mappings = vec![
            mapping(0, ReadEnd::Prefix, 0),
            mapping(0, ReadEnd::Suffix, 1),
        ];
        let scaffolds = scaffold(&mappings, &contigs, &ScaffoldParams::default());
        assert_eq!(scaffolds.len(), 2, "weak link must not join");
        let scaffolds = scaffold(
            &mappings,
            &contigs,
            &ScaffoldParams {
                min_support: 1,
                ..Default::default()
            },
        );
        assert_eq!(scaffolds.len(), 1, "min_support 1 joins");
    }
}
