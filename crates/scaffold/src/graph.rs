//! The scaffold graph and greedy path extraction.

use crate::links::ContigLink;
use jem_index::SubjectId;

/// A scaffold: an ordered walk of contig ids (singletons allowed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScaffoldPath {
    /// Contig ids in walk order.
    pub contigs: Vec<SubjectId>,
}

/// The accepted-link graph over contigs (max degree 2, acyclic).
#[derive(Clone, Debug)]
pub struct ScaffoldGraph {
    n_contigs: usize,
    /// Accepted neighbours per contig (0..=2 entries).
    adj: Vec<Vec<SubjectId>>,
}

impl ScaffoldGraph {
    /// Greedily accept links in support order, refusing any link that
    /// would give a contig degree > 2 or close a cycle. `links` must be
    /// support-sorted (as produced by [`crate::collect_links`]).
    pub fn from_links(links: &[ContigLink], n_contigs: usize, min_support: u32) -> Self {
        let mut adj: Vec<Vec<SubjectId>> = vec![Vec::new(); n_contigs];
        // Union-find for cycle refusal.
        let mut parent: Vec<u32> = (0..n_contigs as u32).collect();
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for link in links {
            if link.support < min_support {
                continue; // sorted by support: everything after is weaker,
                          // but stay robust to unsorted input and keep going
            }
            let (a, b) = (link.a as usize, link.b as usize);
            if a >= n_contigs || b >= n_contigs || a == b {
                continue;
            }
            if adj[a].len() >= 2 || adj[b].len() >= 2 {
                continue;
            }
            let (ra, rb) = (find(&mut parent, link.a), find(&mut parent, link.b));
            if ra == rb {
                continue; // cycle
            }
            parent[ra as usize] = rb;
            adj[a].push(link.b);
            adj[b].push(link.a);
        }
        ScaffoldGraph { n_contigs, adj }
    }

    /// Number of accepted links.
    pub fn n_links(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Extract every path (including singleton contigs), deterministic:
    /// each path starts from its smallest-id endpoint; paths are ordered by
    /// that endpoint.
    pub fn greedy_paths(&self) -> Vec<ScaffoldPath> {
        let mut visited = vec![false; self.n_contigs];
        let mut paths = Vec::new();
        // Degree ≤ 1 nodes are path endpoints; walk from each unvisited one.
        for start in 0..self.n_contigs {
            if visited[start] || self.adj[start].len() > 1 {
                continue;
            }
            let mut path = vec![start as SubjectId];
            visited[start] = true;
            let mut prev = start as SubjectId;
            let mut cur = self.adj[start].first().copied();
            while let Some(c) = cur {
                if visited[c as usize] {
                    break;
                }
                visited[c as usize] = true;
                path.push(c);
                let next = self.adj[c as usize].iter().copied().find(|&n| n != prev);
                prev = c;
                cur = next;
            }
            paths.push(ScaffoldPath { contigs: path });
        }
        // Degree-2 leftovers would be cycles; the builder refuses cycles,
        // so everything is visited here — but stay defensive.
        debug_assert!(visited.iter().all(|&v| v), "cycle slipped past the builder");
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(a: u32, b: u32, support: u32) -> ContigLink {
        ContigLink {
            a: a.min(b),
            b: a.max(b),
            support,
            total_hits: support * 10,
        }
    }

    #[test]
    fn chain_of_three() {
        let g = ScaffoldGraph::from_links(&[link(0, 1, 5), link(1, 2, 4)], 4, 1);
        assert_eq!(g.n_links(), 2);
        let paths = g.greedy_paths();
        assert_eq!(paths.len(), 2); // [0,1,2] and [3]
        assert_eq!(paths[0].contigs, vec![0, 1, 2]);
        assert_eq!(paths[1].contigs, vec![3]);
    }

    #[test]
    fn cycle_refused() {
        let g = ScaffoldGraph::from_links(&[link(0, 1, 5), link(1, 2, 4), link(0, 2, 3)], 3, 1);
        assert_eq!(g.n_links(), 2, "the closing edge must be refused");
        let paths = g.greedy_paths();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].contigs.len(), 3);
    }

    #[test]
    fn degree_cap_prefers_stronger_links() {
        // Node 1 has three candidate neighbours; only the two strongest fit.
        let g = ScaffoldGraph::from_links(&[link(1, 0, 9), link(1, 2, 8), link(1, 3, 7)], 4, 1);
        assert_eq!(g.n_links(), 2);
        let paths = g.greedy_paths();
        // Path 0-1-2 plus singleton 3.
        let big = paths.iter().find(|p| p.contigs.len() == 3).expect("chain");
        assert!(big.contigs.contains(&0) && big.contigs.contains(&2));
        assert!(paths.iter().any(|p| p.contigs == vec![3]));
    }

    #[test]
    fn min_support_filters() {
        let g = ScaffoldGraph::from_links(&[link(0, 1, 1)], 2, 2);
        assert_eq!(g.n_links(), 0);
        assert_eq!(g.greedy_paths().len(), 2);
    }

    #[test]
    fn empty_graph_all_singletons() {
        let g = ScaffoldGraph::from_links(&[], 5, 1);
        let paths = g.greedy_paths();
        assert_eq!(paths.len(), 5);
        assert!(paths.iter().all(|p| p.contigs.len() == 1));
    }

    #[test]
    fn out_of_range_links_ignored() {
        let g = ScaffoldGraph::from_links(&[link(0, 9, 5)], 2, 1);
        assert_eq!(g.n_links(), 0);
    }
}
