//! Assembly statistics (N50-family metrics).

/// Summary statistics of a sequence set (contigs or scaffolds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Number of sequences.
    pub count: usize,
    /// Total bases.
    pub total: usize,
    /// Longest sequence.
    pub longest: usize,
    /// N50: the length such that sequences ≥ it hold ≥ half the bases.
    pub n50: usize,
    /// N90: the length such that sequences ≥ it hold ≥ 90% of the bases.
    pub n90: usize,
}

impl AssemblyStats {
    /// Compute statistics from sequence lengths.
    pub fn from_lengths(lengths: impl IntoIterator<Item = usize>) -> Self {
        let mut lens: Vec<usize> = lengths.into_iter().collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let nx = |frac_num: usize, frac_den: usize| -> usize {
            let threshold = total * frac_num;
            let mut acc = 0usize;
            for &l in &lens {
                acc += l;
                if acc * frac_den >= threshold {
                    return l;
                }
            }
            0
        };
        AssemblyStats {
            count: lens.len(),
            total,
            longest: lens.first().copied().unwrap_or(0),
            n50: if total == 0 { 0 } else { nx(1, 2) },
            n90: if total == 0 { 0 } else { nx(9, 10) },
        }
    }
}

impl std::fmt::Display for AssemblyStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sequences, {} bp total, longest {}, N50 {}, N90 {}",
            self.count, self.total, self.longest, self.n50, self.n90
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_n50() {
        // Lengths 80, 70, 50, 40, 30, 20 → total 290, half = 145;
        // 80+70 = 150 ≥ 145 → N50 = 70.
        let s = AssemblyStats::from_lengths([50, 80, 20, 30, 70, 40]);
        assert_eq!(s.count, 6);
        assert_eq!(s.total, 290);
        assert_eq!(s.longest, 80);
        assert_eq!(s.n50, 70);
        // 90% = 261; 80+70+50+40 = 240 < 261; +30 = 270 ≥ → N90 = 30.
        assert_eq!(s.n90, 30);
    }

    #[test]
    fn single_sequence() {
        let s = AssemblyStats::from_lengths([1234]);
        assert_eq!(s.n50, 1234);
        assert_eq!(s.n90, 1234);
        assert_eq!(s.longest, 1234);
    }

    #[test]
    fn empty_set() {
        let s = AssemblyStats::from_lengths([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.n50, 0);
        assert_eq!(s.n90, 0);
    }

    #[test]
    fn equal_lengths() {
        let s = AssemblyStats::from_lengths([100; 10]);
        assert_eq!(s.n50, 100);
        assert_eq!(s.n90, 100);
    }

    #[test]
    fn display_formats() {
        let s = AssemblyStats::from_lengths([10, 20]);
        let text = s.to_string();
        assert!(text.contains("2 sequences"));
        assert!(text.contains("30 bp"));
    }
}
