//! Property-based tests for the scaffolding layer.

use jem_core::{Mapping, ReadEnd};
use jem_scaffold::{collect_links, scaffold_records, AssemblyStats, ScaffoldGraph};
use proptest::prelude::*;

proptest! {
    #[test]
    fn links_are_normalized_and_supported(
        bridges in prop::collection::vec((0u32..20, 0u32..20), 0..60),
    ) {
        let mut mappings = Vec::new();
        for (i, (a, b)) in bridges.iter().enumerate() {
            mappings.push(Mapping { read_idx: i as u32, end: ReadEnd::Prefix, subject: *a, hits: 5 });
            mappings.push(Mapping { read_idx: i as u32, end: ReadEnd::Suffix, subject: *b, hits: 5 });
        }
        let links = collect_links(&mappings);
        let bridging = bridges.iter().filter(|(a, b)| a != b).count();
        let total_support: u32 = links.iter().map(|l| l.support).sum();
        prop_assert_eq!(total_support as usize, bridging, "every bridging read counts once");
        for l in &links {
            prop_assert!(l.a < l.b, "links must be normalized");
            prop_assert!(l.support >= 1);
            prop_assert_eq!(l.total_hits, l.support * 10);
        }
        // Sorted by support descending.
        for w in links.windows(2) {
            prop_assert!(w[0].support >= w[1].support);
        }
    }

    #[test]
    fn graph_respects_degree_and_acyclicity(
        bridges in prop::collection::vec((0u32..15, 0u32..15), 0..80),
    ) {
        let mut mappings = Vec::new();
        for (i, (a, b)) in bridges.iter().enumerate() {
            mappings.push(Mapping { read_idx: i as u32, end: ReadEnd::Prefix, subject: *a, hits: 1 });
            mappings.push(Mapping { read_idx: i as u32, end: ReadEnd::Suffix, subject: *b, hits: 1 });
        }
        let links = collect_links(&mappings);
        let graph = ScaffoldGraph::from_links(&links, 15, 1);
        let paths = graph.greedy_paths();
        // Paths partition all contigs.
        let mut seen = [false; 15];
        for p in &paths {
            for &c in &p.contigs {
                prop_assert!(!seen[c as usize], "contig in two scaffolds");
                seen[c as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Edges accepted = nodes - paths (forest property).
        prop_assert_eq!(graph.n_links(), 15 - paths.len());
    }

    #[test]
    fn scaffold_records_preserve_bases(
        lens in prop::collection::vec(1usize..50, 1..10),
        gap in 0usize..20,
    ) {
        let contigs: Vec<jem_seq::SeqRecord> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| jem_seq::SeqRecord::new(format!("c{i}"), vec![b"ACGT"[i % 4]; l]))
            .collect();
        // One path holding everything, in order.
        let paths = vec![jem_scaffold::ScaffoldPath {
            contigs: (0..contigs.len() as u32).collect(),
        }];
        let recs = scaffold_records(&paths, &contigs, gap);
        prop_assert_eq!(recs.len(), 1);
        let expected_len: usize = lens.iter().sum::<usize>() + gap * (lens.len() - 1);
        prop_assert_eq!(recs[0].seq.len(), expected_len);
        let n_count = recs[0].seq.iter().filter(|&&b| b == b'N').count();
        prop_assert_eq!(n_count, gap * (lens.len() - 1));
    }

    #[test]
    fn n50_bounds(lens in prop::collection::vec(1usize..10_000, 0..50)) {
        let s = AssemblyStats::from_lengths(lens.clone());
        prop_assert_eq!(s.count, lens.len());
        prop_assert_eq!(s.total, lens.iter().sum::<usize>());
        if !lens.is_empty() {
            let min = *lens.iter().min().unwrap();
            prop_assert!(s.n50 >= min && s.n50 <= s.longest);
            prop_assert!(s.n90 <= s.n50, "N90 is never above N50");
            prop_assert_eq!(s.longest, *lens.iter().max().unwrap());
        }
    }
}
