//! Property-based tests for the de Bruijn assembler substrate.

use jem_dbg::{assemble, count_canonical_kmers, extract_unitigs, AssemblyParams, DeBruijnGraph};
use jem_seq::alphabet::revcomp_bytes;
use proptest::prelude::*;

fn dna(min: usize, max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), min..max)
}

/// Error-free tiling reads of both strands.
fn tile(genome: &[u8], read_len: usize, stride: usize) -> Vec<Vec<u8>> {
    let mut reads = Vec::new();
    let mut pos = 0;
    while pos + read_len <= genome.len() {
        let r = genome[pos..pos + read_len].to_vec();
        reads.push(if pos % 2 == 0 { r } else { revcomp_bytes(&r) });
        pos += stride;
    }
    reads.push(genome[genome.len().saturating_sub(read_len)..].to_vec());
    reads
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn counts_strand_invariant(seqs in prop::collection::vec(dna(10, 120), 1..6), k in 2usize..8) {
        let k = k * 2 + 1; // odd 5..=15
        let fwd = count_canonical_kmers(seqs.iter().map(Vec::as_slice), k);
        let rc: Vec<Vec<u8>> = seqs.iter().map(|s| revcomp_bytes(s)).collect();
        let rev = count_canonical_kmers(rc.iter().map(Vec::as_slice), k);
        prop_assert_eq!(fwd.len(), rev.len());
        for (code, count) in fwd.iter() {
            prop_assert_eq!(rev.get(code), Some(count));
        }
    }

    #[test]
    fn unitigs_partition_graph_nodes(seq in dna(100, 600)) {
        let counts = count_canonical_kmers([seq.as_slice()].into_iter(), 11);
        let g = DeBruijnGraph::from_counts(&counts, 11, 1);
        let total_path_nodes: usize = g.unitig_paths().iter().map(|p| p.nodes.len()).sum();
        prop_assert_eq!(total_path_nodes, g.len());
    }

    #[test]
    fn unitig_sequences_walk_the_graph(seq in dna(100, 500)) {
        let counts = count_canonical_kmers([seq.as_slice()].into_iter(), 9);
        let g = DeBruijnGraph::from_counts(&counts, 9, 1);
        for u in extract_unitigs(&g) {
            prop_assert!(u.len() >= 9);
            for w in u.windows(9) {
                let code = jem_seq::Kmer::from_bytes(w).unwrap().code();
                prop_assert!(g.contains_oriented(code), "unitig window not in graph");
            }
        }
    }

    #[test]
    fn perfect_assembly_contigs_are_substrings(seed_seq in dna(2_000, 6_000)) {
        let reads = tile(&seed_seq, 100, 25);
        let params = AssemblyParams { k: 21, min_abundance: 1, min_contig_len: 100, tip_len: 0 };
        let contigs = assemble(&reads, &params);
        let text = String::from_utf8(seed_seq.clone()).unwrap();
        let rc_text = String::from_utf8(revcomp_bytes(&seed_seq)).unwrap();
        for c in &contigs {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            prop_assert!(
                text.contains(&s) || rc_text.contains(&s),
                "contig not a substring (len {})", s.len()
            );
        }
        // Assembly must cover a decent share of the genome.
        let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
        prop_assert!(total * 10 >= seed_seq.len() * 7, "covered {total}/{}", seed_seq.len());
    }

    #[test]
    fn assembly_deterministic(seed_seq in dna(1_000, 3_000)) {
        let reads = tile(&seed_seq, 80, 20);
        let params = AssemblyParams { k: 17, min_abundance: 1, min_contig_len: 100, tip_len: 0 };
        let a = assemble(&reads, &params);
        let b = assemble(&reads, &params);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn higher_abundance_never_adds_nodes(seqs in prop::collection::vec(dna(50, 200), 1..5)) {
        let counts = count_canonical_kmers(seqs.iter().map(Vec::as_slice), 11);
        let g1 = DeBruijnGraph::from_counts(&counts, 11, 1);
        let g2 = DeBruijnGraph::from_counts(&counts, 11, 2);
        let g3 = DeBruijnGraph::from_counts(&counts, 11, 3);
        prop_assert!(g1.len() >= g2.len());
        prop_assert!(g2.len() >= g3.len());
    }
}
