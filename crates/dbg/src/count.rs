//! Canonical k-mer counting.

use jem_index::U64Map;
use jem_seq::CanonicalKmerIter;

/// Count canonical k-mers over a collection of sequences.
///
/// Ambiguous bases break k-mer runs (handled by the iterator); counts
/// saturate at `u32::MAX`.
pub fn count_canonical_kmers<'a>(seqs: impl Iterator<Item = &'a [u8]>, k: usize) -> U64Map<u32> {
    let mut counts: U64Map<u32> = U64Map::with_capacity(1 << 16);
    for seq in seqs {
        if let Ok(iter) = CanonicalKmerIter::new(seq, k) {
            for (_, kmer) in iter {
                let c = counts.get_or_insert_with(kmer.code(), || 0);
                *c = c.saturating_add(1);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::Kmer;

    #[test]
    fn counts_simple_sequence() {
        // ACGTA: 3-mers ACG(→ACG? canonical of ACG = min(ACG, CGT)=ACG),
        // CGT(canonical ACG), GTA(canonical GTA vs TAC → GTA<TAC so GTA).
        let counts = count_canonical_kmers([&b"ACGTA"[..]].into_iter(), 3);
        let acg = Kmer::from_bytes(b"ACG").unwrap().canonical().code();
        let gta = Kmer::from_bytes(b"GTA").unwrap().canonical().code();
        assert_eq!(
            counts.get(acg),
            Some(&2),
            "ACG and CGT share a canonical form"
        );
        assert_eq!(counts.get(gta), Some(&1));
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn strand_invariant_counts() {
        let fwd = b"ACGGTTACGATTTACCAG".to_vec();
        let rev = jem_seq::alphabet::revcomp_bytes(&fwd);
        let a = count_canonical_kmers([fwd.as_slice()].into_iter(), 5);
        let b = count_canonical_kmers([rev.as_slice()].into_iter(), 5);
        assert_eq!(a.len(), b.len());
        for (code, count) in a.iter() {
            assert_eq!(b.get(code), Some(count));
        }
    }

    #[test]
    fn multiple_sequences_accumulate() {
        let counts =
            count_canonical_kmers([&b"AAAA"[..], &b"AAAA"[..], &b"TTTT"[..]].into_iter(), 4);
        // AAAA and TTTT are the same canonical 4-mer: total 3.
        assert_eq!(counts.get(0), Some(&3));
    }

    #[test]
    fn ambiguous_bases_skipped() {
        let counts = count_canonical_kmers([&b"ACGTNACGT"[..]].into_iter(), 4);
        // Each run contributes 1 ACGT (palindromic canonical).
        let acgt = Kmer::from_bytes(b"ACGT").unwrap().code();
        assert_eq!(counts.get(acgt), Some(&2));
    }

    #[test]
    fn empty_input() {
        let counts = count_canonical_kmers(std::iter::empty(), 5);
        assert_eq!(counts.len(), 0);
    }
}
