//! Unitig sequence reconstruction from graph paths.

use crate::graph::{DeBruijnGraph, UnitigPath};
use jem_seq::Kmer;

/// Spell the base sequence of a path of oriented k-mer codes.
pub fn spell_path(path: &UnitigPath, k: usize) -> Vec<u8> {
    let mut seq = Kmer::from_code(path.nodes[0], k)
        .expect("valid code")
        .to_bytes();
    seq.reserve(path.nodes.len() - 1);
    for &code in &path.nodes[1..] {
        let last_base = (code & 3) as u8;
        seq.push(jem_seq::alphabet::decode_base(last_base));
    }
    seq
}

/// Extract all unitig sequences of the graph.
pub fn extract_unitigs(graph: &DeBruijnGraph) -> Vec<Vec<u8>> {
    graph
        .unitig_paths()
        .iter()
        .map(|p| spell_path(p, graph.k()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_canonical_kmers;
    use jem_seq::alphabet::revcomp_bytes;

    fn graph_of(seqs: &[&[u8]], k: usize) -> DeBruijnGraph {
        let counts = count_canonical_kmers(seqs.iter().copied(), k);
        DeBruijnGraph::from_counts(&counts, k, 1)
    }

    #[test]
    fn spell_reconstructs_the_input() {
        let input = b"ACGGTCATTCAGGAT";
        let g = graph_of(&[input], 5);
        let unitigs = extract_unitigs(&g);
        assert_eq!(unitigs.len(), 1);
        // The unitig equals the input or its reverse complement (orientation
        // is normalized to the lexicographically smaller direction).
        let u = &unitigs[0];
        assert!(
            u == &input.to_vec() || u == &revcomp_bytes(input),
            "got {}",
            String::from_utf8_lossy(u)
        );
    }

    #[test]
    fn consecutive_kmers_overlap_correctly() {
        let input = b"TTGACCAGTACCA";
        let g = graph_of(&[input], 7);
        for p in g.unitig_paths() {
            let seq = spell_path(&p, 7);
            assert_eq!(seq.len(), p.base_len(7));
            // Every window of the spelled sequence must be a graph node.
            for w in seq.windows(7) {
                let code = jem_seq::Kmer::from_bytes(w).unwrap().code();
                assert!(g.contains_oriented(code));
            }
        }
    }

    #[test]
    fn orientation_deterministic() {
        let input = b"ACGGTCATTCAGGAT";
        let a = extract_unitigs(&graph_of(&[input], 5));
        let b = extract_unitigs(&graph_of(&[&revcomp_bytes(input)], 5));
        assert_eq!(a, b, "unitig output must be strand-independent");
    }
}
