//! # jem-dbg — a de Bruijn graph assembler substrate (Minia substitute)
//!
//! The paper constructs its contig sets by assembling simulated Illumina
//! reads with Minia. This crate provides that pipeline stage from scratch:
//!
//! 1. [`count::count_canonical_kmers`] — canonical k-mer counting over the
//!    read set;
//! 2. [`graph::DeBruijnGraph`] — the node-centric de Bruijn graph over
//!    *solid* k-mers (count ≥ abundance threshold, which removes almost all
//!    sequencing-error k-mers);
//! 3. [`unitig`] — maximal non-branching path (unitig) extraction with
//!    orientation handling on canonical k-mers;
//! 4. [`assemble`] — the end-to-end driver with tip clipping and a minimum
//!    contig length filter (the paper keeps contigs ≥ 500 bp).
//!
//! The output has the properties the mapping paper relies on: a fragmented,
//! non-redundant tiling of the genome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count;
pub mod graph;
pub mod unitig;

pub use count::count_canonical_kmers;
pub use graph::DeBruijnGraph;
pub use unitig::extract_unitigs;

use jem_seq::SeqRecord;

/// Assembly parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AssemblyParams {
    /// k-mer size (odd values avoid palindromic k-mers; Minia-like: 31).
    pub k: usize,
    /// Minimum k-mer count to be considered solid (error filtering).
    pub min_abundance: u32,
    /// Minimum emitted contig length in bases.
    pub min_contig_len: usize,
    /// Unitigs at graph dead-ends shorter than this are clipped as tips.
    pub tip_len: usize,
}

impl Default for AssemblyParams {
    fn default() -> Self {
        AssemblyParams {
            k: 31,
            min_abundance: 3,
            min_contig_len: 500,
            tip_len: 93,
        }
    }
}

/// Assemble short reads into contigs.
///
/// Pipeline: count → threshold → graph → tip clipping → unitigs → length
/// filter. Deterministic for a fixed read set.
pub fn assemble(reads: &[Vec<u8>], params: &AssemblyParams) -> Vec<SeqRecord> {
    let counts = count_canonical_kmers(reads.iter().map(Vec::as_slice), params.k);
    let mut graph = DeBruijnGraph::from_counts(&counts, params.k, params.min_abundance);
    graph.clip_tips(params.tip_len);
    let mut unitigs = extract_unitigs(&graph);
    unitigs.retain(|u| u.len() >= params.min_contig_len);
    // Deterministic order: longest first, then lexicographic.
    unitigs.sort_unstable_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    unitigs
        .into_iter()
        .enumerate()
        .map(|(i, seq)| SeqRecord::new(format!("contig_{i}"), seq))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;

    fn rng_genome(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    /// Perfect tiling reads (error-free, both strands).
    fn tiled_reads(genome: &[u8], read_len: usize, stride: usize) -> Vec<Vec<u8>> {
        let mut reads = Vec::new();
        let mut pos = 0;
        let mut flip = false;
        while pos + read_len <= genome.len() {
            let r = genome[pos..pos + read_len].to_vec();
            reads.push(if flip { revcomp_bytes(&r) } else { r });
            flip = !flip;
            pos += stride;
        }
        // Ensure the tail is covered.
        reads.push(genome[genome.len() - read_len..].to_vec());
        reads
    }

    #[test]
    fn perfect_reads_reassemble_the_genome() {
        let genome = rng_genome(20_000, 42);
        let reads = tiled_reads(&genome, 100, 20);
        let params = AssemblyParams {
            k: 25,
            min_abundance: 1,
            min_contig_len: 200,
            tip_len: 0,
        };
        let contigs = assemble(&reads, &params);
        assert!(!contigs.is_empty());
        let total: usize = contigs.iter().map(|c| c.seq.len()).sum();
        assert!(
            total as f64 > genome.len() as f64 * 0.95,
            "assembly covers only {total} of {} bases",
            genome.len()
        );
        // A random 20 kb genome has no repeated 25-mers: expect one contig
        // spanning (nearly) the whole genome.
        assert!(contigs[0].seq.len() as f64 > genome.len() as f64 * 0.95);
    }

    #[test]
    fn contigs_are_genome_substrings() {
        let genome = rng_genome(10_000, 7);
        let reads = tiled_reads(&genome, 80, 15);
        let params = AssemblyParams {
            k: 21,
            min_abundance: 1,
            min_contig_len: 100,
            tip_len: 0,
        };
        let text = String::from_utf8(genome.clone()).unwrap();
        let rc_text = String::from_utf8(revcomp_bytes(&genome)).unwrap();
        for c in assemble(&reads, &params) {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            assert!(
                text.contains(&s) || rc_text.contains(&s),
                "contig of length {} is not a genome substring",
                s.len()
            );
        }
    }

    #[test]
    fn abundance_threshold_removes_error_kmers() {
        let genome = rng_genome(5_000, 3);
        let mut reads = tiled_reads(&genome, 100, 10); // ~10x coverage
                                                       // Inject one singleton read full of errors (mutate every 10th base).
        let mut bad = genome[1000..1100].to_vec();
        for i in (0..bad.len()).step_by(10) {
            bad[i] = match bad[i] {
                b'A' => b'C',
                b'C' => b'G',
                b'G' => b'T',
                _ => b'A',
            };
        }
        reads.push(bad);
        let params = AssemblyParams {
            k: 21,
            min_abundance: 3,
            min_contig_len: 100,
            tip_len: 63,
        };
        let contigs = assemble(&reads, &params);
        let text = String::from_utf8(genome.clone()).unwrap();
        let rc_text = String::from_utf8(revcomp_bytes(&genome)).unwrap();
        for c in &contigs {
            let s = String::from_utf8(c.seq.clone()).unwrap();
            assert!(
                text.contains(&s) || rc_text.contains(&s),
                "error k-mers leaked into contigs"
            );
        }
        assert!(!contigs.is_empty());
    }

    #[test]
    fn repeat_fragments_the_assembly() {
        // A genome with an exact interior repeat longer than k must break
        // into multiple contigs (the defining limitation of short-read DBG
        // assembly — and the reason the mapping problem exists at all).
        let a = rng_genome(4_000, 11);
        let repeat = rng_genome(400, 12);
        let b = rng_genome(4_000, 13);
        let mut genome = a;
        genome.extend_from_slice(&repeat);
        genome.extend_from_slice(&b[..2000]);
        genome.extend_from_slice(&repeat);
        genome.extend_from_slice(&b[2000..]);
        let reads = tiled_reads(&genome, 100, 10);
        let params = AssemblyParams {
            k: 25,
            min_abundance: 1,
            min_contig_len: 100,
            tip_len: 0,
        };
        let contigs = assemble(&reads, &params);
        assert!(
            contigs.len() >= 3,
            "repeat must fragment assembly, got {} contigs",
            contigs.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let params = AssemblyParams::default();
        assert!(assemble(&[], &params).is_empty());
        assert!(assemble(&[b"ACGT".to_vec()], &params).is_empty());
    }
}
