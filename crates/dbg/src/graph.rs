//! Node-centric de Bruijn graph over solid canonical k-mers.
//!
//! Nodes are canonical k-mer codes; edges are implicit (two nodes are
//! adjacent if some orientation of one extends to an orientation of the
//! other by one base). Orientation is carried by using *oriented* codes
//! (plain, possibly non-canonical packed k-mers) during traversal and
//! canonicalizing only for membership tests — the standard bidirected-DBG
//! technique.

use jem_index::U64Map;
use jem_seq::kmer::{kmer_mask, revcomp_code};

/// The de Bruijn graph: solid canonical k-mers with implicit edges.
#[derive(Clone, Debug)]
pub struct DeBruijnGraph {
    k: usize,
    mask: u64,
    solid: U64Map<u32>,
}

/// A maximal non-branching path, as oriented k-mer codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnitigPath {
    /// Oriented codes along the path (consistent orientation).
    pub nodes: Vec<u64>,
    /// True if the first node has no predecessor (left dead end).
    pub left_dead: bool,
    /// True if the last node has no successor (right dead end).
    pub right_dead: bool,
}

impl UnitigPath {
    /// Path length in bases: `k + nodes − 1`.
    pub fn base_len(&self, k: usize) -> usize {
        k + self.nodes.len() - 1
    }
}

impl DeBruijnGraph {
    /// Keep k-mers with `count ≥ min_abundance` as graph nodes.
    ///
    /// # Panics
    /// Panics if `k` is even (palindromic k-mers would make orientation
    /// ambiguous; assemblers use odd `k` for exactly this reason) or out of
    /// range.
    pub fn from_counts(counts: &U64Map<u32>, k: usize, min_abundance: u32) -> Self {
        assert!(k % 2 == 1, "de Bruijn k must be odd (got {k})");
        assert!(k <= jem_seq::kmer::MAX_K, "k must be <= 32");
        let mut solid = U64Map::with_capacity(counts.len());
        for (code, &count) in counts.iter() {
            if count >= min_abundance {
                solid.insert(code, count);
            }
        }
        DeBruijnGraph {
            k,
            mask: kmer_mask(k),
            solid,
        }
    }

    /// k-mer size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of solid nodes.
    pub fn len(&self) -> usize {
        self.solid.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.solid.is_empty()
    }

    /// Canonical form of an oriented code.
    #[inline]
    pub fn canonical(&self, oriented: u64) -> u64 {
        oriented.min(revcomp_code(oriented, self.k))
    }

    /// Is the (oriented) k-mer a node of the graph?
    #[inline]
    pub fn contains_oriented(&self, oriented: u64) -> bool {
        self.solid.contains_key(self.canonical(oriented))
    }

    /// Abundance of a node (by any orientation).
    pub fn abundance(&self, oriented: u64) -> Option<u32> {
        self.solid.get(self.canonical(oriented)).copied()
    }

    /// Oriented successors of an oriented k-mer (≤ 4).
    pub fn successors(&self, oriented: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for b in 0u64..4 {
            let next = ((oriented << 2) | b) & self.mask;
            if self.contains_oriented(next) {
                out.push(next);
            }
        }
        out
    }

    /// Oriented predecessors of an oriented k-mer (≤ 4).
    pub fn predecessors(&self, oriented: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for b in 0u64..4 {
            let prev = (b << (2 * (self.k - 1))) | (oriented >> 2);
            if self.contains_oriented(prev) {
                out.push(prev);
            }
        }
        out
    }

    /// Iterate over canonical node codes.
    pub fn nodes(&self) -> impl Iterator<Item = u64> + '_ {
        self.solid.iter().map(|(code, _)| code)
    }

    /// Extract all maximal non-branching paths (each node appears in
    /// exactly one path). Deterministic: paths are discovered in ascending
    /// canonical-code order and each is returned in its canonical
    /// orientation (lexicographically smaller of the two directions).
    pub fn unitig_paths(&self) -> Vec<UnitigPath> {
        let mut order: Vec<u64> = self.nodes().collect();
        order.sort_unstable();
        let mut visited: U64Map<()> = U64Map::with_capacity(order.len());
        let mut paths = Vec::new();
        for v in order {
            if visited.contains_key(v) {
                continue;
            }
            let path = self.walk_maximal(v, &mut visited);
            paths.push(path);
        }
        paths
    }

    /// Build the maximal non-branching path through canonical node `v`,
    /// marking every traversed node visited.
    fn walk_maximal(&self, v: u64, visited: &mut U64Map<()>) -> UnitigPath {
        visited.insert(v, ());
        // Forward extension from v's stored (canonical) orientation.
        let mut fwd = vec![v];
        self.extend(&mut fwd, visited);
        // Backward: walk forward from the reverse complement, then flip.
        let mut bwd = vec![revcomp_code(v, self.k)];
        self.extend(&mut bwd, visited);
        // bwd = rc(v) -> x -> y means the path is rc(y) -> rc(x) -> v.
        let mut nodes: Vec<u64> = bwd[1..]
            .iter()
            .rev()
            .map(|&c| revcomp_code(c, self.k))
            .collect();
        nodes.extend(fwd);
        let left_dead = self.predecessors(nodes[0]).is_empty();
        let right_dead = self
            .successors(*nodes.last().expect("non-empty"))
            .is_empty();
        // Canonical orientation for determinism.
        let rc_nodes: Vec<u64> = nodes
            .iter()
            .rev()
            .map(|&c| revcomp_code(c, self.k))
            .collect();
        if rc_nodes < nodes {
            UnitigPath {
                nodes: rc_nodes,
                left_dead: right_dead,
                right_dead: left_dead,
            }
        } else {
            UnitigPath {
                nodes,
                left_dead,
                right_dead,
            }
        }
    }

    /// Extend `path` forward while the extension is unique in both
    /// directions (the unitig condition), stopping at visited nodes.
    fn extend(&self, path: &mut Vec<u64>, visited: &mut U64Map<()>) {
        loop {
            let cur = *path.last().expect("non-empty path");
            let succs = self.successors(cur);
            if succs.len() != 1 {
                return;
            }
            let next = succs[0];
            if self.predecessors(next).len() != 1 {
                return;
            }
            let canon = self.canonical(next);
            if visited.contains_key(canon) {
                return;
            }
            visited.insert(canon, ());
            path.push(next);
        }
    }

    /// Remove short dead-end branches (tips) of base length ≤ `max_len`.
    ///
    /// Runs removal rounds until a fixed point (bounded at 8 rounds, which
    /// is ample: each round shortens remaining tips by a full unitig).
    pub fn clip_tips(&mut self, max_len: usize) {
        if max_len == 0 {
            return;
        }
        for _ in 0..8 {
            let paths = self.unitig_paths();
            let mut removed_any = false;
            let mut keep: U64Map<u32> = U64Map::with_capacity(self.solid.len());
            for p in &paths {
                let is_tip = (p.left_dead ^ p.right_dead) && p.base_len(self.k) <= max_len;
                if is_tip {
                    removed_any = true;
                } else {
                    for &n in &p.nodes {
                        let canon = self.canonical(n);
                        let count = *self.solid.get(canon).expect("node exists");
                        keep.insert(canon, count);
                    }
                }
            }
            if !removed_any {
                return;
            }
            self.solid = keep;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::count_canonical_kmers;
    use jem_seq::Kmer;

    fn graph_of(seqs: &[&[u8]], k: usize, min_ab: u32) -> DeBruijnGraph {
        let counts = count_canonical_kmers(seqs.iter().copied(), k);
        DeBruijnGraph::from_counts(&counts, k, min_ab)
    }

    #[test]
    fn linear_sequence_single_path() {
        let g = graph_of(&[b"ACGGTCATTCAGGAT"], 5, 1);
        let paths = g.unitig_paths();
        assert_eq!(paths.len(), 1, "a simple sequence is one unitig");
        assert_eq!(paths[0].nodes.len(), g.len());
        assert!(paths[0].left_dead && paths[0].right_dead);
    }

    #[test]
    fn successors_follow_overlaps() {
        let g = graph_of(&[b"ACGGTCA"], 5, 1);
        let acggt = Kmer::from_bytes(b"ACGGT").unwrap().code();
        let succ = g.successors(acggt);
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0], Kmer::from_bytes(b"CGGTC").unwrap().code());
        let pred = g.predecessors(succ[0]);
        assert_eq!(pred, vec![acggt]);
    }

    #[test]
    fn abundance_threshold_filters() {
        let g = graph_of(&[b"ACGGTCA", b"ACGGTCA", b"TTTTTTT"], 5, 2);
        // TTTTT appears 3 times *within one read* (3 windows) — still solid.
        // Check an ACGGT-path k-mer (count 2) is solid at threshold 2 but
        // not at threshold 3.
        let acggt = Kmer::from_bytes(b"ACGGT").unwrap().code();
        assert!(g.contains_oriented(acggt));
        let g3 = graph_of(&[b"ACGGTCA", b"ACGGTCA", b"TTTTTTT"], 5, 3);
        assert!(!g3.contains_oriented(acggt));
    }

    #[test]
    fn branch_splits_paths() {
        // Two sequences sharing a core create a branch at the junction.
        let g = graph_of(&[b"AACCGGTCATT", b"CACCGGTCGAA"], 5, 1);
        let paths = g.unitig_paths();
        assert!(
            paths.len() >= 3,
            "branching graph must split, got {} paths",
            paths.len()
        );
        // Every node appears exactly once across paths.
        let total: usize = paths.iter().map(|p| p.nodes.len()).sum();
        assert_eq!(total, g.len());
    }

    #[test]
    fn paths_partition_nodes() {
        let g = graph_of(&[b"ACGGTCATTCAGGATACCAGTTGAC", b"GGTACCAGTTGACCCAGT"], 7, 1);
        let paths = g.unitig_paths();
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            for &n in &p.nodes {
                assert!(seen.insert(g.canonical(n)), "node visited twice");
            }
        }
        assert_eq!(seen.len(), g.len());
    }

    #[test]
    fn cycle_terminates() {
        // A circular sequence (repeat its start) would loop forever without
        // the visited check.
        let mut s = b"ACGGTCATTCAGG".to_vec();
        s.extend_from_slice(&s.clone()[..6]);
        let g = graph_of(&[&s], 5, 1);
        let paths = g.unitig_paths(); // must terminate
        assert!(!paths.is_empty());
    }

    #[test]
    fn clip_tips_removes_short_branch() {
        // Main path plus a 1-node erroneous stub branching off.
        let main = b"AACCGGTCATTCAGGATTTAACCATGGT";
        let g_before = graph_of(&[main], 7, 1);
        let n_before = g_before.len();
        // Stub: 7-mer overlapping a middle 6-mer of main, then diverging.
        let stub = b"GTCATTG"; // shares GTCATT with main, ends differently
        let stub_code = Kmer::from_bytes(stub).unwrap().code();
        let mut g = graph_of(&[main, stub], 7, 1);
        assert!(g.len() > n_before);
        assert!(g.contains_oriented(stub_code));
        g.clip_tips(10);
        assert!(!g.contains_oriented(stub_code), "stub tip must be clipped");
        // The main path survives nearly whole (the input has one canonical
        // 7-mer collision, so allow the clip to shave a node at the repeat).
        assert!(
            g.len() >= n_before - 2,
            "main path mostly intact: {} vs {n_before}",
            g.len()
        );
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_k_rejected() {
        let counts = count_canonical_kmers([&b"ACGT"[..]].into_iter(), 4);
        DeBruijnGraph::from_counts(&counts, 4, 1);
    }
}
