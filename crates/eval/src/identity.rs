//! Percent-identity distributions over mapped pairs (Fig. 9).

use crate::align::align_local;
use jem_seq::alphabet::revcomp_bytes;

/// Percent identity of a query end segment against its mapped contig —
/// BLAST-style: the identity of the best *local* alignment (identity over
/// the aligned region), strand-agnostic (the better of forward and
/// reverse-complement, since the mappers are strand-free via canonical
/// k-mers).
pub fn percent_identity(query: &[u8], subject: &[u8]) -> f64 {
    if query.is_empty() || subject.is_empty() {
        return 0.0;
    }
    let fwd = align_local(query, subject);
    let rc = align_local(&revcomp_bytes(query), subject);
    // Prefer the higher score; on score ties prefer the higher identity so
    // the result is strand-symmetric (query and revcomp(query) always see
    // the same candidate pair).
    if (rc.score, rc.identity()) > (fwd.score, fwd.identity()) {
        rc.identity()
    } else {
        fwd.identity()
    }
}

/// Histogram of percent identities (Fig. 9's x-axis bins).
#[derive(Clone, Debug)]
pub struct IdentityHistogram {
    /// Inclusive lower bound of each bin, in percent (e.g. 80, 85, …, 95).
    pub bin_edges: Vec<f64>,
    /// Count per bin; `counts[i]` covers `[bin_edges[i], next_edge)`.
    pub counts: Vec<usize>,
    /// Values below the first edge.
    pub below: usize,
}

impl IdentityHistogram {
    /// Histogram with bins `[edges[0], edges[1]), …, [edges.last(), 100]`.
    pub fn new(bin_edges: Vec<f64>) -> Self {
        assert!(!bin_edges.is_empty(), "need at least one bin edge");
        assert!(
            bin_edges.windows(2).all(|w| w[0] < w[1]),
            "edges must increase"
        );
        let n = bin_edges.len();
        IdentityHistogram {
            bin_edges,
            counts: vec![0; n],
            below: 0,
        }
    }

    /// The paper's Fig. 9 binning: 5-point bins from 80 to 100.
    pub fn fig9_bins() -> Self {
        IdentityHistogram::new(vec![80.0, 85.0, 90.0, 95.0])
    }

    /// Add one identity observation.
    pub fn add(&mut self, identity: f64) {
        match self.bin_edges.iter().rposition(|&e| identity >= e) {
            Some(i) => self.counts[i] += 1,
            None => self.below += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum::<usize>() + self.below
    }

    /// Fraction of observations at or above `edge` (must be a bin edge).
    pub fn fraction_at_or_above(&self, edge: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let start = self
            .bin_edges
            .iter()
            .position(|&e| (e - edge).abs() < 1e-9)
            .expect("edge must be one of the bin edges");
        self.counts[start..].iter().sum::<usize>() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_100() {
        assert_eq!(percent_identity(b"ACGTACGTAA", b"ACGTACGTAA"), 100.0);
    }

    #[test]
    fn revcomp_matches_100() {
        let q = b"AACCGGTTAGGT";
        let rc = revcomp_bytes(q);
        assert_eq!(percent_identity(&rc, q), 100.0);
    }

    #[test]
    fn interior_match_100() {
        let subject = b"TTTTTTTTTTAACCGGTTAGGTTTTTTTTTTTT";
        assert_eq!(percent_identity(b"AACCGGTTAGGT", subject), 100.0);
    }

    #[test]
    fn empty_inputs_zero() {
        assert_eq!(percent_identity(b"", b"ACGT"), 0.0);
        assert_eq!(percent_identity(b"ACGT", b""), 0.0);
    }

    #[test]
    fn histogram_binning() {
        let mut h = IdentityHistogram::fig9_bins();
        for v in [99.0, 97.0, 96.0, 92.0, 86.0, 81.0, 50.0] {
            h.add(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 3]); // [80,85) [85,90) [90,95) [95,100]
        assert_eq!(h.below, 1);
        assert_eq!(h.total(), 7);
        assert!((h.fraction_at_or_above(95.0) - 3.0 / 7.0).abs() < 1e-12);
        assert!((h.fraction_at_or_above(80.0) - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_values_bin_correctly() {
        let mut h = IdentityHistogram::fig9_bins();
        h.add(95.0);
        h.add(100.0);
        h.add(80.0);
        assert_eq!(h.counts, vec![1, 0, 0, 2]);
        assert_eq!(h.below, 0);
    }

    #[test]
    #[should_panic(expected = "edges must increase")]
    fn bad_edges_rejected() {
        IdentityHistogram::new(vec![90.0, 80.0]);
    }
}
