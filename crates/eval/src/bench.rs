//! Benchmark construction (paper Fig. 4).
//!
//! Given reference-genome coordinate intervals for every query end segment
//! and every contig, the set `Bench` of true `⟨read end, contig⟩` pairs
//! contains exactly the pairs whose intervals intersect in at least `k`
//! positions (`k` = the mapper's k-mer size: any smaller overlap cannot
//! even share one k-mer).

use std::collections::{HashMap, HashSet};

/// The set of true `⟨query, subject⟩` mappings, queryable per query.
///
/// ```
/// use jem_eval::Benchmark;
///
/// let subjects = vec![("c1".to_string(), (0u64, 5000u64))];
/// let queries = vec![
///     ("e1".to_string(), (100u64, 1100u64)),  // inside c1
///     ("e2".to_string(), (6000, 7000)),       // past c1
/// ];
/// let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
/// assert!(bench.contains("e1", "c1"));
/// assert!(!bench.contains("e2", "c1"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Benchmark {
    truth: HashMap<String, HashSet<String>>,
    n_pairs: usize,
}

impl Benchmark {
    /// Build from coordinate intervals.
    ///
    /// * `queries` — `(query key, (start, end))`, half-open genome interval
    ///   of each end segment;
    /// * `subjects` — `(subject key, (start, end))` per contig;
    /// * `k` — minimum intersection in bases.
    ///
    /// Runs in `O((|Q| + |S|)·log |S| + |Bench|)` via interval sweeping.
    pub fn from_coordinates(
        queries: &[(String, (u64, u64))],
        subjects: &[(String, (u64, u64))],
        k: u64,
    ) -> Self {
        assert!(k >= 1, "intersection threshold must be >= 1");
        // Sort subjects by start for binary-search range pruning.
        let mut sorted: Vec<(u64, u64, &str)> = subjects
            .iter()
            .map(|(id, (s, e))| (*s, *e, id.as_str()))
            .collect();
        sorted.sort_unstable();
        let starts: Vec<u64> = sorted.iter().map(|(s, _, _)| *s).collect();
        let max_len = sorted
            .iter()
            .map(|(s, e, _)| e.saturating_sub(*s))
            .max()
            .unwrap_or(0);

        let mut truth: HashMap<String, HashSet<String>> = HashMap::new();
        let mut n_pairs = 0usize;
        for (qid, (qs, qe)) in queries {
            if qe <= qs {
                continue;
            }
            // Candidates: subjects with start < qe and end > qs. Since ends
            // vary, scan from the first start that could still reach qs.
            let lo_bound = qs.saturating_sub(max_len);
            let mut idx = starts.partition_point(|&s| s < lo_bound);
            let mut matched: HashSet<String> = HashSet::new();
            while idx < sorted.len() && sorted[idx].0 < *qe {
                let (ss, se, sid) = sorted[idx];
                idx += 1;
                let inter = qe.min(&se).saturating_sub(*qs.max(&ss));
                if inter >= k {
                    matched.insert(sid.to_string());
                }
            }
            if !matched.is_empty() {
                n_pairs += matched.len();
                truth.insert(qid.clone(), matched);
            }
        }
        Benchmark { truth, n_pairs }
    }

    /// Number of true pairs `|Bench|`.
    pub fn n_pairs(&self) -> usize {
        self.n_pairs
    }

    /// Number of queries with at least one true subject.
    pub fn n_mappable_queries(&self) -> usize {
        self.truth.len()
    }

    /// Is `(query, subject)` a true pair?
    pub fn contains(&self, query: &str, subject: &str) -> bool {
        self.truth.get(query).is_some_and(|s| s.contains(subject))
    }

    /// True subjects of a query (empty slice view if none).
    pub fn subjects_of(&self, query: &str) -> Option<&HashSet<String>> {
        self.truth.get(query)
    }

    /// Iterate over the mappable queries (those with ≥1 true subject).
    pub fn queries(&self) -> impl Iterator<Item = &str> {
        self.truth.keys().map(String::as_str)
    }

    /// Iterate over all true pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.truth
            .iter()
            .flat_map(|(q, subs)| subs.iter().map(move |s| (q.as_str(), s.as_str())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: &str, s: u64, e: u64) -> (String, (u64, u64)) {
        (id.to_string(), (s, e))
    }

    #[test]
    fn fig4_cases() {
        // Case A: segment fully inside a contig → true pair.
        // Case B: partial overlap ≥ k → true pair.
        // Case C: overlap < k (or none) → not a pair.
        let subjects = vec![q("c1", 0, 5_000), q("c2", 6_000, 12_000)];
        let queries = vec![
            q("e1", 1_000, 2_000), // A: inside c1
            q("e2", 4_500, 6_500), // B: 500 with c1, 500 with c2
            q("e3", 5_001, 5_900), // C: in the gap
            q("e4", 5_990, 6_009), // C: 9-base overlap with c2 < k=16
        ];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        assert!(bench.contains("e1", "c1"));
        assert!(!bench.contains("e1", "c2"));
        assert!(bench.contains("e2", "c1"));
        assert!(bench.contains("e2", "c2"));
        assert!(bench.subjects_of("e3").is_none());
        assert!(bench.subjects_of("e4").is_none());
        assert_eq!(bench.n_pairs(), 3);
        assert_eq!(bench.n_mappable_queries(), 2);
    }

    #[test]
    fn threshold_boundary_exact_k() {
        let subjects = vec![q("c", 100, 200)];
        let queries = vec![q("exact", 184, 300), q("short", 185, 300)];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        assert!(
            bench.contains("exact", "c"),
            "16-base overlap must qualify at k=16"
        );
        assert!(!bench.contains("short", "c"), "15-base overlap must not");
    }

    #[test]
    fn many_subjects_prune_correctly() {
        // Contigs tiled every 100 bases; query overlapping exactly two.
        let subjects: Vec<_> = (0..100u64)
            .map(|i| q(&format!("c{i}"), i * 100, i * 100 + 90))
            .collect();
        let queries = vec![q("e", 250, 410)];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        assert!(bench.contains("e", "c2")); // 250..290 = 40 bases
        assert!(bench.contains("e", "c3")); // 300..390 = 90 bases
    }

    #[test]
    fn c4_overlap_below_threshold() {
        let subjects: Vec<_> = (0..100u64)
            .map(|i| q(&format!("c{i}"), i * 100, i * 100 + 90))
            .collect();
        let queries = vec![q("e", 250, 410)];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        assert!(!bench.contains("e", "c4"), "10-base overlap < k");
        assert_eq!(bench.subjects_of("e").unwrap().len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let bench = Benchmark::from_coordinates(&[], &[], 16);
        assert_eq!(bench.n_pairs(), 0);
        let bench = Benchmark::from_coordinates(&[q("e", 0, 100)], &[], 16);
        assert_eq!(bench.n_pairs(), 0);
    }

    #[test]
    fn degenerate_query_interval_skipped() {
        let subjects = vec![q("c", 0, 1000)];
        let queries = vec![q("bad", 50, 50)];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 1);
        assert_eq!(bench.n_pairs(), 0);
    }

    #[test]
    fn pairs_iterator_counts() {
        let subjects = vec![q("c1", 0, 1000), q("c2", 900, 2000)];
        let queries = vec![q("e1", 100, 300), q("e2", 850, 1100)];
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        assert_eq!(bench.pairs().count(), bench.n_pairs());
        assert_eq!(bench.n_pairs(), 3); // e1-c1, e2-c1, e2-c2
    }
}
