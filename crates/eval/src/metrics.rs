//! TP/FP/FN classification and the paper's precision/recall definitions.

use crate::bench::Benchmark;
use serde::{Deserialize, Serialize};

/// Classification counts and quality metrics of one mapping run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MappingMetrics {
    /// Pairs in both `Test` and `Bench`.
    pub tp: usize,
    /// Pairs in `Test` but not `Bench`.
    pub fp: usize,
    /// Pairs in `Bench` but not `Test`.
    pub fn_: usize,
}

impl MappingMetrics {
    /// Classify output pairs against the benchmark — *query-level*, the
    /// paper's scheme ("there is room for only one best hit").
    ///
    /// For each mappable query (non-empty benchmark entry): a reported best
    /// hit that is any true subject is one TP; a reported hit to a wrong
    /// subject is one FP *and* one FN (the paper: "if an output mapping is
    /// a false positive, then by implication it is also a false negative");
    /// an unreported mappable query is one additional FN. A reported hit
    /// for a query with no true subject is one FP. This makes recall
    /// upper-bounded by precision, exactly as the paper observes.
    pub fn classify(test: &[(String, String)], bench: &Benchmark) -> Self {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut answered: std::collections::HashSet<&str> =
            std::collections::HashSet::with_capacity(test.len());
        for (q, s) in test {
            answered.insert(q.as_str());
            match bench.subjects_of(q) {
                Some(truth) if truth.contains(s) => tp += 1,
                // Paper: every FP is by implication also an FN (the single
                // best-hit slot was spent on a wrong answer) — this is what
                // upper-bounds recall by precision in Fig. 5.
                _ => {
                    fp += 1;
                    fn_ += 1;
                }
            }
        }
        // Mappable queries the tool never answered.
        fn_ += bench.queries().filter(|q| !answered.contains(*q)).count();
        MappingMetrics { tp, fp, fn_ }
    }

    /// Pair-level classification (the stricter alternative reading of the
    /// paper's definitions): TP/FP over output pairs, FN = every benchmark
    /// pair missing from the output. With multi-contig truths this bounds
    /// recall well below 100% for any best-hit mapper; kept for reference
    /// and ablations.
    pub fn classify_pairs(test: &[(String, String)], bench: &Benchmark) -> Self {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut test_set: std::collections::HashSet<(&str, &str)> =
            std::collections::HashSet::with_capacity(test.len());
        for (q, s) in test {
            test_set.insert((q.as_str(), s.as_str()));
            if bench.contains(q, s) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
        let fn_ = bench
            .pairs()
            .filter(|(q, s)| !test_set.contains(&(*q, *s)))
            .count();
        MappingMetrics { tp, fp, fn_ }
    }

    /// `TP / (TP + FP)`; 0 when the output is empty.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// `TP / (TP + FN)`; 0 when the benchmark is empty.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench() -> Benchmark {
        let subjects = vec![
            ("c1".to_string(), (0u64, 1000u64)),
            ("c2".to_string(), (900, 2000)),
            ("c3".to_string(), (2500, 3000)),
        ];
        let queries = vec![
            ("e1".to_string(), (100u64, 300u64)), // true: c1
            ("e2".to_string(), (850, 1100)),      // true: c1, c2
            ("e3".to_string(), (2600, 2800)),     // true: c3
        ];
        Benchmark::from_coordinates(&queries, &subjects, 16)
    }

    fn pair(q: &str, s: &str) -> (String, String) {
        (q.to_string(), s.to_string())
    }

    #[test]
    fn perfect_output() {
        let b = bench();
        let test = vec![
            pair("e1", "c1"),
            pair("e2", "c1"),
            pair("e2", "c2"),
            pair("e3", "c3"),
        ];
        let m = MappingMetrics::classify(&test, &b);
        assert_eq!((m.tp, m.fp, m.fn_), (4, 0, 0));
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn any_true_subject_satisfies_a_query() {
        // e2 has two true contigs; the single best hit to either is a full
        // TP at query level.
        let b = bench();
        let test = vec![pair("e1", "c1"), pair("e2", "c1"), pair("e3", "c3")];
        let m = MappingMetrics::classify(&test, &b);
        assert_eq!((m.tp, m.fp, m.fn_), (3, 0, 0));
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        // Pair-level counting penalizes the unrecovered second contig.
        let strict = MappingMetrics::classify_pairs(&test, &b);
        assert_eq!((strict.tp, strict.fp, strict.fn_), (3, 0, 1));
        assert!((strict.recall() - 0.75).abs() < 1e-12);
        assert!(strict.recall() <= strict.precision());
    }

    #[test]
    fn false_positive_implies_false_negative() {
        // e1 mapped to the wrong contig: FP *and* its true pair is missed.
        let b = bench();
        let test = vec![pair("e1", "c3")];
        let m = MappingMetrics::classify(&test, &b);
        assert_eq!(m.fp, 1);
        assert!(m.fn_ >= 1);
        assert!(m.recall() <= m.precision() || m.precision() == 0.0);
    }

    #[test]
    fn unmapped_query_is_a_false_negative() {
        let b = bench();
        let m = MappingMetrics::classify(&[], &b);
        assert_eq!(m.tp, 0);
        assert_eq!(m.fn_, b.n_mappable_queries());
        assert_eq!(m.recall(), 0.0);
        let strict = MappingMetrics::classify_pairs(&[], &b);
        assert_eq!(strict.fn_, b.n_pairs());
    }

    #[test]
    fn spurious_hit_on_unmappable_query_is_fp_only() {
        let b = bench();
        // "ghost" has no benchmark entry: mapping it is a pure FP.
        let m = MappingMetrics::classify(&[pair("ghost", "c1")], &b);
        assert_eq!(m.tp, 0);
        assert_eq!(m.fp, 1);
        // The ghost FP also counts as an FN (paper's implication), plus the
        // three unanswered mappable queries.
        assert_eq!(m.fn_, 1 + b.n_mappable_queries());
        assert!(m.recall() <= m.precision() || m.precision() == 0.0);
    }

    #[test]
    fn empty_everything() {
        let b = Benchmark::from_coordinates(&[], &[], 16);
        let m = MappingMetrics::classify(&[], &b);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
    }
}
