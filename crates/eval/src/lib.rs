//! # jem-eval — evaluation methodology (paper §IV-B)
//!
//! * [`mod@bench`] — benchmark construction per Fig. 4: a read end segment
//!   truly maps to a contig iff their reference-genome coordinate intervals
//!   intersect in at least `k` positions.
//! * [`metrics`] — TP/FP/FN/TN classification of an output mapping set
//!   against the benchmark, with the paper's precision/recall definitions
//!   (one best hit per query ⇒ every FP implies an FN; recall ≤ precision).
//! * [`align`] — global, fitting (query-global/subject-local) and banded
//!   alignment with identity accounting — the BLAST substitute behind the
//!   percent-identity distribution of Fig. 9.
//! * [`identity`] — percent-identity histograms over mapped pairs.
//! * [`paf`] — PAF parsing plus the coordinate-level accuracy metric for
//!   stage-2 placements (right contig *and* right position, within a
//!   tolerance, against simulated truth intervals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod bench;
pub mod identity;
pub mod metrics;
pub mod paf;

pub use align::{align_fitting, align_global, align_local, banded_global, AlignmentResult};
pub use bench::Benchmark;
pub use identity::{percent_identity, IdentityHistogram};
pub use metrics::MappingMetrics;
pub use paf::{parse_paf, PafAccuracy, PafRecord};
