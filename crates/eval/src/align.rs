//! Alignment with identity accounting (the BLAST substitute for Fig. 9).
//!
//! Three entry points:
//!
//! * [`align_global`] — Needleman–Wunsch over two full sequences;
//! * [`banded_global`] — the same restricted to a diagonal band (for long,
//!   similar pairs);
//! * [`align_fitting`] — query-global / subject-local ("fitting")
//!   alignment: the query must align end-to-end, gaps at the subject's
//!   flanks are free. This is the right shape for "how well does this 1 kb
//!   end segment match somewhere inside this contig".
//!
//! Scores: match `+1`, mismatch `−1`, gap `−1` (linear). Identity is
//! `matches / alignment_columns` over the traceback path.

/// Outcome of an alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AlignmentResult {
    /// Alignment score under the +1/−1/−1 scheme.
    pub score: i32,
    /// Number of exactly matching columns.
    pub matches: usize,
    /// Total alignment columns (matches + mismatches + gaps).
    pub columns: usize,
}

impl AlignmentResult {
    /// Percent identity in `[0, 100]`.
    pub fn identity(&self) -> f64 {
        if self.columns == 0 {
            0.0
        } else {
            100.0 * self.matches as f64 / self.columns as f64
        }
    }
}

const MATCH: i32 = 1;
const MISMATCH: i32 = -1;
const GAP: i32 = -1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Step {
    Diag,
    Up,   // gap in b (consume a)
    Left, // gap in a (consume b)
    Stop,
}

/// Global Needleman–Wunsch alignment of `a` against `b`.
pub fn align_global(a: &[u8], b: &[u8]) -> AlignmentResult {
    // DP over (a rows, b cols) with full traceback.
    let (n, m) = (a.len(), b.len());
    let mut score = vec![0i32; (n + 1) * (m + 1)];
    let mut trace = vec![Step::Stop; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        score[idx(i, 0)] = i as i32 * GAP;
        trace[idx(i, 0)] = Step::Up;
    }
    for j in 1..=m {
        score[idx(0, j)] = j as i32 * GAP;
        trace[idx(0, j)] = Step::Left;
    }
    for i in 1..=n {
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = score[idx(i - 1, j - 1)] + sub;
            let up = score[idx(i - 1, j)] + GAP;
            let left = score[idx(i, j - 1)] + GAP;
            let (best, step) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            score[idx(i, j)] = best;
            trace[idx(i, j)] = step;
        }
    }
    traceback(a, b, &score, &trace, n, m, m)
}

/// Fitting alignment: all of `query` against the best-matching region of
/// `subject` (free gaps at the subject's flanks).
pub fn align_fitting(query: &[u8], subject: &[u8]) -> AlignmentResult {
    let (n, m) = (query.len(), subject.len());
    let mut score = vec![0i32; (n + 1) * (m + 1)];
    let mut trace = vec![Step::Stop; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        score[idx(i, 0)] = i as i32 * GAP;
        trace[idx(i, 0)] = Step::Up;
    }
    // Row 0 stays 0 (free leading subject gap), trace Stop.
    for i in 1..=n {
        for j in 1..=m {
            let sub = if query[i - 1] == subject[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = score[idx(i - 1, j - 1)] + sub;
            let up = score[idx(i - 1, j)] + GAP;
            let left = score[idx(i, j - 1)] + GAP;
            let (best, step) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            score[idx(i, j)] = best;
            trace[idx(i, j)] = step;
        }
    }
    // Free trailing subject gap: best cell in the last row.
    let (best_j, _) = (0..=m)
        .map(|j| (j, score[idx(n, j)]))
        .max_by_key(|&(j, s)| (s, std::cmp::Reverse(j)))
        .expect("row exists");
    traceback(query, subject, &score, &trace, n, m, best_j)
}

/// Local (Smith–Waterman) alignment: the best-scoring pair of substrings.
///
/// This is the BLAST-shaped measure: identity is computed over the aligned
/// region only, so a query that overlaps the subject partially (e.g. a
/// boundary end segment) is judged on the overlap, not on its full length.
pub fn align_local(a: &[u8], b: &[u8]) -> AlignmentResult {
    let (n, m) = (a.len(), b.len());
    let mut score = vec![0i32; (n + 1) * (m + 1)];
    let mut trace = vec![Step::Stop; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            let sub = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = score[idx(i - 1, j - 1)] + sub;
            let up = score[idx(i - 1, j)] + GAP;
            let left = score[idx(i, j - 1)] + GAP;
            let (mut cell, mut step) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            if cell <= 0 {
                cell = 0;
                step = Step::Stop;
            }
            score[idx(i, j)] = cell;
            trace[idx(i, j)] = step;
            if cell > best.0 {
                best = (cell, i, j);
            }
        }
    }
    // Traceback from the best cell until a zero cell.
    let (best_score, mut i, mut j) = best;
    let mut matches = 0usize;
    let mut columns = 0usize;
    while i > 0 && j > 0 {
        match trace[idx(i, j)] {
            Step::Diag => {
                columns += 1;
                if a[i - 1] == b[j - 1] {
                    matches += 1;
                }
                i -= 1;
                j -= 1;
            }
            Step::Up => {
                columns += 1;
                i -= 1;
            }
            Step::Left => {
                columns += 1;
                j -= 1;
            }
            Step::Stop => break,
        }
    }
    AlignmentResult {
        score: best_score,
        matches,
        columns,
    }
}

/// Banded global alignment: cells with `|i − j| > band` are not explored.
/// Suitable when the two sequences are known to be similar end-to-end.
pub fn banded_global(a: &[u8], b: &[u8], band: usize) -> AlignmentResult {
    let (n, m) = (a.len(), b.len());
    // The band must cover the length difference or no path exists.
    let band = band.max(n.abs_diff(m) + 1);
    const NEG: i32 = i32::MIN / 4;
    let mut score = vec![NEG; (n + 1) * (m + 1)];
    let mut trace = vec![Step::Stop; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    score[idx(0, 0)] = 0;
    for i in 1..=n.min(band) {
        score[idx(i, 0)] = i as i32 * GAP;
        trace[idx(i, 0)] = Step::Up;
    }
    for j in 1..=m.min(band) {
        score[idx(0, j)] = j as i32 * GAP;
        trace[idx(0, j)] = Step::Left;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(band).max(1);
        let hi = (i + band).min(m);
        for j in lo..=hi {
            let sub = if a[i - 1] == b[j - 1] {
                MATCH
            } else {
                MISMATCH
            };
            let diag = score[idx(i - 1, j - 1)].saturating_add(sub);
            let up = score[idx(i - 1, j)].saturating_add(GAP);
            let left = score[idx(i, j - 1)].saturating_add(GAP);
            let (best, step) = if diag >= up && diag >= left {
                (diag, Step::Diag)
            } else if up >= left {
                (up, Step::Up)
            } else {
                (left, Step::Left)
            };
            score[idx(i, j)] = best;
            trace[idx(i, j)] = step;
        }
    }
    traceback(a, b, &score, &trace, n, m, m)
}

fn traceback(
    a: &[u8],
    b: &[u8],
    score: &[i32],
    trace: &[Step],
    n: usize,
    m: usize,
    end_j: usize,
) -> AlignmentResult {
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let (mut i, mut j) = (n, end_j);
    let mut matches = 0usize;
    let mut columns = 0usize;
    while i > 0 || j > 0 {
        match trace[idx(i, j)] {
            Step::Diag => {
                columns += 1;
                if a[i - 1] == b[j - 1] {
                    matches += 1;
                }
                i -= 1;
                j -= 1;
            }
            Step::Up => {
                columns += 1;
                i -= 1;
            }
            Step::Left => {
                columns += 1;
                j -= 1;
            }
            Step::Stop => break, // fitting alignment's free leading gap
        }
    }
    AlignmentResult {
        score: score[idx(n, end_j)],
        matches,
        columns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_100_percent() {
        let r = align_global(b"ACGTACGT", b"ACGTACGT");
        assert_eq!(r.score, 8);
        assert_eq!(r.matches, 8);
        assert_eq!(r.columns, 8);
        assert_eq!(r.identity(), 100.0);
    }

    #[test]
    fn single_mismatch() {
        let r = align_global(b"ACGTACGT", b"ACGAACGT");
        assert_eq!(r.score, 6);
        assert_eq!(r.matches, 7);
        assert_eq!(r.columns, 8);
        assert!((r.identity() - 87.5).abs() < 1e-9);
    }

    #[test]
    fn single_deletion() {
        let r = align_global(b"ACGTACGT", b"ACGTCGT");
        assert_eq!(r.score, 7 - 1);
        assert_eq!(r.matches, 7);
        assert_eq!(r.columns, 8);
    }

    #[test]
    fn empty_sequences() {
        let r = align_global(b"", b"");
        assert_eq!(r.columns, 0);
        assert_eq!(r.identity(), 0.0);
        let r = align_global(b"ACG", b"");
        assert_eq!(r.score, -3);
        assert_eq!(r.columns, 3);
    }

    #[test]
    fn fitting_finds_interior_region() {
        // Query matches the middle of the subject exactly: identity 100,
        // no penalty for the subject's flanks.
        let subject = b"TTTTTTTTTTACGTACGTACGTTTTTTTTTTT";
        let query = b"ACGTACGTACGT";
        let r = align_fitting(query, subject);
        assert_eq!(r.score, query.len() as i32);
        assert_eq!(r.identity(), 100.0);
        assert_eq!(r.columns, query.len());
        // Global alignment of the same pair is much worse.
        let g = align_global(query, subject);
        assert!(g.score < r.score);
    }

    #[test]
    fn fitting_with_errors() {
        let subject = b"GGGGGGGGGGACGTACGTACGTGGGGGGGG";
        let query = b"ACGTACCTACGT"; // one mismatch
        let r = align_fitting(query, subject);
        assert_eq!(r.matches, 11);
        assert_eq!(r.columns, 12);
        assert!((r.identity() - 100.0 * 11.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn local_ignores_unrelated_flanks() {
        // Query = 200 unrelated bases + a 24-base exact match region.
        let subject = b"CCCCCCCCCCACGGTCATTCAGGATACCAGTTCCCCCCCCCC";
        let mut query = Vec::new();
        for i in 0..200 {
            query.push(b"AGTC"[(i * 7 + 1) % 4]);
        }
        query.extend_from_slice(b"ACGGTCATTCAGGATACCAGTT");
        let r = align_local(&query, subject);
        assert_eq!(
            r.identity(),
            100.0,
            "local identity is over the aligned region only"
        );
        assert!(r.columns >= 20);
        // Fitting alignment pays for the 200 unrelated bases.
        let f = align_fitting(&query, subject);
        assert!(f.identity() < 50.0);
    }

    #[test]
    fn local_empty_and_disjoint() {
        let r = align_local(b"AAAA", b"TTTT");
        // Best local alignment of disjoint content is a single mismatching
        // column at best score 0 — columns may be 0.
        assert_eq!(r.score, 0);
        let r = align_local(b"", b"ACGT");
        assert_eq!(r.columns, 0);
    }

    #[test]
    fn local_score_matches_global_on_identical() {
        let s = b"ACGGTCATTCAGG";
        let l = align_local(s, s);
        assert_eq!(l.score, s.len() as i32);
        assert_eq!(l.identity(), 100.0);
    }

    #[test]
    fn banded_matches_global_for_similar_pairs() {
        let a = b"ACGGTCATTCAGGATACCAGTTGACGGTCATT";
        let mut b = a.to_vec();
        b[5] = b'A';
        b.remove(20);
        let full = align_global(a, &b);
        let banded = banded_global(a, &b, 8);
        assert_eq!(full.score, banded.score);
        assert_eq!(full.matches, banded.matches);
    }

    #[test]
    fn banded_handles_length_difference() {
        let a = b"ACGTACGTACGTACGT";
        let b = b"ACGTACGT";
        // band smaller than the length delta is widened internally.
        let r = banded_global(a, b, 2);
        assert_eq!(r.matches, 8);
    }

    #[test]
    fn alignment_is_symmetric_in_score() {
        let a = b"ACGGTCATT";
        let b = b"ACGTTCATT";
        assert_eq!(align_global(a, b).score, align_global(b, a).score);
    }
}
