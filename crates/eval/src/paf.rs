//! PAF parsing and coordinate-level accuracy against simulated truth.
//!
//! Stage-2 refinement (`jem map --paf`) claims *positions*, not just
//! subjects, so the Fig. 4 benchmark is extended with a placement check:
//! a PAF record is **correct** when its target contig is a true subject of
//! the query (interval intersection ≥ `k`, exactly as [`Benchmark`]) *and*
//! the placement, projected back onto reference-genome coordinates through
//! the contig's own truth interval, starts within `tolerance` bases of the
//! query segment's true start. The projection subtracts the unaligned
//! query clip (head on `+`, tail on `-`), so partial chains and
//! reverse-strand reads are scored on the same footing.
//!
//! Only the 12 mandatory PAF columns are read; typed tags are ignored, so
//! the metric applies to minimap2-style output as well as `jem`'s own.

use crate::bench::Benchmark;
use std::collections::{HashMap, HashSet};

/// One parsed PAF record — the 12 mandatory columns, tags dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PafRecord {
    /// Query name (column 1) — `jem`'s are `<read_id>/<prefix|suffix>`,
    /// the truth table's `Q` keys.
    pub qname: String,
    /// Query length (column 2).
    pub q_len: u64,
    /// Query start, 0-based (column 3).
    pub q_start: u64,
    /// Query end, exclusive (column 4).
    pub q_end: u64,
    /// `true` when strand column 5 is `-`.
    pub reverse: bool,
    /// Target name (column 6).
    pub tname: String,
    /// Target length (column 7).
    pub t_len: u64,
    /// Target start (column 8).
    pub t_start: u64,
    /// Target end, exclusive (column 9).
    pub t_end: u64,
    /// Residue matches (column 10).
    pub matches: u64,
    /// Alignment block length (column 11).
    pub block: u64,
    /// Mapping quality (column 12), 255 = missing.
    pub mapq: u8,
}

impl PafRecord {
    /// Parse one PAF line. Errors (never panics) on fewer than 12 columns,
    /// non-numeric coordinate fields, a strand other than `+`/`-`, or
    /// structurally impossible intervals (`start > end`, `end > length`,
    /// `matches > block`, `mapq > 255`).
    pub fn parse(line: &str) -> Result<PafRecord, String> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 12 {
            return Err(format!(
                "expected at least 12 tab-separated columns, got {}",
                cols.len()
            ));
        }
        let num = |i: usize| -> Result<u64, String> {
            cols[i]
                .parse()
                .map_err(|_| format!("column {} is not an integer: {:?}", i + 1, cols[i]))
        };
        let reverse = match cols[4] {
            "+" => false,
            "-" => true,
            other => return Err(format!("strand column must be + or -, got {other:?}")),
        };
        let mapq = num(11)?;
        if mapq > 255 {
            return Err(format!("mapq {mapq} out of range (0..=255)"));
        }
        let rec = PafRecord {
            qname: cols[0].to_string(),
            q_len: num(1)?,
            q_start: num(2)?,
            q_end: num(3)?,
            reverse,
            tname: cols[5].to_string(),
            t_len: num(6)?,
            t_start: num(7)?,
            t_end: num(8)?,
            matches: num(9)?,
            block: num(10)?,
            mapq: mapq as u8,
        };
        if rec.q_start > rec.q_end || rec.q_end > rec.q_len {
            return Err(format!(
                "query interval {}..{} invalid for length {}",
                rec.q_start, rec.q_end, rec.q_len
            ));
        }
        if rec.t_start > rec.t_end || rec.t_end > rec.t_len {
            return Err(format!(
                "target interval {}..{} invalid for length {}",
                rec.t_start, rec.t_end, rec.t_len
            ));
        }
        if rec.matches > rec.block {
            return Err(format!(
                "matches {} exceed block length {}",
                rec.matches, rec.block
            ));
        }
        Ok(rec)
    }

    /// Reference-genome start of the *whole* query segment implied by this
    /// placement, given the genome start of the target contig. The clip of
    /// unaligned query bases before the chain (head on `+`, tail on `-`)
    /// is projected left of the target start.
    pub fn projected_segment_start(&self, subject_start: u64) -> u64 {
        let clip = if self.reverse {
            self.q_len - self.q_end
        } else {
            self.q_start
        };
        (subject_start + self.t_start).saturating_sub(clip)
    }
}

/// Parse a whole PAF text (one record per line, blank lines skipped).
/// Errors name the 1-based line number.
pub fn parse_paf(text: &str) -> Result<Vec<PafRecord>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(PafRecord::parse(line).map_err(|e| format!("PAF line {}: {e}", no + 1))?);
    }
    Ok(out)
}

/// Coordinate-level classification of a PAF run against simulated truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PafAccuracy {
    /// Records evaluated.
    pub records: usize,
    /// True subject *and* projected start within tolerance.
    pub correct: usize,
    /// Target contig is not a true subject of the query.
    pub wrong_contig: usize,
    /// Right contig, but the projected start misses by more than the
    /// tolerance.
    pub wrong_position: usize,
    /// Query name absent from the truth table.
    pub unknown_query: usize,
    /// Mappable truth queries with no PAF record at all.
    pub missed: usize,
    /// Sum of absolute start offsets over the `correct` records.
    pub total_offset: u64,
}

impl PafAccuracy {
    /// Classify `records` against truth coordinate intervals (`queries`
    /// and `subjects` as in [`Benchmark::from_coordinates`], `k` the
    /// intersection threshold). `tolerance` is the maximum allowed
    /// distance, in bases, between the projected and true segment starts.
    pub fn classify(
        records: &[PafRecord],
        queries: &[(String, (u64, u64))],
        subjects: &[(String, (u64, u64))],
        k: u64,
        tolerance: u64,
    ) -> PafAccuracy {
        let bench = Benchmark::from_coordinates(queries, subjects, k);
        let truth_start: HashMap<&str, u64> =
            queries.iter().map(|(q, (s, _))| (q.as_str(), *s)).collect();
        let subject_start: HashMap<&str, u64> = subjects
            .iter()
            .map(|(s, (start, _))| (s.as_str(), *start))
            .collect();
        let mut seen: HashSet<&str> = HashSet::with_capacity(records.len());
        let mut acc = PafAccuracy {
            records: records.len(),
            ..PafAccuracy::default()
        };
        for r in records {
            seen.insert(r.qname.as_str());
            let Some(&true_start) = truth_start.get(r.qname.as_str()) else {
                acc.unknown_query += 1;
                continue;
            };
            if !bench.contains(&r.qname, &r.tname) {
                acc.wrong_contig += 1;
                continue;
            }
            let Some(&ss) = subject_start.get(r.tname.as_str()) else {
                acc.wrong_contig += 1;
                continue;
            };
            let offset = r.projected_segment_start(ss).abs_diff(true_start);
            if offset <= tolerance {
                acc.correct += 1;
                acc.total_offset += offset;
            } else {
                acc.wrong_position += 1;
            }
        }
        acc.missed = bench.queries().filter(|q| !seen.contains(q)).count();
        acc
    }

    /// `correct / records`; 0 when no records.
    pub fn accuracy(&self) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            self.correct as f64 / self.records as f64
        }
    }

    /// `correct / (records + missed)` — accuracy that also charges the
    /// mappable queries the run never placed.
    pub fn recall(&self) -> f64 {
        let denom = self.records + self.missed;
        if denom == 0 {
            0.0
        } else {
            self.correct as f64 / denom as f64
        }
    }

    /// Mean absolute start offset of the correct placements (0 when none).
    pub fn mean_offset(&self) -> f64 {
        if self.correct == 0 {
            0.0
        } else {
            self.total_offset as f64 / self.correct as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(items: &[(&str, u64, u64)]) -> Vec<(String, (u64, u64))> {
        items
            .iter()
            .map(|&(id, s, e)| (id.to_string(), (s, e)))
            .collect()
    }

    fn line(
        qname: &str,
        q: (u64, u64, u64),
        strand: char,
        tname: &str,
        t: (u64, u64, u64),
    ) -> String {
        format!(
            "{qname}\t{}\t{}\t{}\t{strand}\t{tname}\t{}\t{}\t{}\t100\t200\t60",
            q.0, q.1, q.2, t.0, t.1, t.2
        )
    }

    #[test]
    fn parses_mandatory_columns_and_ignores_tags() {
        let rec = PafRecord::parse(
            "r1/prefix\t1000\t10\t990\t-\tcontig_2\t5000\t100\t1080\t800\t980\t42\ttp:A:P\tcm:i:50",
        )
        .unwrap();
        assert_eq!(rec.qname, "r1/prefix");
        assert_eq!((rec.q_len, rec.q_start, rec.q_end), (1000, 10, 990));
        assert!(rec.reverse);
        assert_eq!(rec.tname, "contig_2");
        assert_eq!((rec.t_len, rec.t_start, rec.t_end), (5000, 100, 1080));
        assert_eq!((rec.matches, rec.block, rec.mapq), (800, 980, 42));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(PafRecord::parse("short\tline").is_err());
        let bad_strand = line("q", (100, 0, 90), '?', "c", (1000, 0, 90));
        assert!(PafRecord::parse(&bad_strand).is_err());
        let bad_num = "q\t100\tten\t90\t+\tc\t1000\t0\t90\t50\t90\t60";
        assert!(PafRecord::parse(bad_num).is_err());
        // q_end past q_len.
        let bad_q = line("q", (100, 0, 101), '+', "c", (1000, 0, 90));
        assert!(PafRecord::parse(&bad_q).is_err());
        // t_start past t_end.
        let bad_t = line("q", (100, 0, 90), '+', "c", (1000, 90, 10));
        assert!(PafRecord::parse(&bad_t).is_err());
        let bad_mapq = "q\t100\t0\t90\t+\tc\t1000\t0\t90\t50\t90\t300";
        assert!(PafRecord::parse(bad_mapq).is_err());
    }

    #[test]
    fn parse_paf_numbers_errors_and_skips_blanks() {
        let ok = format!(
            "{}\n\n{}\n",
            line("a", (100, 0, 90), '+', "c", (1000, 5, 95)),
            line("b", (100, 0, 90), '+', "c", (1000, 5, 95))
        );
        assert_eq!(parse_paf(&ok).unwrap().len(), 2);
        let err = parse_paf("good\tbut\tnot\tpaf\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn projection_accounts_for_clip_and_strand() {
        // Forward: 10 unaligned query bases before the chain.
        let fwd =
            PafRecord::parse(&line("q", (1000, 10, 990), '+', "c", (5000, 210, 1190))).unwrap();
        // Contig starts at genome 4_000; chain target start 210; clip 10.
        assert_eq!(fwd.projected_segment_start(4_000), 4_000 + 210 - 10);
        // Reverse: the clip is the *tail* of the query (q_len - q_end).
        let rev =
            PafRecord::parse(&line("q", (1000, 10, 990), '-', "c", (5000, 210, 1190))).unwrap();
        assert_eq!(rev.projected_segment_start(4_000), 4_000 + 210 - 10);
        // Clip larger than the genome prefix saturates at 0.
        let edge =
            PafRecord::parse(&line("q", (1000, 500, 990), '+', "c", (5000, 100, 590))).unwrap();
        assert_eq!(edge.projected_segment_start(0), 0);
    }

    #[test]
    fn classify_scores_contig_and_position() {
        // Genome layout: c1 at 0..5000, c2 at 4500..9000.
        let subjects = coords(&[("c1", 0, 5_000), ("c2", 4_500, 9_000)]);
        // q1 truly starts at 1_000 (inside c1); q2 at 6_000 (inside c2).
        let queries = coords(&[("q1", 1_000, 2_000), ("q2", 6_000, 7_000)]);
        let records = vec![
            // Exact placement of q1 on c1.
            PafRecord::parse(&line(
                "q1",
                (1_000, 0, 1_000),
                '+',
                "c1",
                (5_000, 1_000, 2_000),
            ))
            .unwrap(),
            // q2 placed on c2 but 300 bases off.
            PafRecord::parse(&line(
                "q2",
                (1_000, 0, 1_000),
                '+',
                "c2",
                (4_500, 1_800, 2_800),
            ))
            .unwrap(),
        ];
        let acc = PafAccuracy::classify(&records, &queries, &subjects, 16, 50);
        assert_eq!(
            (
                acc.correct,
                acc.wrong_contig,
                acc.wrong_position,
                acc.missed
            ),
            (1, 0, 1, 0)
        );
        assert_eq!(acc.total_offset, 0);
        // A looser tolerance accepts the off-by-300 placement too.
        let acc = PafAccuracy::classify(&records, &queries, &subjects, 16, 500);
        assert_eq!(acc.correct, 2);
        assert_eq!(acc.total_offset, 300);
        assert!((acc.mean_offset() - 150.0).abs() < 1e-9);
        assert_eq!(acc.accuracy(), 1.0);
    }

    #[test]
    fn classify_charges_wrong_contigs_unknowns_and_misses() {
        let subjects = coords(&[("c1", 0, 5_000), ("c2", 10_000, 15_000)]);
        let queries = coords(&[("q1", 1_000, 2_000), ("q2", 11_000, 12_000)]);
        let records = vec![
            // q1 placed on the wrong contig.
            PafRecord::parse(&line(
                "q1",
                (1_000, 0, 1_000),
                '+',
                "c2",
                (5_000, 1_000, 2_000),
            ))
            .unwrap(),
            // A query the truth never heard of.
            PafRecord::parse(&line(
                "ghost",
                (1_000, 0, 1_000),
                '+',
                "c1",
                (5_000, 0, 1_000),
            ))
            .unwrap(),
        ];
        let acc = PafAccuracy::classify(&records, &queries, &subjects, 16, 50);
        assert_eq!(acc.wrong_contig, 1);
        assert_eq!(acc.unknown_query, 1);
        // q2 was never placed.
        assert_eq!(acc.missed, 1);
        assert_eq!(acc.correct, 0);
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.recall(), 0.0);
    }

    #[test]
    fn reverse_strand_truth_join_is_strand_agnostic() {
        // A reverse-strand read still gets genome-forward truth intervals;
        // the projection must land on the same coordinates.
        let subjects = coords(&[("c1", 2_000, 8_000)]);
        let queries = coords(&[("r/prefix", 3_000, 4_000)]);
        // Chain covers query 20..980 on '-': tail clip 20 projects left.
        let rec = PafRecord::parse(&line(
            "r/prefix",
            (1_000, 20, 980),
            '-',
            "c1",
            (6_000, 1_020, 1_980),
        ))
        .unwrap();
        // Projected: 2_000 + 1_020 - (1_000 - 980) = 3_000. Exact.
        let acc = PafAccuracy::classify(&[rec], &queries, &subjects, 16, 0);
        assert_eq!(acc.correct, 1);
        assert_eq!(acc.total_offset, 0);
    }

    #[test]
    fn empty_inputs() {
        let acc = PafAccuracy::classify(&[], &[], &[], 16, 50);
        assert_eq!(acc, PafAccuracy::default());
        assert_eq!(acc.accuracy(), 0.0);
        assert_eq!(acc.mean_offset(), 0.0);
    }
}
