//! Property-based tests for the evaluation layer.

use jem_eval::{
    align_fitting, align_global, align_local, banded_global, percent_identity, Benchmark,
    MappingMetrics,
};
use proptest::prelude::*;

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn global_alignment_invariants(a in dna(60), b in dna(60)) {
        let r = align_global(&a, &b);
        // Score bounded by the shorter sequence's all-match score minus the
        // unavoidable length-difference gaps.
        let bound = a.len().min(b.len()) as i32 - (a.len() as i32 - b.len() as i32).abs();
        prop_assert!(r.score <= bound, "score {} exceeds bound {bound}", r.score);
        prop_assert!(r.matches <= a.len().min(b.len()));
        prop_assert!(r.columns >= a.len().max(b.len()));
        prop_assert!(r.columns <= a.len() + b.len());
        // Symmetry of the score.
        prop_assert_eq!(r.score, align_global(&b, &a).score);
    }

    #[test]
    fn self_alignment_is_perfect(a in dna(80)) {
        let r = align_global(&a, &a);
        prop_assert_eq!(r.score, a.len() as i32);
        prop_assert_eq!(r.matches, a.len());
        if !a.is_empty() {
            prop_assert_eq!(r.identity(), 100.0);
        }
    }

    #[test]
    fn local_alignment_invariants(a in dna(60), b in dna(60)) {
        let r = align_local(&a, &b);
        prop_assert!(r.score >= 0, "local score is never negative");
        prop_assert!(r.score >= align_global(&a, &b).score.min(0));
        prop_assert!(r.matches <= a.len().min(b.len()));
        let id = r.identity();
        prop_assert!((0.0..=100.0).contains(&id));
    }

    #[test]
    fn fitting_at_least_global(q in dna(40), s in dna(60)) {
        // Fitting alignment relaxes global's subject-flank penalties.
        prop_assert!(align_fitting(&q, &s).score >= align_global(&q, &s).score);
        // Local relaxes everything.
        prop_assert!(align_local(&q, &s).score >= align_fitting(&q, &s).score.min(0));
    }

    #[test]
    fn banded_with_full_band_equals_global(a in dna(40), b in dna(40)) {
        let full = align_global(&a, &b);
        let banded = banded_global(&a, &b, a.len() + b.len() + 1);
        prop_assert_eq!(full.score, banded.score);
    }

    #[test]
    fn identity_bounds(q in dna(50), s in dna(80)) {
        let id = percent_identity(&q, &s);
        prop_assert!((0.0..=100.0).contains(&id));
        // Strand invariance.
        let rc = jem_seq::alphabet::revcomp_bytes(&q);
        prop_assert!((percent_identity(&rc, &s) - id).abs() < 1e-9);
    }

    #[test]
    fn benchmark_matches_naive_intersection(
        queries in prop::collection::vec((0u64..500, 1u64..300), 0..30),
        subjects in prop::collection::vec((0u64..500, 1u64..300), 0..30),
        k in 1u64..50,
    ) {
        let q: Vec<(String, (u64, u64))> = queries
            .iter()
            .enumerate()
            .map(|(i, (s, len))| (format!("q{i}"), (*s, s + len)))
            .collect();
        let s: Vec<(String, (u64, u64))> = subjects
            .iter()
            .enumerate()
            .map(|(i, (st, len))| (format!("s{i}"), (*st, st + len)))
            .collect();
        let bench = Benchmark::from_coordinates(&q, &s, k);
        for (qid, (qs, qe)) in &q {
            for (sid, (ss, se)) in &s {
                let inter = (*qe).min(*se).saturating_sub((*qs).max(*ss));
                prop_assert_eq!(
                    bench.contains(qid, sid),
                    inter >= k,
                    "q={:?} s={:?} k={}", (qs, qe), (ss, se), k
                );
            }
        }
    }

    #[test]
    fn metrics_identities(
        test in prop::collection::vec((0usize..10, 0usize..10), 0..20),
        truth in prop::collection::vec((0usize..10, 0usize..10), 0..20),
    ) {
        // Build a benchmark from coordinate tricks: subject i at [i*100, i*100+50],
        // query pairs chosen so inclusion is controlled by the truth list.
        let subjects: Vec<(String, (u64, u64))> =
            (0..10).map(|i| (format!("s{i}"), (i as u64 * 1000, i as u64 * 1000 + 50))).collect();
        let queries: Vec<(String, (u64, u64))> = truth
            .iter()
            .map(|(q, s)| (format!("q{q}_{s}"), (*s as u64 * 1000, *s as u64 * 1000 + 50)))
            .collect();
        let bench = Benchmark::from_coordinates(&queries, &subjects, 16);
        let test_pairs: Vec<(String, String)> = test
            .iter()
            .map(|(q, s)| (format!("q{q}_{s}"), format!("s{s}")))
            .collect();
        let m = MappingMetrics::classify(&test_pairs, &bench);
        // tp + fp = number of test pairs (every output is classified).
        prop_assert_eq!(m.tp + m.fp, test_pairs.len());
        // recall <= precision or precision == 0 (paper's bound).
        prop_assert!(m.recall() <= m.precision() + 1e-12 || m.precision() == 0.0);
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        prop_assert!((0.0..=1.0).contains(&m.f1()));
    }
}
