//! Insert-only open-addressing hash map keyed by `u64`.
//!
//! The sketch table's keys are k-mer codes — already well-mixed integers —
//! so the standard library's HashDoS-resistant SipHash is pure overhead on
//! the hot lookup path. `U64Map` uses Fibonacci (multiplicative) hashing
//! into a power-of-two table with linear probing. There is no deletion:
//! the mapping workloads only build and query.

/// Fibonacci multiplier: `floor(2^64 / φ)`, odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Insert-only open-addressing map from `u64` keys to `V` values.
#[derive(Clone, Debug)]
pub struct U64Map<V> {
    /// Parallel arrays; `slots[i] == None` marks an empty bucket.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl<V> Default for U64Map<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> U64Map<V> {
    /// Empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Empty map sized for at least `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        U64Map {
            slots,
            len: 0,
            mask: cap - 1,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Fibonacci hashing: the high bits of key*FIB are well mixed.
        ((key.wrapping_mul(FIB)) >> 32) as usize & self.mask
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => break,
                _ => i = (i + 1) & self.mask,
            }
        }
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Get the value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, default()));
                    self.len += 1;
                    break;
                }
            }
        }
        self.slots[i]
            .as_mut()
            .map(|(_, v)| v)
            .expect("slot just filled")
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Consume into `(key, value)` pairs in unspecified order.
    pub fn into_iter_pairs(self) -> impl Iterator<Item = (u64, V)> {
        self.slots.into_iter().flatten()
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut bigger = U64Map::<V> {
            slots: {
                let mut s = Vec::with_capacity(new_cap);
                s.resize_with(new_cap, || None);
                s
            },
            len: 0,
            mask: new_cap - 1,
        };
        for (k, v) in self.slots.drain(..).flatten() {
            // Direct re-insert; capacities guarantee a free bucket.
            let mut i = bigger.bucket(k);
            while bigger.slots[i].is_some() {
                i = (i + 1) & bigger.mask;
            }
            bigger.slots[i] = Some((k, v));
            bigger.len += 1;
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = U64Map::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(42, "x"), None);
        assert_eq!(m.insert(42, "y"), Some("x"));
        assert_eq!(m.get(42), Some(&"y"));
        assert_eq!(m.get(43), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        // Poly-A k-mers encode to 0; the map must not treat 0 as a sentinel.
        let mut m = U64Map::new();
        m.insert(0, 7u32);
        assert_eq!(m.get(0), Some(&7));
        assert!(m.contains_key(0));
    }

    #[test]
    fn get_or_insert_with_semantics() {
        let mut m: U64Map<Vec<u32>> = U64Map::new();
        m.get_or_insert_with(5, Vec::new).push(1);
        m.get_or_insert_with(5, Vec::new).push(2);
        assert_eq!(m.get(5), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = U64Map::with_capacity(4);
        for k in 0u64..10_000 {
            m.insert(k.wrapping_mul(0x517C_C1B7_2722_0A95), k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0u64..10_000 {
            assert_eq!(m.get(k.wrapping_mul(0x517C_C1B7_2722_0A95)), Some(&k));
        }
    }

    #[test]
    fn matches_std_hashmap_on_mixed_ops() {
        let mut ours = U64Map::new();
        let mut std_map = HashMap::new();
        let mut state = 88172645463325252u64;
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 701; // force collisions/overwrites
            let val = state >> 32;
            assert_eq!(ours.insert(key, val), std_map.insert(key, val));
        }
        assert_eq!(ours.len(), std_map.len());
        for (k, v) in std_map {
            assert_eq!(ours.get(k), Some(&v));
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut m = U64Map::new();
        for k in 0..100u64 {
            m.insert(k * 3, k);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..100).map(|k| k * 3).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn adversarial_same_bucket_keys() {
        // Keys crafted to collide in the initial table exercise probing.
        let mut m = U64Map::with_capacity(8);
        let cap = 16u64; // with_capacity(8) → 16 slots
        let keys: Vec<u64> = (0..12).map(|i| i * cap * 4).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&i));
        }
    }

    /// First `n` keys whose initial bucket in `m` is `bucket` — a
    /// hand-built maximal collision chain for the current table geometry.
    fn colliding_keys(m: &U64Map<u64>, bucket: usize, n: usize) -> Vec<u64> {
        (0u64..)
            .filter(|&k| m.bucket(k) == bucket)
            .take(n)
            .collect()
    }

    #[test]
    fn collision_chain_probes_terminate_for_absent_keys() {
        // 10 keys in one probe chain — the 16-slot table grows only at the
        // 13th insert, so every lookup here walks the chain linearly.
        let mut m: U64Map<u64> = U64Map::with_capacity(8);
        let keys = colliding_keys(&m, 3, 10);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.insert(k, i as u64), None);
        }
        assert_eq!(m.len(), 10, "no resize yet");
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&(i as u64)), "chain member {i}");
        }
        // Absent keys that hash *into* the chain must walk it and stop at
        // the first empty slot — never loop, never false-positive.
        let absent = colliding_keys(&m, 3, 12)[10..].to_vec();
        for k in absent {
            assert_eq!(m.get(k), None);
            assert!(!m.contains_key(k));
        }
        // An absent key hashing right past the chain's end terminates too.
        let clear = colliding_keys(&m, 14, 1)[0];
        assert_eq!(m.get(clear), None);
    }

    #[test]
    fn get_mut_walks_collision_chains() {
        let mut m: U64Map<u64> = U64Map::with_capacity(8);
        let keys = colliding_keys(&m, 0, 8);
        for &k in &keys {
            m.insert(k, 0);
        }
        // Mutate only the chain's last member; its neighbors must be
        // untouched (a probe that stops early would hit the wrong slot).
        *m.get_mut(keys[7]).unwrap() = 99;
        for &k in &keys[..7] {
            assert_eq!(m.get(k), Some(&0));
        }
        assert_eq!(m.get(keys[7]), Some(&99));
        assert_eq!(
            m.get_mut(keys[7] + 1).is_some(),
            m.contains_key(keys[7] + 1)
        );
    }

    #[test]
    fn resize_under_load_preserves_chains_and_values() {
        // Seed one dense collision chain, then hammer the map with enough
        // mixed inserts to force several rehashes, re-checking the chain
        // after every insert — growth must never lose or reorder a chain.
        let mut m: U64Map<u64> = U64Map::with_capacity(8);
        let chain = colliding_keys(&m, 5, 10);
        for (i, &k) in chain.iter().enumerate() {
            m.insert(k, 1000 + i as u64);
        }
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut inserted: Vec<u64> = Vec::new();
        for _ in 0..3000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Disjoint from the chain keys (which are all small).
            let key = state | (1 << 63);
            if m.insert(key, state).is_none() {
                inserted.push(key);
            }
            for (i, &k) in chain.iter().enumerate() {
                assert_eq!(m.get(k), Some(&(1000 + i as u64)), "chain broke mid-growth");
            }
        }
        assert_eq!(m.len(), chain.len() + inserted.len());
        for &k in &inserted {
            assert!(m.contains_key(k));
        }
    }

    #[test]
    fn lookup_after_resize_honors_the_new_geometry() {
        // Keys that collided in the small table scatter after growth; all
        // invariants must hold in the new geometry: every key findable,
        // each exactly once in iteration, absent probes still terminate.
        let mut m: U64Map<u64> = U64Map::with_capacity(8);
        let old_chain = colliding_keys(&m, 7, 10);
        for (i, &k) in old_chain.iter().enumerate() {
            m.insert(k, i as u64);
        }
        let before_slots = m.slots.len();
        for k in 0..200u64 {
            m.insert((k + 1) << 32, k);
        }
        assert!(m.slots.len() > before_slots, "growth must have happened");
        for (i, &k) in old_chain.iter().enumerate() {
            assert_eq!(m.get(k), Some(&(i as u64)), "pre-resize chain member {i}");
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let dups = seen.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(dups, 0, "rehashing must not duplicate keys");
        assert_eq!(seen.len(), m.len());
        // Probe termination in the grown table: of the keys now hashing to
        // bucket 7, exactly the inserted ones (the old chain's small keys)
        // are found — probes for the rest stop at an empty slot.
        for k in colliding_keys(&m, 7, 40) {
            assert_eq!(m.contains_key(k), old_chain.contains(&k));
        }
        // get_or_insert_with on a present key after resize must not insert.
        let len = m.len();
        assert_eq!(*m.get_or_insert_with(old_chain[3], || 777), 3);
        assert_eq!(m.len(), len);
    }
}
