//! Insert-only open-addressing hash map keyed by `u64`.
//!
//! The sketch table's keys are k-mer codes — already well-mixed integers —
//! so the standard library's HashDoS-resistant SipHash is pure overhead on
//! the hot lookup path. `U64Map` uses Fibonacci (multiplicative) hashing
//! into a power-of-two table with linear probing. There is no deletion:
//! the mapping workloads only build and query.

/// Fibonacci multiplier: `floor(2^64 / φ)`, odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Insert-only open-addressing map from `u64` keys to `V` values.
#[derive(Clone, Debug)]
pub struct U64Map<V> {
    /// Parallel arrays; `slots[i] == None` marks an empty bucket.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl<V> Default for U64Map<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> U64Map<V> {
    /// Empty map with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Empty map sized for at least `n` entries without rehashing.
    pub fn with_capacity(n: usize) -> Self {
        let cap = (n.max(8) * 2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        U64Map {
            slots,
            len: 0,
            mask: cap - 1,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Fibonacci hashing: the high bits of key*FIB are well mixed.
        ((key.wrapping_mul(FIB)) >> 32) as usize & self.mask
    }

    /// Look up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => break,
                _ => i = (i + 1) & self.mask,
            }
        }
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Get the value for `key`, inserting `default()` first if absent.
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> V) -> &mut V {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => break,
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, default()));
                    self.len += 1;
                    break;
                }
            }
        }
        self.slots[i]
            .as_mut()
            .map(|(_, v)| v)
            .expect("slot just filled")
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & self.mask,
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Iterate over `(key, &value)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Consume into `(key, value)` pairs in unspecified order.
    pub fn into_iter_pairs(self) -> impl Iterator<Item = (u64, V)> {
        self.slots.into_iter().flatten()
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut bigger = U64Map::<V> {
            slots: {
                let mut s = Vec::with_capacity(new_cap);
                s.resize_with(new_cap, || None);
                s
            },
            len: 0,
            mask: new_cap - 1,
        };
        for (k, v) in self.slots.drain(..).flatten() {
            // Direct re-insert; capacities guarantee a free bucket.
            let mut i = bigger.bucket(k);
            while bigger.slots[i].is_some() {
                i = (i + 1) & bigger.mask;
            }
            bigger.slots[i] = Some((k, v));
            bigger.len += 1;
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut m = U64Map::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(42, "x"), None);
        assert_eq!(m.insert(42, "y"), Some("x"));
        assert_eq!(m.get(42), Some(&"y"));
        assert_eq!(m.get(43), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn zero_key_is_a_valid_key() {
        // Poly-A k-mers encode to 0; the map must not treat 0 as a sentinel.
        let mut m = U64Map::new();
        m.insert(0, 7u32);
        assert_eq!(m.get(0), Some(&7));
        assert!(m.contains_key(0));
    }

    #[test]
    fn get_or_insert_with_semantics() {
        let mut m: U64Map<Vec<u32>> = U64Map::new();
        m.get_or_insert_with(5, Vec::new).push(1);
        m.get_or_insert_with(5, Vec::new).push(2);
        assert_eq!(m.get(5), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = U64Map::with_capacity(4);
        for k in 0u64..10_000 {
            m.insert(k.wrapping_mul(0x517C_C1B7_2722_0A95), k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0u64..10_000 {
            assert_eq!(m.get(k.wrapping_mul(0x517C_C1B7_2722_0A95)), Some(&k));
        }
    }

    #[test]
    fn matches_std_hashmap_on_mixed_ops() {
        let mut ours = U64Map::new();
        let mut std_map = HashMap::new();
        let mut state = 88172645463325252u64;
        for _ in 0..5000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 701; // force collisions/overwrites
            let val = state >> 32;
            assert_eq!(ours.insert(key, val), std_map.insert(key, val));
        }
        assert_eq!(ours.len(), std_map.len());
        for (k, v) in std_map {
            assert_eq!(ours.get(k), Some(&v));
        }
    }

    #[test]
    fn iter_visits_every_entry_once() {
        let mut m = U64Map::new();
        for k in 0..100u64 {
            m.insert(k * 3, k);
        }
        let mut seen: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..100).map(|k| k * 3).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn adversarial_same_bucket_keys() {
        // Keys crafted to collide in the initial table exercise probing.
        let mut m = U64Map::with_capacity(8);
        let cap = 16u64; // with_capacity(8) → 16 slots
        let keys: Vec<u64> = (0..12).map(|i| i * cap * 4).collect();
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&i));
        }
    }
}
