//! Flat, arena-backed view of the sketch table — the in-memory shape of the
//! JEMIDX v4 on-disk format.
//!
//! Where [`crate::table::SketchTable`] owns one [`crate::u64map::U64Map`]
//! per trial (pointer-rich, rebuilt on every load), [`FlatTable`] is a
//! *view over a word buffer*: per trial, a power-of-two open-addressing
//! bucket array of `(code, offset·length)` pairs plus one contiguous
//! posting arena of subject ids packed two-per-word. The buffer can be an
//! owned `Vec<u64>` or a memory-mapped file — the table never copies out
//! of it, which is what makes a multi-gigabyte index loadable in
//! milliseconds (Platanus' `table` + `pos_pool` shape; mapquik's
//! zero-rebuild load discipline).
//!
//! ## Blob layout (word offsets relative to the blob start)
//!
//! ```text
//! word 0        trial count T
//! words 1..1+4T per trial t: bucket_off, bucket_cap, arena_off, arena_len
//!               (offsets are blob-relative word indices; arena_len counts
//!                postings, i.e. u32 subject ids, not words)
//! sections      for each trial, in order: bucket array then arena
//! ```
//!
//! * The bucket array holds `bucket_cap` (a power of two, or 0 for an
//!   empty trial) slot pairs `[code, off_len]`. `off_len == 0` marks an
//!   empty slot — unambiguous because every real posting list has length
//!   ≥ 1. Otherwise `off_len = (start << 24) | len`, addressing postings
//!   `start .. start+len` of this trial's arena (lists are capped at
//!   2^24−1 ids, arenas at 2^40 — far beyond any real contig set).
//! * Slot placement uses the same Fibonacci-hash + linear-probe scheme as
//!   [`crate::u64map::U64Map`], at load factor ≤ 0.5; lookups probe at
//!   most `bucket_cap` slots, so even a corrupt all-full table terminates.
//! * The arena packs subject ids little-end first: posting `j` lives in
//!   the low (even `j`) or high (odd `j`) half of word `arena_off + j/2`.
//!   The last word's unused half is zero.
//!
//! [`FlatTable::freeze_blob`] writes this layout *canonically* — codes in
//! ascending order — so the bytes are a pure function of the logical table
//! contents: save → load → save round-trips byte-identically regardless of
//! which backend the table came from.
//!
//! Construction from untrusted bytes goes through the fallible
//! [`FlatTable::from_source`] validator, which bounds-checks every section
//! and slot so no later lookup can index out of range or fail to
//! terminate. It deliberately does *not* verify checksums (the caller's
//! file format owns integrity) nor that subject ids are dense — use
//! [`FlatTable::max_subject`] to range-check ids against a subject count.

use crate::table::{SketchTable, SubjectId};
use std::fmt;
use std::sync::Arc;

/// Fibonacci multiplier, identical to `U64Map`'s.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Low bits of `off_len` holding the posting-list length.
const LEN_BITS: u32 = 24;
const LEN_MASK: u64 = (1 << LEN_BITS) - 1;

/// A borrowable buffer of `u64` words backing a [`FlatTable`].
///
/// Implemented by `Vec<u64>` (the owned / portable path) and by the mmap
/// wrapper in `jem-mmap` (via a newtype in `jem-core`). The contract is
/// just stability: the slice must not change length or contents while the
/// table holds the source.
pub trait WordSource: fmt::Debug + Send + Sync {
    /// The backing words.
    fn words(&self) -> &[u64];
}

impl WordSource for Vec<u64> {
    fn words(&self) -> &[u64] {
        self
    }
}

/// Typed failure of validating a flat-table blob.
///
/// Every structural way a blob can violate the layout above maps to a
/// variant here — validation never panics, no matter the input words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlatError {
    /// The blob (or a section it declares) extends past the buffer.
    Truncated {
        /// Words the layout required at the point of failure.
        needed: usize,
        /// Words actually available.
        have: usize,
    },
    /// The blob declares a different trial count than expected.
    TrialMismatch {
        /// Trials the blob declares.
        blob: u64,
        /// Trials the caller expected.
        expected: usize,
    },
    /// A trial's bucket capacity is neither zero nor a power of two.
    BadCapacity {
        /// The offending trial.
        trial: usize,
        /// The declared capacity.
        cap: u64,
    },
    /// A bucket slot addresses postings outside its trial's arena.
    PostingOutOfBounds {
        /// The offending trial.
        trial: usize,
        /// The offending slot index.
        slot: usize,
    },
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::Truncated { needed, have } => {
                write!(
                    f,
                    "flat table truncated: needed {needed} words, have {have}"
                )
            }
            FlatError::TrialMismatch { blob, expected } => {
                write!(f, "flat table declares {blob} trials, expected {expected}")
            }
            FlatError::BadCapacity { trial, cap } => {
                write!(
                    f,
                    "trial {trial} bucket capacity {cap} is not zero or a power of two"
                )
            }
            FlatError::PostingOutOfBounds { trial, slot } => {
                write!(
                    f,
                    "trial {trial} bucket slot {slot} addresses postings outside the arena"
                )
            }
        }
    }
}

impl std::error::Error for FlatError {}

/// Validated per-trial section geometry (absolute word indices).
#[derive(Clone, Copy, Debug)]
struct TrialMeta {
    bucket_off: usize,
    cap: usize,
    arena_off: usize,
    arena_len: usize,
}

/// The flat sketch table: a validated, read-only view over a word buffer.
///
/// Cloning is cheap (an `Arc` bump plus the small meta vector) — the serve
/// layer's epoch-pinned hot-reload swap relies on this.
#[derive(Clone, Debug)]
pub struct FlatTable {
    source: Arc<dyn WordSource>,
    trials: Vec<TrialMeta>,
    key_count: usize,
    entry_count: usize,
}

impl FlatTable {
    /// Freeze a hash-backed table into an owned flat blob and wrap it.
    pub fn freeze(table: &SketchTable) -> FlatTable {
        let banks: Vec<Vec<(u64, Vec<SubjectId>)>> = (0..table.trials())
            .map(|t| sorted_bank_of(table, t))
            .collect();
        let blob = Self::freeze_banks(&banks);
        let trials = banks.len();
        FlatTable::from_source(Arc::new(blob), 0, trials)
            .expect("a freshly frozen blob always validates")
    }

    /// Serialize a hash-backed table to the canonical blob words.
    pub fn freeze_blob(table: &SketchTable) -> Vec<u64> {
        let banks: Vec<Vec<(u64, Vec<SubjectId>)>> = (0..table.trials())
            .map(|t| sorted_bank_of(table, t))
            .collect();
        Self::freeze_banks(&banks)
    }

    /// Re-serialize this table to the canonical blob words. Because the
    /// writer is canonical (codes ascending), the output is byte-identical
    /// to the blob this table was loaded from, and to
    /// [`FlatTable::freeze_blob`] of the equivalent hash table.
    pub fn to_blob(&self) -> Vec<u64> {
        let banks: Vec<Vec<(u64, Vec<SubjectId>)>> =
            (0..self.trials()).map(|t| self.bank_entries(t)).collect();
        Self::freeze_banks(&banks)
    }

    /// Canonical writer over per-trial `(code, postings)` banks, each
    /// sorted ascending by code with sorted-unique non-empty postings.
    fn freeze_banks(banks: &[Vec<(u64, Vec<SubjectId>)>]) -> Vec<u64> {
        let t = banks.len();
        let mut blob = vec![0u64; 1 + 4 * t];
        blob[0] = t as u64;
        for (ti, bank) in banks.iter().enumerate() {
            let n_keys = bank.len();
            let cap = if n_keys == 0 {
                0
            } else {
                (n_keys * 2).next_power_of_two()
            };
            let bucket_off = blob.len();
            blob.resize(bucket_off + 2 * cap, 0);
            let arena_len: usize = bank.iter().map(|(_, v)| v.len()).sum();
            let arena_off = blob.len();
            blob.resize(arena_off + arena_len.div_ceil(2), 0);
            assert!(
                (arena_len as u64) <= (u64::MAX >> LEN_BITS),
                "posting arena too large for v4 offsets"
            );
            let mask = cap.wrapping_sub(1);
            let mut next = 0usize;
            for (code, subjects) in bank {
                assert!(
                    !subjects.is_empty() && subjects.len() as u64 <= LEN_MASK,
                    "posting list length {} outside v4 bounds [1, 2^24)",
                    subjects.len()
                );
                for (idx, &s) in subjects.iter().enumerate() {
                    let j = next + idx;
                    blob[arena_off + (j >> 1)] |= u64::from(s) << (32 * (j & 1) as u32);
                }
                let off_len = ((next as u64) << LEN_BITS) | subjects.len() as u64;
                let mut i = ((code.wrapping_mul(FIB)) >> 32) as usize & mask;
                loop {
                    let slot = bucket_off + 2 * i;
                    if blob[slot + 1] == 0 {
                        blob[slot] = *code;
                        blob[slot + 1] = off_len;
                        break;
                    }
                    i = (i + 1) & mask;
                }
                next += subjects.len();
            }
            blob[1 + 4 * ti] = bucket_off as u64; // blob-relative
            blob[1 + 4 * ti + 1] = cap as u64;
            blob[1 + 4 * ti + 2] = arena_off as u64;
            blob[1 + 4 * ti + 3] = arena_len as u64;
        }
        blob
    }

    /// Validate a blob at `source.words()[base ..]` and wrap it.
    ///
    /// Checks the trial count against `expect_trials`, every section's
    /// bounds against the buffer, capacity shapes, and every occupied
    /// bucket slot's posting range — after which all accessors are
    /// panic-free. Returns `Err` (never panics) on any violation.
    pub fn from_source(
        source: Arc<dyn WordSource>,
        base: usize,
        expect_trials: usize,
    ) -> Result<FlatTable, FlatError> {
        let words = source.words();
        let have = words.len();
        let need = |needed: usize| FlatError::Truncated { needed, have };
        if base >= have {
            return Err(need(base + 1));
        }
        let declared = words[base];
        if declared != expect_trials as u64 {
            return Err(FlatError::TrialMismatch {
                blob: declared,
                expected: expect_trials,
            });
        }
        let t = expect_trials;
        let meta_end = base
            .checked_add(1)
            .and_then(|v| v.checked_add(t.checked_mul(4)?))
            .ok_or(need(usize::MAX))?;
        if meta_end > have {
            return Err(need(meta_end));
        }
        let mut trials = Vec::with_capacity(t);
        let mut key_count = 0usize;
        let mut entry_count = 0usize;
        for ti in 0..t {
            let m = base + 1 + 4 * ti;
            let rel_bucket = words[m];
            let cap = words[m + 1];
            let rel_arena = words[m + 2];
            let arena_len = words[m + 3];
            if cap != 0 && !cap.is_power_of_two() {
                return Err(FlatError::BadCapacity { trial: ti, cap });
            }
            let cap = to_index(cap, have)?;
            let arena_len = to_index(arena_len, have)?;
            let bucket_off = base
                .checked_add(to_index(rel_bucket, have)?)
                .ok_or(need(usize::MAX))?;
            let bucket_end = bucket_off
                .checked_add(cap.checked_mul(2).ok_or(need(usize::MAX))?)
                .ok_or(need(usize::MAX))?;
            if bucket_end > have {
                return Err(need(bucket_end));
            }
            let arena_off = base
                .checked_add(to_index(rel_arena, have)?)
                .ok_or(need(usize::MAX))?;
            let arena_end = arena_off
                .checked_add(arena_len.div_ceil(2))
                .ok_or(need(usize::MAX))?;
            if arena_end > have {
                return Err(need(arena_end));
            }
            for slot in 0..cap {
                let off_len = words[bucket_off + 2 * slot + 1];
                if off_len == 0 {
                    continue;
                }
                let start = (off_len >> LEN_BITS) as usize;
                let len = (off_len & LEN_MASK) as usize;
                if len == 0 || start.checked_add(len).is_none_or(|end| end > arena_len) {
                    return Err(FlatError::PostingOutOfBounds { trial: ti, slot });
                }
                key_count += 1;
                entry_count += len;
            }
            trials.push(TrialMeta {
                bucket_off,
                cap,
                arena_off,
                arena_len,
            });
        }
        Ok(FlatTable {
            source,
            trials,
            key_count,
            entry_count,
        })
    }

    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.trials.len()
    }

    /// Total `(trial, code)` key count across banks.
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    /// Total `(trial, code, subject)` association count.
    pub fn entry_count(&self) -> usize {
        self.entry_count
    }

    /// Append the subjects registered under `(trial, code)` — sorted
    /// ascending, like [`SketchTable::lookup`] — to `out`. Appends nothing
    /// on a miss.
    pub fn lookup_into(&self, trial: usize, code: u64, out: &mut Vec<SubjectId>) {
        let m = self.trials[trial];
        if m.cap == 0 {
            return;
        }
        let words = self.source.words();
        let mask = m.cap - 1;
        let mut i = ((code.wrapping_mul(FIB)) >> 32) as usize & mask;
        for _ in 0..m.cap {
            let slot = m.bucket_off + 2 * i;
            let off_len = words[slot + 1];
            if off_len == 0 {
                return;
            }
            if words[slot] == code {
                let start = (off_len >> LEN_BITS) as usize;
                let len = (off_len & LEN_MASK) as usize;
                extend_postings(words, m.arena_off, start, len, out);
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Visit every `(code, posting-count)` key of bank `trial`, in
    /// unspecified order — the cheap walk behind shard occupancy counts.
    pub fn for_each_key(&self, trial: usize, mut f: impl FnMut(u64, usize)) {
        let m = self.trials[trial];
        let words = self.source.words();
        for slot in 0..m.cap {
            let off_len = words[m.bucket_off + 2 * slot + 1];
            if off_len != 0 {
                f(
                    words[m.bucket_off + 2 * slot],
                    (off_len & LEN_MASK) as usize,
                );
            }
        }
    }

    /// Bank `trial` as owned `(code, subjects)` entries, sorted ascending
    /// by code — the canonical order the writer wants.
    pub fn bank_entries(&self, trial: usize) -> Vec<(u64, Vec<SubjectId>)> {
        let m = self.trials[trial];
        let words = self.source.words();
        let mut out = Vec::new();
        for slot in 0..m.cap {
            let off_len = words[m.bucket_off + 2 * slot + 1];
            if off_len == 0 {
                continue;
            }
            let code = words[m.bucket_off + 2 * slot];
            let start = (off_len >> LEN_BITS) as usize;
            let len = (off_len & LEN_MASK) as usize;
            let mut subjects = Vec::new();
            extend_postings(words, m.arena_off, start, len, &mut subjects);
            out.push((code, subjects));
        }
        out.sort_unstable_by_key(|&(code, _)| code);
        out
    }

    /// Rebuild an equivalent hash-backed [`SketchTable`] (migration and
    /// legacy-format writes — not a hot path).
    pub fn to_sketch_table(&self) -> SketchTable {
        let mut table = SketchTable::new(self.trials());
        for t in 0..self.trials() {
            for (code, subjects) in self.bank_entries(t) {
                for s in subjects {
                    table.insert(t, code, s);
                }
            }
        }
        table
    }

    /// Largest subject id present in any arena, or `None` for an empty
    /// table. Callers that know the subject count use this to range-check
    /// a loaded table in one cheap sequential pass.
    pub fn max_subject(&self) -> Option<SubjectId> {
        let words = self.source.words();
        let mut max: Option<SubjectId> = None;
        for m in &self.trials {
            for j in 0..m.arena_len {
                let w = words[m.arena_off + (j >> 1)];
                let id = if j & 1 == 0 {
                    w as u32
                } else {
                    (w >> 32) as u32
                };
                max = Some(max.map_or(id, |v| v.max(id)));
            }
        }
        max
    }

    /// Report one `index.bucket_occupancy` observation per key, matching
    /// [`SketchTable::observe_occupancy`].
    pub fn observe_occupancy(&self, rec: &dyn jem_obs::Recorder) {
        for t in 0..self.trials() {
            self.for_each_key(t, |_, len| {
                rec.observe("index.bucket_occupancy", len as u64);
            });
        }
    }

    /// Approximate resident bytes attributable to this view: the backing
    /// words when owned; an mmap'd source is shared page cache, but the
    /// number still describes the artifact's footprint.
    pub fn approx_bytes(&self) -> usize {
        self.source.words().len() * 8
    }
}

/// Decode packed postings `start..start+len` (validated in range) into `out`.
fn extend_postings(
    words: &[u64],
    arena_off: usize,
    start: usize,
    len: usize,
    out: &mut Vec<SubjectId>,
) {
    out.reserve(len);
    for j in start..start + len {
        let w = words[arena_off + (j >> 1)];
        let id = if j & 1 == 0 {
            w as u32
        } else {
            (w >> 32) as u32
        };
        out.push(id);
    }
}

/// Convert an untrusted `u64` into a `usize` index, treating anything that
/// cannot possibly fit the buffer as truncation.
fn to_index(v: u64, have: usize) -> Result<usize, FlatError> {
    usize::try_from(v).map_err(|_| FlatError::Truncated {
        needed: usize::MAX,
        have,
    })
}

/// Bank `trial` of a hash table as sorted `(code, subjects)` entries.
fn sorted_bank_of(table: &SketchTable, trial: usize) -> Vec<(u64, Vec<SubjectId>)> {
    let mut bank: Vec<(u64, Vec<SubjectId>)> = table
        .iter_bank(trial)
        .map(|(code, subjects)| (code, subjects.to_vec()))
        .collect();
    bank.sort_unstable_by_key(|&(code, _)| code);
    bank
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sketch::{sketch_by_jem, HashFamily, JemParams};

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    fn sample_table(trials: usize, subjects: u32, seed: u64) -> SketchTable {
        let family = HashFamily::generate(trials, seed);
        let params = JemParams::new(6, 5, 80).unwrap();
        let mut table = SketchTable::new(trials);
        for subject in 0..subjects {
            let seq = rng_seq(300, u64::from(subject) + seed * 100);
            table.insert_sketch(&sketch_by_jem(&seq, params, &family), subject);
        }
        table
    }

    fn lookup_flat(flat: &FlatTable, t: usize, code: u64) -> Vec<SubjectId> {
        let mut out = Vec::new();
        flat.lookup_into(t, code, &mut out);
        out
    }

    #[test]
    fn freeze_preserves_every_lookup() {
        let table = sample_table(4, 12, 3);
        let flat = FlatTable::freeze(&table);
        assert_eq!(flat.trials(), table.trials());
        assert_eq!(flat.key_count(), table.key_count());
        assert_eq!(flat.entry_count(), table.entry_count());
        for t in 0..table.trials() {
            for (code, subjects) in table.iter_bank(t) {
                assert_eq!(lookup_flat(&flat, t, code), subjects.to_vec());
            }
            // A code that is absent stays absent.
            assert!(lookup_flat(&flat, t, 0xDEAD_BEEF_0BAD_F00D).is_empty());
        }
    }

    #[test]
    fn freeze_is_canonical_and_roundtrips() {
        let table = sample_table(3, 10, 7);
        let blob = FlatTable::freeze_blob(&table);
        let flat = FlatTable::from_source(Arc::new(blob.clone()), 0, 3).unwrap();
        // Re-serializing the flat view reproduces the exact words.
        assert_eq!(flat.to_blob(), blob);
        // And rebuilding a hash table then re-freezing also reproduces them.
        assert_eq!(FlatTable::freeze_blob(&flat.to_sketch_table()), blob);
    }

    #[test]
    fn empty_table_freezes_and_validates() {
        let table = SketchTable::new(5);
        let flat = FlatTable::freeze(&table);
        assert_eq!(flat.trials(), 5);
        assert_eq!(flat.entry_count(), 0);
        assert_eq!(flat.max_subject(), None);
        assert!(lookup_flat(&flat, 2, 42).is_empty());
    }

    #[test]
    fn bank_entries_sorted_by_code() {
        let table = sample_table(2, 8, 11);
        let flat = FlatTable::freeze(&table);
        for t in 0..2 {
            let entries = flat.bank_entries(t);
            assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
            let total: usize = entries.iter().map(|(_, v)| v.len()).sum();
            let mut expect: Vec<(u64, Vec<SubjectId>)> =
                table.iter_bank(t).map(|(c, s)| (c, s.to_vec())).collect();
            expect.sort_unstable_by_key(|&(c, _)| c);
            assert_eq!(entries, expect);
            let _ = total;
        }
    }

    #[test]
    fn max_subject_matches_table_contents() {
        let table = sample_table(3, 9, 13);
        let flat = FlatTable::freeze(&table);
        let expect = (0..3)
            .flat_map(|t| table.iter_bank(t))
            .flat_map(|(_, s)| s.iter().copied())
            .max();
        assert_eq!(flat.max_subject(), expect);
    }

    #[test]
    fn trial_mismatch_rejected() {
        let blob = FlatTable::freeze_blob(&sample_table(3, 4, 17));
        let err = FlatTable::from_source(Arc::new(blob), 0, 5).unwrap_err();
        assert!(matches!(
            err,
            FlatError::TrialMismatch {
                blob: 3,
                expected: 5
            }
        ));
    }

    #[test]
    fn truncation_at_every_length_rejected() {
        let blob = FlatTable::freeze_blob(&sample_table(2, 6, 19));
        for cut in 0..blob.len() {
            let err = FlatTable::from_source(Arc::new(blob[..cut].to_vec()), 0, 2);
            assert!(err.is_err(), "cut at {cut} validated");
        }
    }

    #[test]
    fn bad_capacity_rejected() {
        let mut blob = FlatTable::freeze_blob(&sample_table(1, 6, 23));
        blob[2] = 3; // trial 0 cap: not a power of two
        let err = FlatTable::from_source(Arc::new(blob), 0, 1).unwrap_err();
        assert!(matches!(err, FlatError::BadCapacity { trial: 0, cap: 3 }));
    }

    #[test]
    fn posting_overrun_rejected() {
        let table = sample_table(1, 6, 29);
        let mut blob = FlatTable::freeze_blob(&table);
        // Find an occupied slot and point it past the arena.
        let cap = blob[2] as usize;
        let bucket_off = blob[1] as usize;
        let arena_len = blob[4];
        let slot = (0..cap)
            .find(|s| blob[bucket_off + 2 * s + 1] != 0)
            .expect("sample table has keys");
        blob[bucket_off + 2 * slot + 1] = (arena_len << LEN_BITS) | 2;
        let err = FlatTable::from_source(Arc::new(blob), 0, 1).unwrap_err();
        assert!(matches!(
            err,
            FlatError::PostingOutOfBounds { trial: 0, .. }
        ));
    }

    #[test]
    fn flat_errors_display() {
        assert!(FlatError::Truncated { needed: 9, have: 3 }
            .to_string()
            .contains("truncated"));
        assert!(FlatError::TrialMismatch {
            blob: 1,
            expected: 2
        }
        .to_string()
        .contains("trials"));
        assert!(FlatError::BadCapacity { trial: 0, cap: 7 }
            .to_string()
            .contains("capacity"));
        assert!(FlatError::PostingOutOfBounds { trial: 0, slot: 4 }
            .to_string()
            .contains("arena"));
    }
}
