//! The `T`-banked sketch table `S` of Algorithm 2.
//!
//! Bank `t` maps a sketch k-mer code to the sorted list of subject ids whose
//! JEM sketch for trial `t` contained that code. The table also knows how to
//! flatten itself into a `u64` stream and merge flattened parts — the
//! payloads the distributed driver exchanges in its Allgatherv step (S3).

use crate::u64map::U64Map;
use jem_sketch::JemSketch;
use std::fmt;

/// Identifier of a subject (contig). `u32` caps subjects at ~4.3 billion,
/// far above the paper's largest contig set (98K).
pub type SubjectId = u32;

/// Typed failure of decoding an encoded sketch-table stream.
///
/// Every way a malformed stream can violate the
/// [`SketchTable::encode`]/[`SketchTable::encode_framed`] layout maps to a
/// variant here — decoding never panics, no matter the input bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the structure its headers promised.
    Truncated {
        /// Words the layout required at the point of failure.
        needed: usize,
        /// Words actually present.
        len: usize,
    },
    /// Words remained after the last bank was fully decoded.
    TrailingGarbage {
        /// Number of unconsumed trailing words.
        extra: usize,
    },
    /// A subject id does not fit in [`SubjectId`].
    SubjectIdOverflow {
        /// The offending raw value.
        value: u64,
    },
    /// A framed stream declares a different trial count than the target
    /// table.
    TrialMismatch {
        /// Trials declared by the stream.
        stream: usize,
        /// Trials of the decoding table.
        table: usize,
    },
    /// A framed stream's checksum does not match its payload.
    ChecksumMismatch {
        /// Checksum the frame header declared.
        declared: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, len } => {
                write!(f, "truncated stream: needed {needed} words, have {len}")
            }
            DecodeError::TrailingGarbage { extra } => {
                write!(f, "trailing garbage: {extra} words after the last bank")
            }
            DecodeError::SubjectIdOverflow { value } => {
                write!(f, "subject id {value} overflows u32")
            }
            DecodeError::TrialMismatch { stream, table } => {
                write!(
                    f,
                    "stream encodes {stream} trials but the table has {table}"
                )
            }
            DecodeError::ChecksumMismatch { declared, computed } => {
                write!(
                    f,
                    "checksum mismatch: frame declares {declared:#018x}, payload hashes to {computed:#018x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a over a word stream (little-endian bytes of each `u64`) — the
/// integrity check of the framed transport encoding.
pub fn checksum_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The sketch table: one bank per trial.
#[derive(Clone, Debug, Default)]
pub struct SketchTable {
    banks: Vec<U64Map<Vec<SubjectId>>>,
}

impl SketchTable {
    /// Empty table with `t` banks.
    pub fn new(t: usize) -> Self {
        SketchTable {
            banks: (0..t).map(|_| U64Map::new()).collect(),
        }
    }

    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.banks.len()
    }

    /// Insert a single `(trial, code) → subject` association.
    pub fn insert(&mut self, trial: usize, code: u64, subject: SubjectId) {
        let list = self.banks[trial].get_or_insert_with(code, Vec::new);
        // Keep lists sorted-unique so lookups return canonical output and
        // merges stay cheap. Insertion during a build is nearly always at
        // the tail (subjects arrive in id order), making this O(1) amortized.
        match list.binary_search(&subject) {
            Ok(_) => {}
            Err(pos) => list.insert(pos, subject),
        }
    }

    /// Insert every `(t, code)` entry of a subject's JEM sketch.
    pub fn insert_sketch(&mut self, sketch: &JemSketch, subject: SubjectId) {
        self.insert_trial_lists(&sketch.per_trial, subject);
    }

    /// Insert per-trial code lists directly — the allocation-free build
    /// path: a reused [`JemSketch`] lends its `per_trial` slices without
    /// the table taking ownership of anything.
    pub fn insert_trial_lists(&mut self, per_trial: &[Vec<u64>], subject: SubjectId) {
        assert_eq!(
            per_trial.len(),
            self.trials(),
            "sketch T must match table T"
        );
        for (t, codes) in per_trial.iter().enumerate() {
            for &code in codes {
                self.insert(t, code, subject);
            }
        }
    }

    /// Subjects registered under `(trial, code)`, sorted ascending.
    pub fn lookup(&self, trial: usize, code: u64) -> &[SubjectId] {
        self.banks[trial].get(code).map_or(&[], Vec::as_slice)
    }

    /// Iterate bank `trial`'s `(code, subjects)` entries in unspecified
    /// order. Out-of-crate re-partitioners (e.g. `jem-serve`'s shard split)
    /// walk the table through this without a round-trip via `encode`.
    pub fn iter_bank(&self, trial: usize) -> impl Iterator<Item = (u64, &[SubjectId])> {
        self.banks[trial]
            .iter()
            .map(|(code, v)| (code, v.as_slice()))
    }

    /// Total `(trial, code)` key count across banks.
    pub fn key_count(&self) -> usize {
        self.banks.iter().map(U64Map::len).sum()
    }

    /// Total `(trial, code, subject)` association count.
    pub fn entry_count(&self) -> usize {
        self.banks
            .iter()
            .flat_map(|b| b.iter())
            .map(|(_, v)| v.len())
            .sum()
    }

    /// Merge another table into this one (bank-wise union).
    pub fn merge_from(&mut self, other: &SketchTable) {
        assert_eq!(self.trials(), other.trials(), "tables must share T");
        for (t, bank) in other.banks.iter().enumerate() {
            for (code, subjects) in bank.iter() {
                for &s in subjects {
                    self.insert(t, code, s);
                }
            }
        }
    }

    /// Flatten to a `u64` stream for communication.
    ///
    /// Layout per bank: `[n_keys, (code, n_subjects, subjects...)*]`.
    /// The stream length in bytes (`8 × len`) is what the communication
    /// cost model charges for the Allgatherv in step S3.
    pub fn encode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.key_count() * 3 + self.trials());
        for bank in &self.banks {
            out.push(bank.len() as u64);
            for (code, subjects) in bank.iter() {
                out.push(code);
                out.push(subjects.len() as u64);
                out.extend(subjects.iter().map(|&s| u64::from(s)));
            }
        }
        out
    }

    /// Rebuild a table from [`SketchTable::encode`] output.
    pub fn decode(stream: &[u64], trials: usize) -> Result<SketchTable, DecodeError> {
        let mut table = SketchTable::new(trials);
        table.decode_into(stream)?;
        Ok(table)
    }

    /// Structural walk of an encoded stream without touching the table:
    /// verifies framing, bounds and subject-id ranges so the merge pass can
    /// run infallibly afterwards (making [`SketchTable::decode_into`]
    /// atomic — an erroring call leaves the table untouched).
    fn validate_stream(stream: &[u64], trials: usize) -> Result<(), DecodeError> {
        let len = stream.len();
        let mut i = 0usize;
        for _ in 0..trials {
            let n_keys = *stream
                .get(i)
                .ok_or(DecodeError::Truncated { needed: i + 1, len })?;
            i += 1;
            for _ in 0..n_keys {
                // `code` at i, `n_subjects` at i + 1, then the subject list.
                let n_subj = *stream
                    .get(i + 1)
                    .ok_or(DecodeError::Truncated { needed: i + 2, len })?;
                i += 2;
                let n_subj = usize::try_from(n_subj).map_err(|_| DecodeError::Truncated {
                    needed: usize::MAX,
                    len,
                })?;
                let end = i.checked_add(n_subj).ok_or(DecodeError::Truncated {
                    needed: usize::MAX,
                    len,
                })?;
                if end > len {
                    return Err(DecodeError::Truncated { needed: end, len });
                }
                for &w in &stream[i..end] {
                    if w > u64::from(SubjectId::MAX) {
                        return Err(DecodeError::SubjectIdOverflow { value: w });
                    }
                }
                i = end;
            }
        }
        if i != len {
            return Err(DecodeError::TrailingGarbage { extra: len - i });
        }
        Ok(())
    }

    /// Merge an encoded stream directly into this table — the hot path of
    /// the distributed driver's global-table build (S3): decoding `p`
    /// streams into one table avoids materializing `p` intermediates.
    ///
    /// Atomic: on a malformed stream the table is left exactly as it was
    /// (the stream is validated in a read-only pass before any insertion).
    pub fn decode_into(&mut self, stream: &[u64]) -> Result<(), DecodeError> {
        let trials = self.trials();
        Self::validate_stream(stream, trials)?;
        let mut i = 0;
        for t in 0..trials {
            let n_keys = stream[i] as usize;
            i += 1;
            for _ in 0..n_keys {
                let code = stream[i];
                let n_subj = stream[i + 1] as usize;
                i += 2;
                let list = self.banks[t].get_or_insert_with(code, Vec::new);
                for _ in 0..n_subj {
                    let s = stream[i] as SubjectId;
                    i += 1;
                    // Streams are per-rank sorted; appends are the common
                    // case, collisions across ranks fall back to insertion.
                    match list.last() {
                        Some(&last) if last < s => list.push(s),
                        Some(&last) if last == s => {}
                        _ => {
                            if let Err(pos) = list.binary_search(&s) {
                                list.insert(pos, s);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Flatten to a framed, integrity-checked `u64` stream for transport
    /// over an unreliable channel. Layout:
    ///
    /// ```text
    /// [trials, payload_len, fnv1a64(payload), payload…]
    /// ```
    ///
    /// where `payload` is [`SketchTable::encode`] output. Any single-word
    /// change, truncation, or extension of the frame is detected by
    /// [`SketchTable::decode_framed_into`].
    pub fn encode_framed(&self) -> Vec<u64> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(payload.len() + 3);
        out.push(self.trials() as u64);
        out.push(payload.len() as u64);
        out.push(checksum_words(&payload));
        out.extend(payload);
        out
    }

    /// Verify and merge a framed stream ([`SketchTable::encode_framed`]).
    ///
    /// Atomic like [`SketchTable::decode_into`]: any error leaves the
    /// table untouched.
    pub fn decode_framed_into(&mut self, frame: &[u64]) -> Result<(), DecodeError> {
        if frame.len() < 3 {
            return Err(DecodeError::Truncated {
                needed: 3,
                len: frame.len(),
            });
        }
        let trials = frame[0] as usize;
        if trials != self.trials() {
            return Err(DecodeError::TrialMismatch {
                stream: trials,
                table: self.trials(),
            });
        }
        let payload_len = usize::try_from(frame[1]).map_err(|_| DecodeError::Truncated {
            needed: usize::MAX,
            len: frame.len(),
        })?;
        let body = frame.len() - 3;
        if body < payload_len {
            return Err(DecodeError::Truncated {
                needed: payload_len + 3,
                len: frame.len(),
            });
        }
        if body > payload_len {
            return Err(DecodeError::TrailingGarbage {
                extra: body - payload_len,
            });
        }
        let payload = &frame[3..];
        let computed = checksum_words(payload);
        if computed != frame[2] {
            return Err(DecodeError::ChecksumMismatch {
                declared: frame[2],
                computed,
            });
        }
        self.decode_into(payload)
    }

    /// Approximate in-memory size in bytes (paper §III-C space analysis:
    /// `O(n · m_s · T)` per process after the gather).
    pub fn approx_bytes(&self) -> usize {
        self.key_count() * 16 + self.entry_count() * 4
    }

    /// Report one `index.bucket_occupancy` observation per `(trial, code)`
    /// key — the subject-list length — into `rec`. The distribution shows
    /// how selective sketch collisions are (long lists mean a code is
    /// shared by many subjects and contributes little discrimination).
    pub fn observe_occupancy(&self, rec: &dyn jem_obs::Recorder) {
        for bank in &self.banks {
            for (_, subjects) in bank.iter() {
                rec.observe("index.bucket_occupancy", subjects.len() as u64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sketch::{sketch_by_jem, HashFamily, JemParams};

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = SketchTable::new(3);
        t.insert(0, 100, 5);
        t.insert(0, 100, 2);
        t.insert(0, 100, 5); // duplicate ignored
        t.insert(2, 100, 9);
        assert_eq!(t.lookup(0, 100), &[2, 5]);
        assert_eq!(t.lookup(1, 100), &[] as &[SubjectId]);
        assert_eq!(t.lookup(2, 100), &[9]);
        assert_eq!(t.entry_count(), 3);
        assert_eq!(t.key_count(), 2);
    }

    #[test]
    fn iter_bank_visits_every_entry() {
        let mut t = SketchTable::new(2);
        t.insert(0, 100, 5);
        t.insert(0, 100, 2);
        t.insert(0, 7, 1);
        t.insert(1, 100, 9);
        let mut bank0: Vec<(u64, Vec<SubjectId>)> = t
            .iter_bank(0)
            .map(|(code, subjects)| (code, subjects.to_vec()))
            .collect();
        bank0.sort_unstable();
        assert_eq!(bank0, vec![(7, vec![1]), (100, vec![2, 5])]);
        let visited: usize = (0..t.trials())
            .flat_map(|b| t.iter_bank(b))
            .map(|(_, s)| s.len())
            .sum();
        assert_eq!(visited, t.entry_count());
    }

    #[test]
    fn insert_sketch_registers_all_trials() {
        let family = HashFamily::generate(4, 7);
        let params = JemParams::new(5, 4, 60).unwrap();
        let seq = rng_seq(500, 1);
        let sketch = sketch_by_jem(&seq, params, &family);
        let mut table = SketchTable::new(4);
        table.insert_sketch(&sketch, 17);
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            for &c in codes {
                assert_eq!(table.lookup(t, c), &[17]);
            }
        }
        assert_eq!(table.entry_count(), sketch.total_entries());
    }

    #[test]
    #[should_panic(expected = "sketch T must match table T")]
    fn trial_mismatch_panics() {
        let family = HashFamily::generate(4, 7);
        let sketch = sketch_by_jem(b"ACGTACGTACGT", JemParams::new(3, 2, 10).unwrap(), &family);
        SketchTable::new(8).insert_sketch(&sketch, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let family = HashFamily::generate(5, 3);
        let params = JemParams::new(6, 5, 80).unwrap();
        let mut table = SketchTable::new(5);
        for subject in 0..20u32 {
            let seq = rng_seq(400, u64::from(subject) + 100);
            table.insert_sketch(&sketch_by_jem(&seq, params, &family), subject);
        }
        let decoded = SketchTable::decode(&table.encode(), 5).unwrap();
        assert_eq!(decoded.key_count(), table.key_count());
        assert_eq!(decoded.entry_count(), table.entry_count());
        // Spot-check every bank agrees.
        for t in 0..5 {
            for (code, subjects) in table.banks[t].iter() {
                assert_eq!(decoded.lookup(t, code), subjects.as_slice());
            }
        }
    }

    #[test]
    fn merge_equals_union_build() {
        let family = HashFamily::generate(3, 9);
        let params = JemParams::new(5, 4, 50).unwrap();
        let seqs: Vec<Vec<u8>> = (0..12).map(|i| rng_seq(300, i + 400)).collect();

        // One table built from everything...
        let mut full = SketchTable::new(3);
        for (i, s) in seqs.iter().enumerate() {
            full.insert_sketch(&sketch_by_jem(s, params, &family), i as u32);
        }
        // ...must equal two half-tables merged (the S2→S3 path).
        let mut left = SketchTable::new(3);
        let mut right = SketchTable::new(3);
        for (i, s) in seqs.iter().enumerate() {
            let target = if i < 6 { &mut left } else { &mut right };
            target.insert_sketch(&sketch_by_jem(s, params, &family), i as u32);
        }
        left.merge_from(&right);
        assert_eq!(left.entry_count(), full.entry_count());
        for t in 0..3 {
            for (code, subjects) in full.banks[t].iter() {
                assert_eq!(left.lookup(t, code), subjects.as_slice());
            }
        }
    }

    #[test]
    fn empty_table_encodes_to_headers_only() {
        let t = SketchTable::new(4);
        let enc = t.encode();
        assert_eq!(enc, vec![0, 0, 0, 0]);
        let back = SketchTable::decode(&enc, 4).unwrap();
        assert_eq!(back.entry_count(), 0);
    }

    /// A populated table whose encoded stream exercises multi-subject lists.
    fn sample_table() -> SketchTable {
        let family = HashFamily::generate(3, 11);
        let params = JemParams::new(6, 5, 80).unwrap();
        let mut table = SketchTable::new(3);
        for subject in 0..10u32 {
            let seq = rng_seq(300, u64::from(subject) + 50);
            table.insert_sketch(&sketch_by_jem(&seq, params, &family), subject);
        }
        table
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut enc = SketchTable::new(2).encode();
        enc.push(99);
        assert_eq!(
            SketchTable::decode(&enc, 2).unwrap_err(),
            DecodeError::TrailingGarbage { extra: 1 }
        );
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let enc = sample_table().encode();
        for cut in 0..enc.len() {
            let err = SketchTable::decode(&enc[..cut], 3).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::TrailingGarbage { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_subject_overflow() {
        // One bank, one key, one subject that exceeds u32.
        let enc = vec![1, 42, 1, u64::from(u32::MAX) + 7];
        assert_eq!(
            SketchTable::decode(&enc, 1).unwrap_err(),
            DecodeError::SubjectIdOverflow {
                value: u64::from(u32::MAX) + 7
            }
        );
    }

    #[test]
    fn failed_decode_leaves_table_untouched() {
        let intact = sample_table();
        let mut enc = intact.encode();
        enc.push(7); // trailing garbage
        let mut target = SketchTable::new(3);
        target.insert(0, 1234, 9);
        let before_keys = target.key_count();
        let before_entries = target.entry_count();
        assert!(target.decode_into(&enc).is_err());
        assert_eq!(target.key_count(), before_keys, "decode must be atomic");
        assert_eq!(target.entry_count(), before_entries);
    }

    #[test]
    fn framed_roundtrip() {
        let table = sample_table();
        let frame = table.encode_framed();
        let mut back = SketchTable::new(3);
        back.decode_framed_into(&frame).unwrap();
        assert_eq!(back.key_count(), table.key_count());
        assert_eq!(back.entry_count(), table.entry_count());
    }

    #[test]
    fn framed_decode_detects_any_single_word_damage() {
        let table = sample_table();
        let frame = table.encode_framed();
        assert!(frame.len() > 10, "need a non-trivial frame");
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x8000_0001;
            let mut target = SketchTable::new(3);
            assert!(
                target.decode_framed_into(&bad).is_err(),
                "flip of word {i} went undetected"
            );
            assert_eq!(
                target.entry_count(),
                0,
                "flip of word {i} mutated the table"
            );
        }
        // Truncation and extension are detected too.
        let mut target = SketchTable::new(3);
        assert!(target
            .decode_framed_into(&frame[..frame.len() - 1])
            .is_err());
        let mut longer = frame.clone();
        longer.push(1);
        assert_eq!(
            target.decode_framed_into(&longer).unwrap_err(),
            DecodeError::TrailingGarbage { extra: 1 }
        );
    }

    #[test]
    fn framed_decode_rejects_trial_mismatch() {
        let frame = SketchTable::new(4).encode_framed();
        let mut target = SketchTable::new(6);
        assert_eq!(
            target.decode_framed_into(&frame).unwrap_err(),
            DecodeError::TrialMismatch {
                stream: 4,
                table: 6
            }
        );
    }

    #[test]
    fn decode_errors_display() {
        let e = DecodeError::Truncated { needed: 10, len: 4 };
        assert!(e.to_string().contains("truncated"));
        assert!(DecodeError::TrailingGarbage { extra: 2 }
            .to_string()
            .contains("trailing"));
        assert!(DecodeError::SubjectIdOverflow { value: 1 }
            .to_string()
            .contains("overflow"));
        assert!(DecodeError::TrialMismatch {
            stream: 1,
            table: 2
        }
        .to_string()
        .contains("trials"));
        assert!(DecodeError::ChecksumMismatch {
            declared: 1,
            computed: 2
        }
        .to_string()
        .contains("checksum"));
    }
}
