//! The `T`-banked sketch table `S` of Algorithm 2.
//!
//! Bank `t` maps a sketch k-mer code to the sorted list of subject ids whose
//! JEM sketch for trial `t` contained that code. The table also knows how to
//! flatten itself into a `u64` stream and merge flattened parts — the
//! payloads the distributed driver exchanges in its Allgatherv step (S3).

use crate::u64map::U64Map;
use jem_sketch::JemSketch;

/// Identifier of a subject (contig). `u32` caps subjects at ~4.3 billion,
/// far above the paper's largest contig set (98K).
pub type SubjectId = u32;

/// The sketch table: one bank per trial.
#[derive(Clone, Debug, Default)]
pub struct SketchTable {
    banks: Vec<U64Map<Vec<SubjectId>>>,
}

impl SketchTable {
    /// Empty table with `t` banks.
    pub fn new(t: usize) -> Self {
        SketchTable { banks: (0..t).map(|_| U64Map::new()).collect() }
    }

    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.banks.len()
    }

    /// Insert a single `(trial, code) → subject` association.
    pub fn insert(&mut self, trial: usize, code: u64, subject: SubjectId) {
        let list = self.banks[trial].get_or_insert_with(code, Vec::new);
        // Keep lists sorted-unique so lookups return canonical output and
        // merges stay cheap. Insertion during a build is nearly always at
        // the tail (subjects arrive in id order), making this O(1) amortized.
        match list.binary_search(&subject) {
            Ok(_) => {}
            Err(pos) => list.insert(pos, subject),
        }
    }

    /// Insert every `(t, code)` entry of a subject's JEM sketch.
    pub fn insert_sketch(&mut self, sketch: &JemSketch, subject: SubjectId) {
        assert_eq!(sketch.trials(), self.trials(), "sketch T must match table T");
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            for &code in codes {
                self.insert(t, code, subject);
            }
        }
    }

    /// Subjects registered under `(trial, code)`, sorted ascending.
    pub fn lookup(&self, trial: usize, code: u64) -> &[SubjectId] {
        self.banks[trial].get(code).map_or(&[], Vec::as_slice)
    }

    /// Total `(trial, code)` key count across banks.
    pub fn key_count(&self) -> usize {
        self.banks.iter().map(U64Map::len).sum()
    }

    /// Total `(trial, code, subject)` association count.
    pub fn entry_count(&self) -> usize {
        self.banks.iter().flat_map(|b| b.iter()).map(|(_, v)| v.len()).sum()
    }

    /// Merge another table into this one (bank-wise union).
    pub fn merge_from(&mut self, other: &SketchTable) {
        assert_eq!(self.trials(), other.trials(), "tables must share T");
        for (t, bank) in other.banks.iter().enumerate() {
            for (code, subjects) in bank.iter() {
                for &s in subjects {
                    self.insert(t, code, s);
                }
            }
        }
    }

    /// Flatten to a `u64` stream for communication.
    ///
    /// Layout per bank: `[n_keys, (code, n_subjects, subjects...)*]`.
    /// The stream length in bytes (`8 × len`) is what the communication
    /// cost model charges for the Allgatherv in step S3.
    pub fn encode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.key_count() * 3 + self.trials());
        for bank in &self.banks {
            out.push(bank.len() as u64);
            for (code, subjects) in bank.iter() {
                out.push(code);
                out.push(subjects.len() as u64);
                out.extend(subjects.iter().map(|&s| u64::from(s)));
            }
        }
        out
    }

    /// Rebuild a table from [`SketchTable::encode`] output.
    ///
    /// # Panics
    /// Panics on a malformed stream (truncation, subject overflow); encoded
    /// streams only ever travel between this process's simulated ranks.
    pub fn decode(stream: &[u64], trials: usize) -> SketchTable {
        let mut table = SketchTable::new(trials);
        table.decode_into(stream);
        table
    }

    /// Merge an encoded stream directly into this table — the hot path of
    /// the distributed driver's global-table build (S3): decoding `p`
    /// streams into one table avoids materializing `p` intermediates.
    ///
    /// # Panics
    /// Panics on a malformed stream.
    pub fn decode_into(&mut self, stream: &[u64]) {
        let trials = self.trials();
        let mut i = 0;
        for t in 0..trials {
            let n_keys = stream[i] as usize;
            i += 1;
            for _ in 0..n_keys {
                let code = stream[i];
                let n_subj = stream[i + 1] as usize;
                i += 2;
                let list = self.banks[t].get_or_insert_with(code, Vec::new);
                for _ in 0..n_subj {
                    let s = SubjectId::try_from(stream[i]).expect("subject id overflow");
                    i += 1;
                    // Streams are per-rank sorted; appends are the common
                    // case, collisions across ranks fall back to insertion.
                    match list.last() {
                        Some(&last) if last < s => list.push(s),
                        Some(&last) if last == s => {}
                        _ => {
                            if let Err(pos) = list.binary_search(&s) {
                                list.insert(pos, s);
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(i, stream.len(), "trailing garbage in encoded table");
    }

    /// Approximate in-memory size in bytes (paper §III-C space analysis:
    /// `O(n · m_s · T)` per process after the gather).
    pub fn approx_bytes(&self) -> usize {
        self.key_count() * 16 + self.entry_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sketch::{sketch_by_jem, HashFamily, JemParams};

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut t = SketchTable::new(3);
        t.insert(0, 100, 5);
        t.insert(0, 100, 2);
        t.insert(0, 100, 5); // duplicate ignored
        t.insert(2, 100, 9);
        assert_eq!(t.lookup(0, 100), &[2, 5]);
        assert_eq!(t.lookup(1, 100), &[] as &[SubjectId]);
        assert_eq!(t.lookup(2, 100), &[9]);
        assert_eq!(t.entry_count(), 3);
        assert_eq!(t.key_count(), 2);
    }

    #[test]
    fn insert_sketch_registers_all_trials() {
        let family = HashFamily::generate(4, 7);
        let params = JemParams::new(5, 4, 60).unwrap();
        let seq = rng_seq(500, 1);
        let sketch = sketch_by_jem(&seq, params, &family);
        let mut table = SketchTable::new(4);
        table.insert_sketch(&sketch, 17);
        for (t, codes) in sketch.per_trial.iter().enumerate() {
            for &c in codes {
                assert_eq!(table.lookup(t, c), &[17]);
            }
        }
        assert_eq!(table.entry_count(), sketch.total_entries());
    }

    #[test]
    #[should_panic(expected = "sketch T must match table T")]
    fn trial_mismatch_panics() {
        let family = HashFamily::generate(4, 7);
        let sketch = sketch_by_jem(b"ACGTACGTACGT", JemParams::new(3, 2, 10).unwrap(), &family);
        SketchTable::new(8).insert_sketch(&sketch, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let family = HashFamily::generate(5, 3);
        let params = JemParams::new(6, 5, 80).unwrap();
        let mut table = SketchTable::new(5);
        for subject in 0..20u32 {
            let seq = rng_seq(400, u64::from(subject) + 100);
            table.insert_sketch(&sketch_by_jem(&seq, params, &family), subject);
        }
        let decoded = SketchTable::decode(&table.encode(), 5);
        assert_eq!(decoded.key_count(), table.key_count());
        assert_eq!(decoded.entry_count(), table.entry_count());
        // Spot-check every bank agrees.
        for t in 0..5 {
            for (code, subjects) in table.banks[t].iter() {
                assert_eq!(decoded.lookup(t, code), subjects.as_slice());
            }
        }
    }

    #[test]
    fn merge_equals_union_build() {
        let family = HashFamily::generate(3, 9);
        let params = JemParams::new(5, 4, 50).unwrap();
        let seqs: Vec<Vec<u8>> = (0..12).map(|i| rng_seq(300, i + 400)).collect();

        // One table built from everything...
        let mut full = SketchTable::new(3);
        for (i, s) in seqs.iter().enumerate() {
            full.insert_sketch(&sketch_by_jem(s, params, &family), i as u32);
        }
        // ...must equal two half-tables merged (the S2→S3 path).
        let mut left = SketchTable::new(3);
        let mut right = SketchTable::new(3);
        for (i, s) in seqs.iter().enumerate() {
            let target = if i < 6 { &mut left } else { &mut right };
            target.insert_sketch(&sketch_by_jem(s, params, &family), i as u32);
        }
        left.merge_from(&right);
        assert_eq!(left.entry_count(), full.entry_count());
        for t in 0..3 {
            for (code, subjects) in full.banks[t].iter() {
                assert_eq!(left.lookup(t, code), subjects.as_slice());
            }
        }
    }

    #[test]
    fn empty_table_encodes_to_headers_only() {
        let t = SketchTable::new(4);
        let enc = t.encode();
        assert_eq!(enc, vec![0, 0, 0, 0]);
        let back = SketchTable::decode(&enc, 4);
        assert_eq!(back.entry_count(), 0);
    }

    #[test]
    #[should_panic(expected = "trailing garbage")]
    fn decode_rejects_trailing_garbage() {
        let mut enc = SketchTable::new(2).encode();
        enc.push(99);
        SketchTable::decode(&enc, 2);
    }
}
