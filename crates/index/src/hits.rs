//! Hit counting across trials — the paper's lazy-update strategy.
//!
//! For each query, Algorithm 2 counts how many trial collisions each subject
//! accumulated and reports the most frequent subject. Resetting an `n`-sized
//! counter array between queries would cost `O(n)` per query; the paper's
//! implementation note replaces that with an array `A[1..n]` of `(count,
//! query-id)` tuples updated lazily: a counter is implicitly zero whenever
//! its stored query id differs from the current query.

use crate::table::SubjectId;

/// Common interface of the lazy and naive counters (ablation benchmarks
/// swap implementations through this trait).
pub trait HitCounter {
    /// Record one hit of `subject` for query `query`.
    fn record(&mut self, query: u64, subject: SubjectId);
    /// Current hit count of `subject` for query `query`.
    fn count(&self, query: u64, subject: SubjectId) -> u32;
    /// Best `(subject, count)` for `query`, ties broken toward the smaller
    /// subject id. `None` if the query recorded no hits.
    fn best(&self, query: u64) -> Option<(SubjectId, u32)>;
}

/// Local instrumentation tallies of a [`LazyHitCounter`].
///
/// Plain (non-atomic) integers: the counter is single-threaded per worker,
/// so stats accumulate locally and the mapper flushes them to the global
/// recorder at batch boundaries — per-hit global counter traffic would
/// dominate the O(1) record path the lazy strategy exists to protect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HitStats {
    /// Subject-list entries pulled from the sketch table before per-trial
    /// dedup — "collisions probed". Updated by the mapping loop (the lookup
    /// happens outside this module), carried here so all per-batch tallies
    /// travel in one place.
    pub probed: u64,
    /// Hits recorded on a slot already owned by the current query — the
    /// cases where the lazy strategy skipped a reset and just incremented.
    pub resets_skipped: u64,
    /// Hits that lazily re-initialized a stale slot (count restarted at 1).
    pub lazy_resets: u64,
    /// Hits whose new count tied the running best of a *different* subject
    /// — how often the best-subject decision was momentarily ambiguous.
    pub ties: u64,
}

impl HitStats {
    /// Take the accumulated stats, leaving zeros behind.
    pub fn take(&mut self) -> HitStats {
        std::mem::take(self)
    }
}

/// The paper's lazy-update counter: `O(1)` per hit, no per-query reset.
#[derive(Clone, Debug)]
pub struct LazyHitCounter {
    /// `(u, v)` tuples: `u` = counter, `v` = query id the counter belongs to.
    slots: Vec<(u32, u64)>,
    /// Running best for the *current* query, maintained on the fly so
    /// `best` is O(1) (the paper scans bins; keeping the argmax incremental
    /// is equivalent and cheaper).
    current_query: u64,
    current_best: Option<(SubjectId, u32)>,
    /// Instrumentation tallies; see [`HitStats`].
    pub stats: HitStats,
}

/// Sentinel meaning "no query has touched this slot yet" (paper: v = −1).
const NO_QUERY: u64 = u64::MAX;

impl LazyHitCounter {
    /// Counter over `n` subjects.
    pub fn new(n_subjects: usize) -> Self {
        LazyHitCounter {
            slots: vec![(0, NO_QUERY); n_subjects],
            current_query: NO_QUERY,
            current_best: None,
            stats: HitStats::default(),
        }
    }

    /// Number of subject slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if there are no subject slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

impl HitCounter for LazyHitCounter {
    fn record(&mut self, query: u64, subject: SubjectId) {
        debug_assert_ne!(query, NO_QUERY, "query id u64::MAX is reserved");
        if query != self.current_query {
            self.current_query = query;
            self.current_best = None;
        }
        let slot = &mut self.slots[subject as usize];
        if slot.1 == query {
            slot.0 += 1;
            self.stats.resets_skipped += 1;
        } else {
            // Lazy reset: overwrite the stale query id, restart the count.
            *slot = (1, query);
            self.stats.lazy_resets += 1;
        }
        let count = slot.0;
        if matches!(self.current_best, Some((bs, bc)) if bc == count && bs != subject) {
            self.stats.ties += 1;
        }
        match self.current_best {
            // Strictly-greater keeps the first subject to reach a count,
            // which combined with ascending lookup order yields the
            // smallest-id tie-break.
            Some((best_s, best_c)) if count < best_c || (count == best_c && subject >= best_s) => {}
            _ => self.current_best = Some((subject, count)),
        }
    }

    fn count(&self, query: u64, subject: SubjectId) -> u32 {
        let slot = self.slots[subject as usize];
        if slot.1 == query {
            slot.0
        } else {
            0
        }
    }

    fn best(&self, query: u64) -> Option<(SubjectId, u32)> {
        if query == self.current_query {
            self.current_best
        } else {
            None
        }
    }
}

/// Reference counter that eagerly resets between queries — `O(n)` per query
/// switch. Used to validate the lazy counter and as an ablation baseline.
#[derive(Clone, Debug)]
pub struct NaiveHitCounter {
    counts: Vec<u32>,
    current_query: u64,
}

impl NaiveHitCounter {
    /// Counter over `n` subjects.
    pub fn new(n_subjects: usize) -> Self {
        NaiveHitCounter {
            counts: vec![0; n_subjects],
            current_query: NO_QUERY,
        }
    }
}

impl HitCounter for NaiveHitCounter {
    fn record(&mut self, query: u64, subject: SubjectId) {
        if query != self.current_query {
            self.counts.iter_mut().for_each(|c| *c = 0);
            self.current_query = query;
        }
        self.counts[subject as usize] += 1;
    }

    fn count(&self, query: u64, subject: SubjectId) -> u32 {
        if query == self.current_query {
            self.counts[subject as usize]
        } else {
            0
        }
    }

    fn best(&self, query: u64) -> Option<(SubjectId, u32)> {
        if query != self.current_query {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by(|(sa, ca), (sb, cb)| ca.cmp(cb).then(sb.cmp(sa)))
            .map(|(s, &c)| (s as SubjectId, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_query_counting() {
        let mut c = LazyHitCounter::new(10);
        c.record(0, 3);
        c.record(0, 3);
        c.record(0, 7);
        assert_eq!(c.count(0, 3), 2);
        assert_eq!(c.count(0, 7), 1);
        assert_eq!(c.count(0, 5), 0);
        assert_eq!(c.best(0), Some((3, 2)));
    }

    #[test]
    fn lazy_reset_between_queries() {
        let mut c = LazyHitCounter::new(4);
        c.record(0, 1);
        c.record(0, 1);
        c.record(1, 1); // new query: count restarts at 1 without any reset pass
        assert_eq!(c.count(1, 1), 1);
        assert_eq!(c.count(0, 1), 0, "stale query must read as zero");
        assert_eq!(c.best(1), Some((1, 1)));
        assert_eq!(c.best(0), None, "best of a past query is unavailable");
    }

    #[test]
    fn tie_breaks_to_smaller_subject() {
        for counter in [
            &mut LazyHitCounter::new(8) as &mut dyn HitCounter,
            &mut NaiveHitCounter::new(8) as &mut dyn HitCounter,
        ] {
            counter.record(5, 6);
            counter.record(5, 2);
            counter.record(5, 6);
            counter.record(5, 2);
            assert_eq!(counter.best(5), Some((2, 2)));
        }
    }

    #[test]
    fn lazy_equals_naive_on_random_stream() {
        let n = 50;
        let mut lazy = LazyHitCounter::new(n);
        let mut naive = NaiveHitCounter::new(n);
        let mut state = 0xDEADBEEFu64;
        let mut queries: Vec<u64> = Vec::new();
        for q in 0..200u64 {
            queries.push(q);
            let hits = 1 + (q % 17) as usize;
            let mut events: Vec<SubjectId> = Vec::new();
            for _ in 0..hits {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                events.push((state % n as u64) as SubjectId);
            }
            // Queries are processed one by one (paper: "queries in Qlocal
            // are processed one by one"), so interleave within one query only.
            for &s in &events {
                lazy.record(q, s);
                naive.record(q, s);
            }
            assert_eq!(lazy.best(q), naive.best(q), "query {q}");
            for s in 0..n as SubjectId {
                assert_eq!(lazy.count(q, s), naive.count(q, s), "query {q} subject {s}");
            }
        }
    }

    #[test]
    fn no_hits_no_best() {
        let c = LazyHitCounter::new(3);
        assert_eq!(c.best(0), None);
        let n = NaiveHitCounter::new(3);
        assert_eq!(n.best(0), None);
    }

    #[test]
    fn reuse_after_many_queries_stays_consistent() {
        // Slot reuse across many queries must never leak counts.
        let mut c = LazyHitCounter::new(2);
        for q in 0..1000u64 {
            c.record(q, (q % 2) as SubjectId);
            assert_eq!(c.count(q, (q % 2) as SubjectId), 1);
            assert_eq!(c.count(q, ((q + 1) % 2) as SubjectId), 0);
        }
    }
}
