//! The table backend: one lookup API over both sketch-table storages.
//!
//! A [`TableBackend`] is either the hash-backed [`SketchTable`] (what
//! builds and merges produce) or the arena-backed [`FlatTable`] view (what
//! a JEMIDX v4 load produces, possibly over a memory-mapped file). Mapping
//! drivers query through [`TableBackend::lookup_into`] and are byte-
//! identical across backends — the equivalence suites pin this.

use crate::flat::FlatTable;
use crate::table::{SketchTable, SubjectId};

/// Storage behind a mapper's sketch table.
#[derive(Clone, Debug)]
pub enum TableBackend {
    /// Hash-map banks — the build/merge representation.
    Hash(SketchTable),
    /// Flat bucket-table + posting-arena view — the load representation.
    Flat(FlatTable),
}

impl From<SketchTable> for TableBackend {
    fn from(table: SketchTable) -> Self {
        TableBackend::Hash(table)
    }
}

impl From<FlatTable> for TableBackend {
    fn from(table: FlatTable) -> Self {
        TableBackend::Flat(table)
    }
}

impl TableBackend {
    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        match self {
            TableBackend::Hash(t) => t.trials(),
            TableBackend::Flat(t) => t.trials(),
        }
    }

    /// Total `(trial, code)` key count across banks.
    pub fn key_count(&self) -> usize {
        match self {
            TableBackend::Hash(t) => t.key_count(),
            TableBackend::Flat(t) => t.key_count(),
        }
    }

    /// Total `(trial, code, subject)` association count.
    pub fn entry_count(&self) -> usize {
        match self {
            TableBackend::Hash(t) => t.entry_count(),
            TableBackend::Flat(t) => t.entry_count(),
        }
    }

    /// Append the subjects registered under `(trial, code)` — sorted
    /// ascending — to `out`; appends nothing on a miss. The one lookup
    /// primitive every mapping hot loop uses.
    #[inline]
    pub fn lookup_into(&self, trial: usize, code: u64, out: &mut Vec<SubjectId>) {
        match self {
            TableBackend::Hash(t) => out.extend_from_slice(t.lookup(trial, code)),
            TableBackend::Flat(t) => t.lookup_into(trial, code, out),
        }
    }

    /// Visit every `(code, posting-count)` key of bank `trial` in
    /// unspecified order (shard occupancy accounting).
    pub fn for_each_key(&self, trial: usize, mut f: impl FnMut(u64, usize)) {
        match self {
            TableBackend::Hash(t) => {
                for (code, subjects) in t.iter_bank(trial) {
                    f(code, subjects.len());
                }
            }
            TableBackend::Flat(t) => t.for_each_key(trial, f),
        }
    }

    /// Bank `trial` as owned `(code, subjects)` entries sorted ascending by
    /// code — the canonical serialization order.
    pub fn bank_entries(&self, trial: usize) -> Vec<(u64, Vec<SubjectId>)> {
        match self {
            TableBackend::Hash(t) => {
                let mut bank: Vec<(u64, Vec<SubjectId>)> = t
                    .iter_bank(trial)
                    .map(|(code, subjects)| (code, subjects.to_vec()))
                    .collect();
                bank.sort_unstable_by_key(|&(code, _)| code);
                bank
            }
            TableBackend::Flat(t) => t.bank_entries(trial),
        }
    }

    /// The hash table, if that is the backing (distributed merge paths).
    pub fn as_hash(&self) -> Option<&SketchTable> {
        match self {
            TableBackend::Hash(t) => Some(t),
            TableBackend::Flat(_) => None,
        }
    }

    /// An owned hash-backed table with identical contents (legacy-format
    /// writes and migrations; not a hot path).
    pub fn to_sketch_table(&self) -> SketchTable {
        match self {
            TableBackend::Hash(t) => t.clone(),
            TableBackend::Flat(t) => t.to_sketch_table(),
        }
    }

    /// Short name of the backing, for logs and metrics labels.
    pub fn backing(&self) -> &'static str {
        match self {
            TableBackend::Hash(_) => "hash",
            TableBackend::Flat(_) => "flat",
        }
    }

    /// Approximate resident bytes of the table structure.
    pub fn approx_bytes(&self) -> usize {
        match self {
            TableBackend::Hash(t) => t.approx_bytes(),
            TableBackend::Flat(t) => t.approx_bytes(),
        }
    }

    /// Report `index.bucket_occupancy` observations per key into `rec`.
    pub fn observe_occupancy(&self, rec: &dyn jem_obs::Recorder) {
        match self {
            TableBackend::Hash(t) => t.observe_occupancy(rec),
            TableBackend::Flat(t) => t.observe_occupancy(rec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatTable;

    fn sample() -> SketchTable {
        let mut t = SketchTable::new(2);
        t.insert(0, 100, 5);
        t.insert(0, 100, 2);
        t.insert(0, 7, 1);
        t.insert(1, 100, 9);
        t
    }

    #[test]
    fn both_backends_agree_on_everything() {
        let hash = TableBackend::Hash(sample());
        let flat = TableBackend::Flat(FlatTable::freeze(&sample()));
        assert_eq!(hash.trials(), flat.trials());
        assert_eq!(hash.key_count(), flat.key_count());
        assert_eq!(hash.entry_count(), flat.entry_count());
        assert_eq!(hash.backing(), "hash");
        assert_eq!(flat.backing(), "flat");
        for t in 0..2 {
            assert_eq!(hash.bank_entries(t), flat.bank_entries(t));
            for code in [7u64, 100, 9999] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                hash.lookup_into(t, code, &mut a);
                flat.lookup_into(t, code, &mut b);
                assert_eq!(a, b, "trial {t} code {code}");
            }
            let (mut ka, mut kb) = (Vec::new(), Vec::new());
            hash.for_each_key(t, |c, n| ka.push((c, n)));
            flat.for_each_key(t, |c, n| kb.push((c, n)));
            ka.sort_unstable();
            kb.sort_unstable();
            assert_eq!(ka, kb);
        }
        assert!(hash.as_hash().is_some());
        assert!(flat.as_hash().is_none());
        assert_eq!(flat.to_sketch_table().entry_count(), 4);
    }
}
