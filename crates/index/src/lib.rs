//! # jem-index — the sketch table `S` and hit counting for JEM-Mapper
//!
//! * [`u64map`] — a minimal insert-only open-addressing hash map keyed by
//!   `u64` k-mer codes (Fibonacci hashing, linear probing). k-mer-code keys
//!   make the default SipHash table needlessly slow; this map is the
//!   workspace's `FxHashMap` stand-in built from scratch.
//! * [`table`] — the `T`-banked sketch table: bank `t` maps a sketch k-mer
//!   code to the list of subject (contig) ids that produced it on trial `t`
//!   (paper Fig. 2 / Algorithm 2 line 2). Includes the flat `u64`-stream
//!   encoding used by the distributed driver's Allgatherv step.
//! * [`hits`] — the lazy-update hit counter array `A[1..n]` of `(count,
//!   query-id)` tuples (paper §III-C implementation notes), plus the naive
//!   reset-per-query counter it replaces, kept for tests and ablations.
//! * [`builder`] — shared-memory parallel table construction with rayon
//!   (sketch subjects in parallel, merge per-chunk tables — the same
//!   local-sketch/global-merge shape as the distributed steps S2–S3).
//! * [`flat`] — the arena-backed flat view of the table (bucket array +
//!   contiguous posting arena per trial): the in-memory shape of the
//!   JEMIDX v4 format, loadable zero-copy over an owned buffer or a
//!   memory-mapped file.
//! * [`backend`] — [`TableBackend`], one lookup API over both storages so
//!   the mapping drivers are byte-identical regardless of how the index
//!   was obtained (built vs. loaded).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod builder;
pub mod flat;
pub mod hits;
pub mod table;
pub mod u64map;

pub use backend::TableBackend;
pub use builder::{build_table_parallel, build_table_parallel_scheme, build_table_with};
pub use flat::{FlatError, FlatTable, WordSource};
pub use hits::{HitCounter, HitStats, LazyHitCounter, NaiveHitCounter};
pub use table::{checksum_words, DecodeError, SketchTable, SubjectId};
pub use u64map::U64Map;
