//! Shared-memory parallel sketch-table construction.
//!
//! Subjects are sketched in parallel with rayon and folded into per-worker
//! partial tables that are merged at the end — structurally the same
//! local-sketch → global-union shape as the distributed steps S2–S3, so the
//! shared-memory and distributed drivers produce identical tables.

use crate::table::{SketchTable, SubjectId};
use jem_sketch::{
    sketch_by_jem_into, sketch_by_scheme_into, HashFamily, JemParams, JemSketch, SketchScheme,
    SketchScratch,
};
use rayon::prelude::*;

/// Build a sketch table with an arbitrary per-subject sketcher.
///
/// The sketcher writes into a caller-provided [`JemSketch`] using a
/// [`SketchScratch`]; both live in the rayon fold state, so each worker
/// reuses one scratch and one sketch across all subjects it processes —
/// the steady-state build allocates only table storage.
///
/// Subjects are anything that lends bases (`AsRef<[u8]>`): borrowed
/// records, owned vectors, slices.
///
/// Deterministic: the resulting table is independent of worker count and
/// scheduling because subject-id lists are kept sorted.
pub fn build_table_with<S: AsRef<[u8]> + Sync>(
    subjects: &[S],
    trials: usize,
    sketcher: impl Fn(&[u8], &mut SketchScratch, &mut JemSketch) + Sync,
) -> SketchTable {
    let rec = jem_obs::recorder();
    let _span = jem_obs::Span::enter(rec, "index/build");
    let table = subjects
        .par_iter()
        .enumerate()
        .fold(
            || {
                (
                    SketchTable::new(trials),
                    SketchScratch::new(),
                    JemSketch::default(),
                )
            },
            |(mut table, mut scratch, mut sketch), (id, seq)| {
                sketcher(seq.as_ref(), &mut scratch, &mut sketch);
                table.insert_trial_lists(&sketch.per_trial, id as SubjectId);
                (table, scratch, sketch)
            },
        )
        .reduce(
            || {
                (
                    SketchTable::new(trials),
                    SketchScratch::new(),
                    JemSketch::default(),
                )
            },
            |(mut a, scratch, sketch), (b, _, _)| {
                a.merge_from(&b);
                (a, scratch, sketch)
            },
        )
        .0;
    if rec.enabled() {
        rec.add("index.subjects", subjects.len() as u64);
        rec.add("index.keys", table.key_count() as u64);
        rec.add("index.entries", table.entry_count() as u64);
        table.observe_occupancy(rec);
    }
    table
}

/// Build the sketch table with the paper's minimizer-based JEM sketch.
pub fn build_table_parallel<S: AsRef<[u8]> + Sync>(
    subjects: &[S],
    params: JemParams,
    family: &HashFamily,
) -> SketchTable {
    build_table_with(subjects, family.len(), |seq, scratch, sketch| {
        sketch_by_jem_into(seq, params, family, scratch, sketch)
    })
}

/// Build the sketch table under an alternative position scheme
/// (e.g. closed syncmers).
pub fn build_table_parallel_scheme<S: AsRef<[u8]> + Sync>(
    subjects: &[S],
    k: usize,
    ell: usize,
    scheme: SketchScheme,
    family: &HashFamily,
) -> SketchTable {
    build_table_with(subjects, family.len(), |seq, scratch, sketch| {
        sketch_by_scheme_into(seq, k, scheme, ell, family, scratch, sketch)
    })
}

/// Sequential reference build (tests compare the parallel build against it).
pub fn build_table_sequential<S: AsRef<[u8]>>(
    subjects: &[S],
    params: JemParams,
    family: &HashFamily,
) -> SketchTable {
    let mut table = SketchTable::new(family.len());
    for (id, seq) in subjects.iter().enumerate() {
        table.insert_sketch(
            &jem_sketch::sketch_by_jem(seq.as_ref(), params, family),
            id as SubjectId,
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_sketch::sketch_by_jem;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let subjects: Vec<Vec<u8>> = (0..40).map(|i| rng_seq(600, i + 7)).collect();
        let params = JemParams::new(8, 6, 100).unwrap();
        let family = HashFamily::generate(6, 13);
        let par = build_table_parallel(&subjects, params, &family);
        let seq = build_table_sequential(&subjects, params, &family);
        assert_eq!(par.key_count(), seq.key_count());
        assert_eq!(par.entry_count(), seq.entry_count());
        // Lookups must agree on every sketch of every subject.
        for (id, s) in subjects.iter().enumerate() {
            let sketch = sketch_by_jem(s, params, &family);
            for (t, codes) in sketch.per_trial.iter().enumerate() {
                for &c in codes {
                    assert_eq!(par.lookup(t, c), seq.lookup(t, c), "subject {id} trial {t}");
                }
            }
        }
    }

    #[test]
    fn empty_subject_list() {
        let params = JemParams::new(8, 6, 100).unwrap();
        let family = HashFamily::generate(3, 1);
        let t = build_table_parallel::<Vec<u8>>(&[], params, &family);
        assert_eq!(t.entry_count(), 0);
        assert_eq!(t.trials(), 3);
    }

    #[test]
    fn subjects_without_kmers_are_skipped_gracefully() {
        let subjects = vec![b"NNNNNNNNNN".to_vec(), rng_seq(300, 5), b"AC".to_vec()];
        let params = JemParams::new(8, 4, 50).unwrap();
        let family = HashFamily::generate(4, 2);
        let t = build_table_parallel(&subjects, params, &family);
        // Only subject 1 contributes entries.
        assert!(t.entry_count() > 0);
        let sketch = sketch_by_jem(&subjects[1], params, &family);
        for (trial, codes) in sketch.per_trial.iter().enumerate() {
            for &c in codes {
                assert_eq!(t.lookup(trial, c), &[1]);
            }
        }
    }
}
