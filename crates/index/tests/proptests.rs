//! Property-based tests for the index layer.

use jem_index::{HitCounter, LazyHitCounter, NaiveHitCounter, SketchTable, U64Map};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #[test]
    fn u64map_models_std_hashmap(ops in prop::collection::vec((0u64..200, 0u32..1000), 0..300)) {
        let mut ours: U64Map<u32> = U64Map::new();
        let mut model: HashMap<u64, u32> = HashMap::new();
        for (k, v) in ops {
            prop_assert_eq!(ours.insert(k, v), model.insert(k, v));
            prop_assert_eq!(ours.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(ours.get(*k), Some(v));
        }
        let mut keys: Vec<u64> = ours.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        let mut expect: Vec<u64> = model.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(keys, expect);
    }

    #[test]
    fn lazy_counter_equals_naive(
        stream in prop::collection::vec((0u64..40, 0u32..30), 1..400),
    ) {
        // Queries must be processed in order (the paper's "one by one");
        // sort the stream by query id to model that.
        let mut stream = stream;
        stream.sort_by_key(|&(q, _)| q);
        let mut lazy = LazyHitCounter::new(30);
        let mut naive = NaiveHitCounter::new(30);
        let mut last_q = None;
        for (q, s) in &stream {
            lazy.record(*q, *s);
            naive.record(*q, *s);
            last_q = Some(*q);
        }
        if let Some(q) = last_q {
            prop_assert_eq!(lazy.best(q), naive.best(q));
            for s in 0..30u32 {
                prop_assert_eq!(lazy.count(q, s), naive.count(q, s));
            }
        }
    }

    #[test]
    fn table_encode_decode_roundtrip(
        entries in prop::collection::vec((0usize..4, 0u64..500, 0u32..60), 0..200),
    ) {
        let mut table = SketchTable::new(4);
        for (t, code, subject) in &entries {
            table.insert(*t, *code, *subject);
        }
        let decoded = SketchTable::decode(&table.encode(), 4).unwrap();
        prop_assert_eq!(decoded.key_count(), table.key_count());
        prop_assert_eq!(decoded.entry_count(), table.entry_count());
        for (t, code, _) in &entries {
            prop_assert_eq!(decoded.lookup(*t, *code), table.lookup(*t, *code));
        }
    }

    #[test]
    fn table_lookup_sorted_unique(
        entries in prop::collection::vec((0u64..50, 0u32..40), 0..300),
    ) {
        let mut table = SketchTable::new(1);
        for (code, subject) in &entries {
            table.insert(0, *code, *subject);
        }
        for (code, _) in &entries {
            let list = table.lookup(0, *code);
            for w in list.windows(2) {
                prop_assert!(w[0] < w[1], "lookup lists must be sorted unique");
            }
        }
    }

    #[test]
    fn merge_is_union(
        left in prop::collection::vec((0u64..100, 0u32..30), 0..150),
        right in prop::collection::vec((0u64..100, 0u32..30), 0..150),
    ) {
        let mut a = SketchTable::new(2);
        for (code, s) in &left {
            a.insert(0, *code, *s);
            a.insert(1, code.wrapping_mul(3), *s);
        }
        let mut b = SketchTable::new(2);
        for (code, s) in &right {
            b.insert(0, *code, *s);
            b.insert(1, code.wrapping_mul(3), *s);
        }
        let mut merged = a.clone();
        merged.merge_from(&b);
        // Everything in either table is in the merge.
        for t in 0..2 {
            for (code, _) in left.iter().chain(&right) {
                let key = if t == 0 { *code } else { code.wrapping_mul(3) };
                let mut expect: Vec<u32> = a
                    .lookup(t, key)
                    .iter()
                    .chain(b.lookup(t, key))
                    .copied()
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                prop_assert_eq!(merged.lookup(t, key), expect.as_slice());
            }
        }
    }

    #[test]
    fn decode_into_equals_merge_of_decodes(
        parts in prop::collection::vec(
            prop::collection::vec((0u64..80, 0u32..40), 0..80),
            1..4,
        ),
    ) {
        // The distributed driver's fast path (decode_into over p streams)
        // must equal the slow path (decode each, merge).
        let tables: Vec<SketchTable> = parts
            .iter()
            .map(|entries| {
                let mut t = SketchTable::new(2);
                for (code, s) in entries {
                    t.insert((code % 2) as usize, *code, *s);
                }
                t
            })
            .collect();
        let mut fast = SketchTable::new(2);
        for t in &tables {
            fast.decode_into(&t.encode()).unwrap();
        }
        let mut slow = SketchTable::new(2);
        for t in &tables {
            slow.merge_from(&SketchTable::decode(&t.encode(), 2).unwrap());
        }
        prop_assert_eq!(fast.entry_count(), slow.entry_count());
        for entries in &parts {
            for (code, _) in entries {
                for trial in 0..2 {
                    prop_assert_eq!(fast.lookup(trial, *code), slow.lookup(trial, *code));
                }
            }
        }
    }
}
