//! # jem-mmap — read-only file mapping for zero-copy index loads
//!
//! The single `unsafe` island of the workspace: a thin wrapper over the
//! platform `mmap`/`munmap` pair exposing a mapped file as `&[u64]`.
//! Everything above this crate (`jem-index`'s flat-table view, `jem-core`'s
//! persistence) stays `#![forbid(unsafe_code)]` — they consume the word
//! slice through a safe trait and never see a raw pointer.
//!
//! Scope is deliberately tiny:
//!
//! * read-only, private mappings of whole files;
//! * word-granular: the file length must be a positive multiple of 8, and
//!   the mapping is handed out as little-endian `u64`s (the JEMIDX v4
//!   index format is specified in words, so this is the natural unit and
//!   makes the alignment story trivial — `mmap` returns page-aligned
//!   memory, which is always 8-byte aligned);
//! * no `libc` dependency: the three syscall wrappers are declared
//!   directly;
//! * optional readahead: [`MmapWords::map_with`] can advise the kernel the
//!   whole mapping will be needed (`madvise(MADV_WILLNEED)`) and touch one
//!   word per page so a served index pays its page faults at load time, not
//!   on the first query. Purely advisory — the mapped contents are
//!   identical either way, and an `madvise` failure is ignored.
//!
//! On non-Unix targets [`MmapWords::map`] returns
//! [`std::io::ErrorKind::Unsupported`]; callers fall back to reading the
//! file into an owned `Vec<u64>` (the portable path behind the same trait).
//!
//! # Safety argument
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the kernel will never let
//! this memory be written through this mapping, and writes by other
//! processes to the underlying file are not guaranteed to be visible but
//! cannot unmap the pages. The one real hazard of file-backed mappings —
//! `SIGBUS` on access past a truncated file — is bounded by validating the
//! mapped length against the file size at map time; a file truncated
//! *after* mapping while the index is being served is outside the safety
//! contract (the operator owns the artifact; atomic rename-into-place
//! writes, which the CLI uses, never shrink a live file).

use std::fs::File;
use std::io;

/// A read-only memory-mapped file viewed as a slice of `u64` words.
///
/// Construction validates that the file is non-empty and word-sized;
/// [`MmapWords::words`] then exposes the mapping for the lifetime of the
/// value. The mapping is released on drop.
pub struct MmapWords {
    inner: imp::Map,
}

impl MmapWords {
    /// `true` when this target supports `mmap` (Unix); `false` means
    /// [`MmapWords::map`] always fails with `Unsupported` and callers
    /// should use their owned-buffer fallback.
    pub const SUPPORTED: bool = imp::SUPPORTED;

    /// Map `file` read-only in its entirety.
    ///
    /// Fails (never panics) if the platform lacks `mmap`, the file is
    /// empty, its length is not a multiple of 8, or the `mmap` syscall
    /// itself errors.
    pub fn map(file: &File) -> io::Result<MmapWords> {
        MmapWords::map_with(file, false)
    }

    /// [`MmapWords::map`] with an explicit readahead choice. With
    /// `prefault` set, the kernel is advised the whole mapping will be
    /// needed and every page is touched once, so the faults happen here
    /// rather than on first access. The mapped words are identical either
    /// way.
    pub fn map_with(file: &File, prefault: bool) -> io::Result<MmapWords> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "cannot map an empty file",
            ));
        }
        if len % 8 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of 8 bytes"),
            ));
        }
        let bytes = usize::try_from(len).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this architecture",
            )
        })?;
        let inner = imp::Map::new(file, bytes)?;
        if prefault {
            inner.prefault();
        }
        Ok(MmapWords { inner })
    }

    /// The mapped file as little-endian `u64` words.
    pub fn words(&self) -> &[u64] {
        self.inner.words()
    }

    /// Number of mapped words.
    pub fn len(&self) -> usize {
        self.words().len()
    }

    /// True when no words are mapped (unreachable for a successful map —
    /// empty files are rejected — but keeps the type honest).
    pub fn is_empty(&self) -> bool {
        self.words().is_empty()
    }
}

impl std::fmt::Debug for MmapWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapWords")
            .field("words", &self.len())
            .finish()
    }
}

#[cfg(unix)]
mod imp {
    use std::fs::File;
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::AsRawFd;

    pub const SUPPORTED: bool = true;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MADV_WILLNEED: c_int = 3;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            // `off_t`: pointer-sized on every Unix we target (LP64, or
            // ILP32 without LFS). Always passed as 0 here.
            offset: isize,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
        fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
    }

    pub struct Map {
        ptr: *mut c_void,
        bytes: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
    // so shared references to it from any thread are sound, and the raw
    // pointer is owned exclusively by this value until drop.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        pub fn new(file: &File, bytes: usize) -> io::Result<Map> {
            // SAFETY: requesting a fresh read-only private mapping; the
            // kernel picks the address. `bytes` was validated non-zero by
            // the caller. A failed map returns MAP_FAILED (-1), turned
            // into an error below, so `ptr` is a live mapping of exactly
            // `bytes` bytes whenever a `Map` is constructed.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    bytes,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, bytes })
        }

        pub fn words(&self) -> &[u64] {
            // SAFETY: `ptr` is page-aligned (so u64-aligned) and covers
            // `bytes` readable bytes for as long as `self` lives; `bytes`
            // is a multiple of 8 by construction. The pages are PROT_READ,
            // never written through any alias.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u64, self.bytes / 8) }
        }

        /// Advise the kernel the whole mapping will be needed, then touch
        /// one word per page. Advisory only: an `madvise` failure (e.g. a
        /// filesystem without readahead support) is deliberately ignored,
        /// and the touch loop is plain reads through the safe slice.
        pub fn prefault(&self) {
            // SAFETY: `ptr`/`bytes` describe the live mapping created in
            // `new`; MADV_WILLNEED never alters the mapped contents.
            unsafe {
                madvise(self.ptr, self.bytes, MADV_WILLNEED);
            }
            let words = self.words();
            const WORDS_PER_PAGE: usize = 4096 / 8;
            let mut checksum = 0u64;
            for i in (0..words.len()).step_by(WORDS_PER_PAGE) {
                checksum ^= words[i];
            }
            // Keep the reads observable so the loop cannot be elided.
            std::hint::black_box(checksum);
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`bytes` describe the mapping created in `new`
            // and not yet unmapped; nothing can read it after drop.
            unsafe {
                munmap(self.ptr, self.bytes);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use std::fs::File;
    use std::io;

    pub const SUPPORTED: bool = false;

    pub struct Map {}

    impl Map {
        pub fn new(_file: &File, _bytes: usize) -> io::Result<Map> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "mmap is not supported on this platform",
            ))
        }

        pub fn words(&self) -> &[u64] {
            &[]
        }

        pub fn prefault(&self) {}
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jem-mmap-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn maps_words_back_identically() {
        let path = temp_path("roundtrip");
        let expect: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        {
            let mut f = File::create(&path).unwrap();
            for w in &expect {
                f.write_all(&w.to_le_bytes()).unwrap();
            }
        }
        let map = MmapWords::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.words(), expect.as_slice());
        assert_eq!(map.len(), expect.len());
        assert!(!map.is_empty());
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefault_mapping_is_byte_identical_to_lazy() {
        // 100 pages of words, so the touch loop strides several times.
        let path = temp_path("prefault");
        let expect: Vec<u64> = (0..51_200u64)
            .map(|i| i.wrapping_mul(0x2545_F491))
            .collect();
        {
            let mut f = File::create(&path).unwrap();
            for w in &expect {
                f.write_all(&w.to_le_bytes()).unwrap();
            }
        }
        let lazy = MmapWords::map(&File::open(&path).unwrap()).unwrap();
        let eager = MmapWords::map_with(&File::open(&path).unwrap(), true).unwrap();
        assert_eq!(lazy.words(), eager.words());
        assert_eq!(eager.words(), expect.as_slice());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn prefault_on_a_single_word_file() {
        let path = temp_path("prefault-tiny");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&7u64.to_le_bytes()).unwrap();
        }
        let map = MmapWords::map_with(&File::open(&path).unwrap(), true).unwrap();
        assert_eq!(map.words(), &[7]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_empty_file() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let err = MmapWords::map(&File::open(&path).unwrap()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_unaligned_length() {
        let path = temp_path("odd");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&[0u8; 13]).unwrap();
        }
        let err = MmapWords::map(&File::open(&path).unwrap()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_outlives_the_file_handle() {
        let path = temp_path("handle");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&42u64.to_le_bytes()).unwrap();
        }
        let map = {
            let f = File::open(&path).unwrap();
            MmapWords::map(&f).unwrap()
            // `f` drops here; the mapping keeps the pages alive.
        };
        assert_eq!(map.words(), &[42]);
        std::fs::remove_file(&path).unwrap();
    }
}
