//! Equivalence suite pinning the block-encoded fast paths to their scalar
//! references across the full parameter space and arbitrary byte soup.
//!
//! The fast sketching front half (block 2-bit encoding → packed-run code
//! streaming → two-pass winnowing) must be *byte-identical* to the naive
//! per-byte implementations for every input, including lowercase bases,
//! ambiguity codes, and outright junk bytes, and for every `k` in
//! `1..=32`. These tests run in both the default and `--features simd`
//! configurations; the outputs must not differ.

use jem_seq::CanonicalKmerIter;
use jem_sketch::{
    closed_syncmers, hash::HashFamily, is_closed_syncmer, jem::sketch_by_jem_naive, minimizers,
    minimizers_naive, sketch_by_jem, JemParams, Minimizer, MinimizerParams, SyncmerParams,
};
use proptest::prelude::*;

/// Byte soup: uppercase/lowercase DNA, N runs, IUPAC ambiguity codes, and
/// arbitrary junk bytes. Weighted so valid runs long enough to winnow
/// still appear often.
fn byte_soup(max: usize) -> impl Strategy<Value = Vec<u8>> {
    let mut palette = Vec::new();
    for b in [b'A', b'C', b'G', b'T'] {
        palette.extend(std::iter::repeat_n(b, 8));
    }
    palette.extend([b'a', b'c', b'g', b't', b'a', b'c', b'g', b't']);
    palette.extend([b'N', b'n', b'R', b'Y', b'W', b'S', 0u8, 0x80, 0xFF, b'*']);
    prop::collection::vec(prop::sample::select(palette), 0..max)
}

/// Scalar syncmer reference: roll canonical codes with the per-byte
/// [`CanonicalKmerIter`] and apply the closed-syncmer predicate.
fn syncmers_reference(seq: &[u8], k: usize, s: usize) -> Vec<Minimizer> {
    CanonicalKmerIter::new(seq, k)
        .unwrap()
        .filter(|(_, km)| is_closed_syncmer(km.code(), k, s))
        .map(|(pos, km)| Minimizer {
            code: km.code(),
            pos: pos as u32,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full k range over byte soup: the block-encoded winnower must match
    /// the quadratic per-byte reference exactly.
    #[test]
    fn minimizers_match_naive_full_k_range(
        seq in byte_soup(300),
        k in 1usize..=32,
        w in 1usize..=130,
    ) {
        let p = MinimizerParams::new(k, w).unwrap();
        prop_assert_eq!(minimizers(&seq, p), minimizers_naive(&seq, p));
    }

    /// Sequences sized around multiples of the 32-base packing word so
    /// runs straddle word boundaries in every alignment.
    #[test]
    fn minimizers_match_naive_word_straddling(
        prefix in byte_soup(4),
        body in prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 28..=100),
        k in 1usize..=32,
        w in 1usize..=40,
    ) {
        let mut seq = prefix;
        seq.extend_from_slice(&body);
        let p = MinimizerParams::new(k, w).unwrap();
        prop_assert_eq!(minimizers(&seq, p), minimizers_naive(&seq, p));
    }

    /// Syncmer extraction through the block-encoded path must match the
    /// scalar canonical-iterator reference over byte soup.
    #[test]
    fn syncmers_match_scalar_reference(
        seq in byte_soup(300),
        k in 2usize..=32,
        s_off in 1usize..32,
    ) {
        let s = 1 + (s_off - 1) % (k - 1); // s in 1..k
        let p = SyncmerParams::new(k, s).unwrap();
        prop_assert_eq!(closed_syncmers(&seq, p), syncmers_reference(&seq, k, s));
    }
}

/// Invalid bytes pinned at every offset around the 32-base word
/// boundaries, so run starts and ends exercise each packing alignment
/// deterministically.
#[test]
fn minimizers_match_naive_invalid_at_word_boundaries() {
    let bases = [b'A', b'C', b'G', b'T'];
    let mut seq: Vec<u8> = (0..130).map(|i| bases[(i * 7 + 3) % 4]).collect();
    for cut in [31usize, 32, 33, 63, 64, 65, 95, 96, 97] {
        let mut s = seq.clone();
        s[cut] = b'N';
        for k in [1usize, 2, 15, 16, 17, 31, 32] {
            for w in [1usize, 2, 5, 100] {
                let p = MinimizerParams::new(k, w).unwrap();
                assert_eq!(
                    minimizers(&s, p),
                    minimizers_naive(&s, p),
                    "cut={cut} k={k} w={w}"
                );
            }
        }
    }
    // Back-to-back invalid bytes producing empty and length-1 runs.
    seq[10] = b'N';
    seq[11] = b'x';
    seq[13] = b'N';
    let p = MinimizerParams::new(2, 3).unwrap();
    assert_eq!(minimizers(&seq, p), minimizers_naive(&seq, p));
}

/// k = 31 and 32 drive canonical codes past the Mersenne prime 2^61−1,
/// forcing the wide (hash, code) key fallback in trial selection; the
/// winnowed lists must still match the reference.
#[test]
fn minimizers_match_naive_k_at_max() {
    let bases = [b'T', b'G', b'C', b'A'];
    let seq: Vec<u8> = (0..200).map(|i| bases[(i * 11 + 1) % 4]).collect();
    for k in [30usize, 31, 32] {
        for w in [1usize, 7, 64, 128] {
            let p = MinimizerParams::new(k, w).unwrap();
            assert_eq!(
                minimizers(&seq, p),
                minimizers_naive(&seq, p),
                "k={k} w={w}"
            );
        }
    }
}

/// Full JEM sketches at k = 31 and 32: codes can exceed 2^61−1, so
/// `select_into` must take the wide-key monotone-stack path (u64 hash
/// keys are no longer collision-free) and still reproduce the naive
/// per-interval MinHash exactly. k = 30 rides along as the widest
/// hash-key-path configuration.
#[test]
fn jem_sketch_wide_key_fallback_matches_naive() {
    let bases = [b'G', b'A', b'T', b'C'];
    let mut seq: Vec<u8> = (0..600).map(|i| bases[(i * 13 + 2) % 4]).collect();
    // A poly-G stretch guarantees canonical codes above 2^61−1 at k = 32
    // (both the 10-repeated forward and 01-repeated reverse-complement
    // readings exceed the prime); at k = 31 the random body supplies them
    // (w = 1 keeps every k-mer, and each 62-bit canonical code lands above
    // 2^61 a quarter of the time).
    seq[100..180].fill(b'G');
    let family = HashFamily::generate(7, 23);
    for k in [30usize, 31, 32] {
        for (w, ell) in [(3usize, 50usize), (8, 120), (1, 40)] {
            let params = JemParams::new(k, w, ell).unwrap();
            assert_eq!(
                sketch_by_jem(&seq, params, &family),
                sketch_by_jem_naive(&seq, params, &family),
                "k={k} w={w} ell={ell}"
            );
        }
    }
}
