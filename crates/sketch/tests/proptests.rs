//! Property-based tests for the sketching layer.

use jem_sketch::{
    exact_jaccard, hash::HashFamily, jem::sketch_by_jem_naive, kmer_set, minimizers,
    minimizers_naive, sketch_by_jem, sketch_jaccard_estimate, JemParams, MinimizerParams,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max)
}

fn dna_with_n(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T', b'A', b'C', b'G', b'T', b'N']),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deque_minimizers_match_naive(seq in dna_with_n(400), k in 2usize..9, w in 1usize..12) {
        let p = MinimizerParams::new(k, w).unwrap();
        prop_assert_eq!(minimizers(&seq, p), minimizers_naive(&seq, p));
    }

    #[test]
    fn minimizer_positions_valid(seq in dna(400), k in 2usize..9, w in 1usize..12) {
        let p = MinimizerParams::new(k, w).unwrap();
        for m in minimizers(&seq, p) {
            prop_assert!((m.pos as usize) + k <= seq.len());
        }
    }

    #[test]
    fn minimizer_codes_are_canonical_kmers_of_seq(seq in dna(300), k in 2usize..8, w in 1usize..10) {
        let p = MinimizerParams::new(k, w).unwrap();
        let all: HashSet<u64> = kmer_set(&seq, k);
        for m in minimizers(&seq, p) {
            prop_assert!(all.contains(&m.code));
        }
    }

    #[test]
    fn jem_fast_matches_naive(seq in dna_with_n(300), k in 2usize..8, w in 1usize..8, ell in 1usize..120) {
        let params = JemParams::new(k, w, ell).unwrap();
        let family = HashFamily::generate(5, 11);
        prop_assert_eq!(
            sketch_by_jem(&seq, params, &family),
            sketch_by_jem_naive(&seq, params, &family)
        );
    }

    #[test]
    fn jem_deterministic(seq in dna(300)) {
        let params = JemParams::new(5, 4, 60).unwrap();
        let family = HashFamily::generate(6, 77);
        prop_assert_eq!(sketch_by_jem(&seq, params, &family), sketch_by_jem(&seq, params, &family));
    }

    #[test]
    fn exact_jaccard_bounds_and_symmetry(
        a in prop::collection::hash_set(0u64..500, 0..60),
        b in prop::collection::hash_set(0u64..500, 0..60),
    ) {
        let j = exact_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, exact_jaccard(&b, &a));
        if !a.is_empty() {
            prop_assert_eq!(exact_jaccard(&a, &a), 1.0);
        }
        // Subset: J = |A| / |B| when A ⊆ B.
        if a.is_subset(&b) && !b.is_empty() {
            prop_assert!((j - a.len() as f64 / b.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn minhash_estimate_within_bounds(
        a in prop::collection::vec(0u64..10_000, 1..80),
        b in prop::collection::vec(0u64..10_000, 1..80),
    ) {
        let family = HashFamily::generate(48, 5);
        let est = sketch_jaccard_estimate(&a, &b, &family);
        prop_assert!((0.0..=1.0).contains(&est));
        // Identical multisets estimate exactly 1.
        prop_assert_eq!(sketch_jaccard_estimate(&a, &a, &family), 1.0);
    }

    #[test]
    fn hash_family_truncation_consistency(t in 1usize..40, seed in 0u64..1000) {
        let full = HashFamily::generate(40, seed);
        let cut = full.truncated(t);
        for i in 0..t {
            prop_assert_eq!(full.hash(i, 12345), cut.hash(i, 12345));
        }
    }
}
