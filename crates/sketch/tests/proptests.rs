//! Property-based tests for the sketching layer.

use jem_sketch::{
    exact_jaccard, hash::HashFamily, jem::sketch_by_jem_naive, kmer_set, minimizers,
    minimizers_naive, reduce_p61, sketch_by_jem, sketch_by_jem_into, sketch_jaccard_estimate,
    JemParams, JemSketch, MinimizerParams, SketchScratch,
};
use proptest::prelude::*;
use std::collections::HashSet;

const P61: u64 = (1u64 << 61) - 1;

/// Reference reduction: the plain `%` the fast path replaced.
fn reduce_generic(v: u128) -> u64 {
    (v % u128::from(P61)) as u64
}

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max)
}

fn dna_with_n(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T', b'A', b'C', b'G', b'T', b'N']),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_minimizers_match_naive(seq in dna_with_n(400), k in 2usize..9, w in 1usize..12) {
        let p = MinimizerParams::new(k, w).unwrap();
        prop_assert_eq!(minimizers(&seq, p), minimizers_naive(&seq, p));
    }

    #[test]
    fn minimizer_positions_valid(seq in dna(400), k in 2usize..9, w in 1usize..12) {
        let p = MinimizerParams::new(k, w).unwrap();
        for m in minimizers(&seq, p) {
            prop_assert!((m.pos as usize) + k <= seq.len());
        }
    }

    #[test]
    fn minimizer_codes_are_canonical_kmers_of_seq(seq in dna(300), k in 2usize..8, w in 1usize..10) {
        let p = MinimizerParams::new(k, w).unwrap();
        let all: HashSet<u64> = kmer_set(&seq, k);
        for m in minimizers(&seq, p) {
            prop_assert!(all.contains(&m.code));
        }
    }

    #[test]
    fn jem_fast_matches_naive(seq in dna_with_n(300), k in 2usize..8, w in 1usize..8, ell in 1usize..120) {
        let params = JemParams::new(k, w, ell).unwrap();
        let family = HashFamily::generate(5, 11);
        prop_assert_eq!(
            sketch_by_jem(&seq, params, &family),
            sketch_by_jem_naive(&seq, params, &family)
        );
    }

    #[test]
    fn jem_deterministic(seq in dna(300)) {
        let params = JemParams::new(5, 4, 60).unwrap();
        let family = HashFamily::generate(6, 77);
        prop_assert_eq!(sketch_by_jem(&seq, params, &family), sketch_by_jem(&seq, params, &family));
    }

    #[test]
    fn exact_jaccard_bounds_and_symmetry(
        a in prop::collection::hash_set(0u64..500, 0..60),
        b in prop::collection::hash_set(0u64..500, 0..60),
    ) {
        let j = exact_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, exact_jaccard(&b, &a));
        if !a.is_empty() {
            prop_assert_eq!(exact_jaccard(&a, &a), 1.0);
        }
        // Subset: J = |A| / |B| when A ⊆ B.
        if a.is_subset(&b) && !b.is_empty() {
            prop_assert!((j - a.len() as f64 / b.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn minhash_estimate_within_bounds(
        a in prop::collection::vec(0u64..10_000, 1..80),
        b in prop::collection::vec(0u64..10_000, 1..80),
    ) {
        let family = HashFamily::generate(48, 5);
        let est = sketch_jaccard_estimate(&a, &b, &family);
        prop_assert!((0.0..=1.0).contains(&est));
        // Identical multisets estimate exactly 1.
        prop_assert_eq!(sketch_jaccard_estimate(&a, &a, &family), 1.0);
    }

    #[test]
    fn hash_family_truncation_consistency(t in 1usize..40, seed in 0u64..1000) {
        let full = HashFamily::generate(40, seed);
        let cut = full.truncated(t);
        for i in 0..t {
            prop_assert_eq!(full.hash(i, 12345), cut.hash(i, 12345));
        }
    }

    #[test]
    fn mersenne_reduction_matches_modulo_random(a in any::<u64>(), x in any::<u64>(), b in any::<u64>()) {
        // Any LCG evaluation the family can produce: a·x + b over u128.
        let v = u128::from(a) * u128::from(x) + u128::from(b);
        prop_assert_eq!(reduce_p61(v), reduce_generic(v));
    }

    #[test]
    fn mersenne_reduction_matches_modulo_adversarial(ai in 0usize..2, xi in 0usize..6, b in any::<u64>()) {
        // Corner coefficients and inputs around the prime's boundaries,
        // crossed with a random additive term.
        let a = [1u64, P61 - 1][ai];
        let x = [0u64, 1, P61 - 1, P61, P61 + 1, u64::MAX][xi];
        let v = u128::from(a) * u128::from(x) + u128::from(b);
        prop_assert_eq!(reduce_p61(v), reduce_generic(v));
    }

    #[test]
    fn scratch_reuse_stream_matches_fresh(seqs in prop::collection::vec(dna_with_n(250), 1..6)) {
        // One scratch threaded over an arbitrary stream of inputs must
        // reproduce the fresh-allocation sketches exactly.
        let params = JemParams::new(6, 5, 80).unwrap();
        let family = HashFamily::generate(5, 19);
        let mut scratch = SketchScratch::new();
        let mut out = JemSketch::default();
        for seq in &seqs {
            sketch_by_jem_into(seq, params, &family, &mut scratch, &mut out);
            prop_assert_eq!(&out, &sketch_by_jem(seq, params, &family));
        }
    }
}

#[test]
fn mersenne_reduction_exhaustive_corners() {
    // Every (a, x) corner pair the proptest samples from, deterministically.
    for a in [1u64, P61 - 1] {
        for x in [0u64, 1, P61 - 1, P61, P61 + 1, u64::MAX] {
            for b in [0u64, 1, P61 - 1, P61, u64::MAX] {
                let v = u128::from(a) * u128::from(x) + u128::from(b);
                assert_eq!(reduce_p61(v), reduce_generic(v), "a={a} x={x} b={b}");
            }
        }
    }
    // The largest value the LCG can ever feed the reduction.
    let max = u128::from(u64::MAX) * u128::from(u64::MAX) + u128::from(u64::MAX);
    assert_eq!(reduce_p61(max), reduce_generic(max));
}
