//! The minimizer-based Jaccard estimator (JEM) sketch — Algorithm 1.
//!
//! Given a sequence `s`, the minimizer list `Mo(s, w)` is generated and an
//! interval of length ℓ (the query end-segment length) is slid over the
//! minimizer *positions*: for each minimizer `⟨k_i, p_i⟩`, the interval
//! `M_i = {⟨k_j, p_j⟩ : p_i ≤ p_j ≤ p_i + ℓ}` is formed, and for each trial
//! `t ∈ [1, T]` the k-mer minimizing `h_t` over `M_i` joins trial `t`'s
//! sketch set. Sketches are thereby generated *at the resolution of the end
//! segment length* on both subjects and queries, which is the paper's key
//! departure from Mashmap (no positional post-filtering needed).
//!
//! [`sketch_by_jem`] runs in `O(|Mo|·T)`: the interval geometry is computed
//! once by a two-pointer prepass, then the `T` trials run trial-major over
//! one reusable monotone stack ([`SketchScratch`] holds both); the
//! `_into` variants reuse that scratch across calls so the steady-state hot
//! path performs no heap allocation. [`sketch_by_jem_naive`] is the direct
//! transliteration of Algorithm 1 used by tests. The kernel layout is
//! documented in DESIGN.md §12.

use crate::hash::HashFamily;
use crate::minimizer::{minimizers_into, Minimizer, MinimizerParams, WinnowScratch};
use jem_seq::SeqError;

/// Parameters of the JEM sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JemParams {
    /// k-mer size.
    pub k: usize,
    /// Minimizer window size `w` (number of consecutive k-mers).
    pub w: usize,
    /// Interval / end-segment length ℓ in bases.
    pub ell: usize,
}

impl JemParams {
    /// Construct and validate.
    pub fn new(k: usize, w: usize, ell: usize) -> Result<Self, SeqError> {
        MinimizerParams::new(k, w)?;
        if ell == 0 {
            return Err(SeqError::InvalidParameter(
                "interval length ell must be >= 1".into(),
            ));
        }
        Ok(JemParams { k, w, ell })
    }

    /// Paper defaults: `k = 16`, `w = 100`, `ℓ = 1000`.
    pub fn paper_default() -> Self {
        JemParams {
            k: 16,
            w: 100,
            ell: 1000,
        }
    }

    /// The embedded minimizer parameters.
    pub fn minimizer_params(&self) -> MinimizerParams {
        MinimizerParams {
            k: self.k,
            w: self.w,
        }
    }
}

/// A JEM sketch: for each trial `t`, the sorted, deduplicated set of k-mer
/// codes selected over all ℓ-intervals of the minimizer list.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct JemSketch {
    /// `per_trial[t]` = sorted unique sketch k-mer codes for trial `t`.
    pub per_trial: Vec<Vec<u64>>,
}

impl JemSketch {
    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.per_trial.len()
    }

    /// Total number of (trial, code) entries.
    pub fn total_entries(&self) -> usize {
        self.per_trial.iter().map(Vec::len).sum()
    }

    /// True if no trial selected any sketch (input had no minimizers).
    pub fn is_empty(&self) -> bool {
        self.per_trial.iter().all(Vec::is_empty)
    }

    /// Reset to `t` empty trial lists, keeping each list's allocation.
    fn reset(&mut self, t: usize) {
        self.per_trial.truncate(t);
        for list in self.per_trial.iter_mut() {
            list.clear();
        }
        while self.per_trial.len() < t {
            self.per_trial.push(Vec::new());
        }
    }
}

/// The monotone stack of the selection kernel. One stack serves all `T`
/// trials in turn (trial-major order), so the working set per trial is a
/// single L1-resident buffer instead of `T` interleaved deques.
///
/// Candidates rank by the `(h_t(code), code)` pair. When every code is
/// below the hash modulus `P = 2^61 − 1`, the LCG `h_t(x) = (A_t·x + B_t)
/// mod P` with `A_t ∈ [1, P−1]` is *injective* (multiplication by `A_t` is
/// invertible mod a prime), so distinct codes never share a hash and the
/// scan can rank by the bare `u64` hash — same pops, same winners, half the
/// key traffic. Codes reach `P` only for `k ≥ 31`, where the scan falls
/// back to full `u128` `(hash, code)` keys. Both paths keep a sentinel at
/// slot 0 (key `0` is never popped by a strictly-greater compare) so the
/// pop loop tests one condition, not two.
#[derive(Clone, Debug, Default)]
pub(crate) struct MonotoneStack {
    key: Vec<u128>,
    hkey: Vec<u64>,
    idx: Vec<u32>,
}

impl MonotoneStack {
    /// Prepare a stack of capacity ≥ `min_cap` entries plus the sentinel
    /// slot, reusing existing storage whenever it is large enough.
    fn reset(&mut self, min_cap: usize) {
        if self.key.len() < min_cap + 1 {
            self.key.resize(min_cap + 1, 0);
            self.hkey.resize(min_cap + 1, 0);
            self.idx.resize(min_cap + 1, 0);
        }
    }

    /// Emit the interval winners of one trial over the whole minimizer list.
    ///
    /// Rather than sliding a deque and reading its front once per interval,
    /// this runs the next-smaller-element scan: minimizer `x` wins *some*
    /// interval iff an interval exists that contains `x` but neither
    /// `L(x)` — the nearest earlier minimizer ranking `≤ x` — nor `R(x)`,
    /// the nearest later one ranking `< x`. Intervals start in
    /// `max(L(x)+1, starts[x])` … `x` (those containing `x` and excluding
    /// `L(x)`), and because `ends` is non-decreasing the earliest of them
    /// has the smallest right edge, so the test is one comparison:
    /// `ends[max(L(x)+1, starts[x])] ≤ R(x)`.
    ///
    /// One forward pass maintains the stack of indices with non-decreasing
    /// keys: pushing `j` pops every strictly-greater entry `x` (so
    /// `R(x) = j`, and the slot under `x` is `L(x)`), testing each popped
    /// entry; entries still on the stack at the end have no later smaller
    /// rival (`R = ∞`) and always win their earliest candidate interval.
    /// Ties keep the earlier entry, matching the reference deque — and an
    /// equal key is the same k-mer code, so tie direction cannot change the
    /// emitted *set*, which is all the sketch keeps.
    ///
    /// `hashes[j]` must hold `h_t(codes[j])` — the trial's hash values are
    /// precomputed lane-parallel by [`HashFamily::hash_codes_into`] rather
    /// than one u128 multiply-reduce per element here. `hash_injective`
    /// asserts that all codes are below the hash modulus (checked once per
    /// selection by the caller), enabling the `u64`-key scan.
    fn run_trial(
        &mut self,
        hashes: &[u64],
        codes: &[u64],
        ends: &[u32],
        starts: &[u32],
        hash_injective: bool,
        out: &mut Vec<u64>,
    ) {
        if hash_injective {
            self.run_trial_hash_keys(hashes, codes, ends, starts, out);
        } else {
            self.run_trial_wide_keys(hashes, codes, ends, starts, out);
        }
    }

    /// `u64`-key scan: ranks by hash alone. Valid only when the trial hash
    /// is injective over the code set (`hash_injective` above), which makes
    /// every comparison — and therefore every pop and every winner — equal
    /// to the `(hash, code)` ranking's.
    fn run_trial_hash_keys(
        &mut self,
        hashes: &[u64],
        codes: &[u64],
        ends: &[u32],
        starts: &[u32],
        out: &mut Vec<u64>,
    ) {
        let n = codes.len();
        debug_assert_eq!(hashes.len(), n);
        let key = &mut self.hkey[..n + 1];
        let idx = &mut self.idx[..n + 1];
        key[0] = 0; // sentinel: strictly-greater pops can never remove it
        idx[0] = u32::MAX; // wrapping_add(1) below yields interval 0
        let mut sp = 1usize;
        // The stack top lives in a register: the common no-pop iteration is
        // compare + store with no dependent load.
        let mut top = 0u64;
        for (j, &new_key) in hashes.iter().enumerate() {
            while top > new_key {
                let x = idx[sp - 1] as usize;
                let lo = idx[sp - 2].wrapping_add(1);
                let i0 = lo.max(starts[x]) as usize;
                if ends[i0] <= j as u32 {
                    out.push(codes[x]);
                }
                sp -= 1;
                top = key[sp - 1];
            }
            key[sp] = new_key;
            idx[sp] = j as u32;
            sp += 1;
            top = new_key;
        }
        // No later rival beats what remains: every survivor is a winner.
        out.extend(idx[1..sp].iter().map(|&x| codes[x as usize]));
    }

    /// Full `(hash, code)` `u128`-key scan, used when codes may reach the
    /// hash modulus (`k ≥ 31`) and distinct codes could share a hash.
    fn run_trial_wide_keys(
        &mut self,
        hashes: &[u64],
        codes: &[u64],
        ends: &[u32],
        starts: &[u32],
        out: &mut Vec<u64>,
    ) {
        let n = codes.len();
        debug_assert_eq!(hashes.len(), n);
        let key = &mut self.key[..n + 1];
        let idx = &mut self.idx[..n + 1];
        key[0] = 0;
        idx[0] = u32::MAX;
        let mut sp = 1usize;
        let mut top = 0u128;
        for j in 0..n {
            let new_key = (u128::from(hashes[j]) << 64) | u128::from(codes[j]);
            while top > new_key {
                let x = idx[sp - 1] as usize;
                let lo = idx[sp - 2].wrapping_add(1);
                let i0 = lo.max(starts[x]) as usize;
                if ends[i0] <= j as u32 {
                    out.push(top as u64);
                }
                sp -= 1;
                top = key[sp - 1];
            }
            key[sp] = new_key;
            idx[sp] = j as u32;
            sp += 1;
            top = new_key;
        }
        out.extend(key[1..sp].iter().map(|&k| k as u64));
    }
}

/// Reusable scratch state for the whole sketching pipeline: the minimizer
/// buffer, the winnowing scratch, the interval-geometry buffers and the
/// monotone stack. One of these threads through a mapping loop (or a
/// rayon chunk, or a serve worker) so steady-state sketching allocates
/// nothing.
#[derive(Clone, Debug, Default)]
pub struct SketchScratch {
    pub(crate) mins: Vec<Minimizer>,
    pub(crate) winnow: WinnowScratch,
    pub(crate) ends: Vec<u32>,
    pub(crate) starts: Vec<u32>,
    /// Minimizer codes extracted into a flat array once per selection, so
    /// the per-trial hash kernel streams contiguous `u64`s instead of
    /// striding through 16-byte `Minimizer` structs.
    pub(crate) codes: Vec<u64>,
    /// Per-trial hash values, filled lane-parallel before each stack sweep.
    pub(crate) hashes: Vec<u64>,
    pub(crate) stack: MonotoneStack,
}

impl SketchScratch {
    /// Fresh, empty scratch (buffers grow on first use and are then reused).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Compute the JEM sketch of `seq` — efficient version of Algorithm 1.
///
/// ```
/// use jem_sketch::{sketch_by_jem, HashFamily, JemParams};
///
/// let params = JemParams::new(11, 10, 200).unwrap();
/// let family = HashFamily::generate(8, 42); // T = 8 trials
/// let seq: Vec<u8> = (0..2000).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
/// let sketch = sketch_by_jem(&seq, params, &family);
/// assert_eq!(sketch.trials(), 8);
/// assert!(!sketch.is_empty());
/// ```
pub fn sketch_by_jem(seq: &[u8], params: JemParams, family: &HashFamily) -> JemSketch {
    let mut scratch = SketchScratch::new();
    let mut out = JemSketch::default();
    sketch_by_jem_into(seq, params, family, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`sketch_by_jem`]: reuses `scratch` and
/// overwrites `out` (clearing, not deallocating, its trial lists). Produces
/// byte-identical sketches to [`sketch_by_jem`] for every input.
pub fn sketch_by_jem_into(
    seq: &[u8],
    params: JemParams,
    family: &HashFamily,
    scratch: &mut SketchScratch,
    out: &mut JemSketch,
) {
    let SketchScratch {
        mins,
        winnow,
        ends,
        starts,
        codes,
        hashes,
        stack,
    } = scratch;
    minimizers_into(seq, params.minimizer_params(), winnow, mins);
    select_into(
        mins, params.ell, family, ends, starts, codes, hashes, stack, out,
    );
}

/// Compute the JEM sketch from a precomputed minimizer list.
///
/// Exposed separately so the mapper can reuse the minimizer list when it
/// needs both the sketch and the list itself (e.g. the Mashmap baseline and
/// ablations share minimizer extraction).
pub fn sketch_minimizer_list(mins: &[Minimizer], ell: usize, family: &HashFamily) -> JemSketch {
    let mut scratch = SketchScratch::new();
    let mut out = JemSketch::default();
    sketch_minimizer_list_into(mins, ell, family, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`sketch_minimizer_list`], reusing
/// `scratch`'s geometry buffers and stack (its minimizer buffer is
/// untouched — the list comes from the caller).
pub fn sketch_minimizer_list_into(
    mins: &[Minimizer],
    ell: usize,
    family: &HashFamily,
    scratch: &mut SketchScratch,
    out: &mut JemSketch,
) {
    select_into(
        mins,
        ell,
        family,
        &mut scratch.ends,
        &mut scratch.starts,
        &mut scratch.codes,
        &mut scratch.hashes,
        &mut scratch.stack,
        out,
    );
}

/// The T-trial selection kernel (Algorithm 1's interval loop).
///
/// Produces, for each trial, exactly the set a sliding monotone deque would
/// emit, in `O(|mins| · T)`. The interval geometry is trial-independent, so
/// a two-pointer prepass computes it once: `ends[i]` is interval `i`'s
/// exclusive right edge and `starts[j]` the first interval containing
/// minimizer `j`. The trials then run **trial-major**: each trial's hash
/// values are evaluated lane-parallel over the flat `codes` array
/// ([`HashFamily::hash_codes_into`]) and the one L1-resident monotone
/// [`MonotoneStack`] then sweeps the precomputed `(hash, code)` pairs —
/// a next-smaller-element scan that emits only actual winners, with no
/// per-interval retire/emit loops at all.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_into(
    mins: &[Minimizer],
    ell: usize,
    family: &HashFamily,
    ends: &mut Vec<u32>,
    starts: &mut Vec<u32>,
    codes: &mut Vec<u64>,
    hashes: &mut Vec<u64>,
    stack: &mut MonotoneStack,
    out: &mut JemSketch,
) {
    let rec = jem_obs::recorder();
    let enabled = rec.enabled();
    let _span = enabled.then(|| jem_obs::Span::enter(rec, "sketch/select"));
    let t_count = family.len();
    out.reset(t_count);
    if mins.is_empty() || t_count == 0 {
        return;
    }

    // Two-pointer prepasses. `ends` is non-decreasing and every interval
    // contains its own left minimizer (ends[i] > i), so both scans are
    // linear and starts[j] <= j.
    ends.clear();
    ends.reserve(mins.len());
    let mut end = 0usize;
    for m in mins.iter() {
        let hi = u64::from(m.pos) + ell as u64;
        while end < mins.len() && u64::from(mins[end].pos) <= hi {
            end += 1;
        }
        ends.push(end as u32);
    }
    starts.clear();
    starts.reserve(mins.len());
    let mut i = 0u32;
    for j in 0..mins.len() as u32 {
        while ends[i as usize] <= j {
            i += 1;
        }
        starts.push(i);
    }
    stack.reset(mins.len());
    // Flatten the codes once: the per-trial hash kernel then streams
    // contiguous u64s instead of striding through 16-byte structs.
    codes.clear();
    codes.extend(mins.iter().map(|m| m.code));
    // Below the modulus, every trial hash is injective over the codes (see
    // [`MonotoneStack`]) and the stack can rank by bare u64 hashes.
    let hash_injective = codes.iter().all(|&c| c < crate::hash::MERSENNE_P61);
    // Raw emission is at most one code per (minimizer, trial): pre-size the
    // trial lists so the emit loop never regrows them.
    for list in out.per_trial.iter_mut() {
        list.reserve(mins.len());
    }

    for (t, list) in out.per_trial.iter_mut().enumerate() {
        family.hash_codes_into(t, codes, hashes);
        stack.run_trial(hashes, codes, ends, starts, hash_injective, list);
        list.sort_unstable();
        list.dedup();
    }
    if enabled {
        rec.add(
            "sketch.sketches_emitted",
            out.per_trial.iter().map(|l| l.len() as u64).sum(),
        );
    }
}

/// Direct transliteration of Algorithm 1 (quadratic; for tests).
pub fn sketch_by_jem_naive(seq: &[u8], params: JemParams, family: &HashFamily) -> JemSketch {
    let mins = crate::minimizer::minimizers(seq, params.minimizer_params());
    let mut per_trial: Vec<Vec<u64>> = vec![Vec::new(); family.len()];
    for (i, mi) in mins.iter().enumerate() {
        // M_i = {⟨k_j, p_j⟩ : p_i ≤ p_j ≤ p_i + ℓ}
        let hi = u64::from(mi.pos) + params.ell as u64;
        let interval: Vec<&Minimizer> = mins[i..]
            .iter()
            .take_while(|m| u64::from(m.pos) <= hi)
            .collect();
        for (t, h) in family.iter() {
            let best = interval
                .iter()
                .map(|m| (h.hash(m.code), m.code))
                .min()
                .expect("interval contains m_i");
            per_trial[t].push(best.1);
        }
    }
    for list in per_trial.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    JemSketch { per_trial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minimizer::minimizers;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn params_validation() {
        assert!(JemParams::new(16, 100, 0).is_err());
        assert!(JemParams::new(0, 100, 1000).is_err());
        assert!(JemParams::new(16, 0, 1000).is_err());
        let p = JemParams::paper_default();
        assert_eq!((p.k, p.w, p.ell), (16, 100, 1000));
    }

    #[test]
    fn empty_input_empty_sketch() {
        let f = HashFamily::generate(8, 1);
        let s = sketch_by_jem(b"", JemParams::new(5, 4, 100).unwrap(), &f);
        assert!(s.is_empty());
        assert_eq!(s.trials(), 8);
    }

    #[test]
    fn matches_naive_small() {
        let f = HashFamily::generate(10, 42);
        for (n, k, w, ell) in [(200, 5, 4, 50), (500, 7, 10, 100), (300, 16, 8, 60)] {
            let seq = rng_seq(n, n as u64);
            let p = JemParams::new(k, w, ell).unwrap();
            assert_eq!(
                sketch_by_jem(&seq, p, &f),
                sketch_by_jem_naive(&seq, p, &f),
                "n={n} k={k} w={w} ell={ell}"
            );
        }
    }

    #[test]
    fn matches_naive_with_ambiguous() {
        let mut seq = rng_seq(400, 9);
        seq[100] = b'N';
        seq[101] = b'N';
        seq[250] = b'N';
        let f = HashFamily::generate(6, 5);
        let p = JemParams::new(5, 6, 80).unwrap();
        assert_eq!(sketch_by_jem(&seq, p, &f), sketch_by_jem_naive(&seq, p, &f));
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        // One scratch + one output sketch carried across many disparate
        // inputs must reproduce the fresh-allocation path exactly — the
        // reuse contract every mapping loop depends on.
        let f = HashFamily::generate(9, 21);
        let mut scratch = SketchScratch::new();
        let mut out = JemSketch::default();
        for (n, k, w, ell) in [
            (700, 6, 5, 90),
            (40, 4, 8, 30), // short run, shrinking buffers
            (1500, 12, 9, 200),
            (0, 5, 4, 50), // empty input mid-stream
            (900, 16, 20, 400),
        ] {
            let seq = rng_seq(n, n as u64 + 3);
            let p = JemParams::new(k, w, ell).unwrap();
            sketch_by_jem_into(&seq, p, &f, &mut scratch, &mut out);
            assert_eq!(
                out,
                sketch_by_jem(&seq, p, &f),
                "n={n} k={k} w={w} ell={ell}"
            );
        }
    }

    #[test]
    fn list_into_matches_list_wrapper() {
        let f = HashFamily::generate(7, 2);
        let seq = rng_seq(2_000, 5);
        let mins = minimizers(&seq, MinimizerParams::new(9, 7).unwrap());
        let mut scratch = SketchScratch::new();
        let mut out = JemSketch::default();
        for ell in [40usize, 150, 1_000] {
            sketch_minimizer_list_into(&mins, ell, &f, &mut scratch, &mut out);
            assert_eq!(out, sketch_minimizer_list(&mins, ell, &f), "ell={ell}");
        }
    }

    #[test]
    fn single_minimizer_sequence() {
        // Short sequence → one minimizer → each trial sketches exactly it.
        let seq = b"ACGTGCA";
        let f = HashFamily::generate(5, 3);
        let p = JemParams::new(3, 100, 1000).unwrap();
        let s = sketch_by_jem(seq, p, &f);
        for t in 0..5 {
            assert_eq!(s.per_trial[t].len(), 1);
        }
        // All trials sketch the same sole minimizer.
        let m = minimizers(seq, p.minimizer_params());
        assert_eq!(m.len(), 1);
        assert!(s.per_trial.iter().all(|v| v == &vec![m[0].code]));
    }

    #[test]
    fn sketch_entries_are_minimizer_codes() {
        let seq = rng_seq(2000, 77);
        let p = JemParams::new(9, 12, 150).unwrap();
        let f = HashFamily::generate(8, 6);
        let codes: std::collections::HashSet<u64> = minimizers(&seq, p.minimizer_params())
            .iter()
            .map(|m| m.code)
            .collect();
        let s = sketch_by_jem(&seq, p, &f);
        for list in &s.per_trial {
            for c in list {
                assert!(
                    codes.contains(c),
                    "sketch code not a minimizer of the input"
                );
            }
        }
    }

    #[test]
    fn trial_lists_sorted_unique() {
        let seq = rng_seq(3000, 5);
        let s = sketch_by_jem(
            &seq,
            JemParams::new(8, 10, 200).unwrap(),
            &HashFamily::generate(4, 2),
        );
        for list in &s.per_trial {
            for w in list.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn sketch_smaller_than_minimizer_list() {
        // Interval sketching selects ~one code per interval; with long
        // intervals the per-trial sketch must be far smaller than |Mo|.
        let seq = rng_seq(20_000, 31);
        let p = JemParams::new(16, 20, 2000).unwrap();
        let f = HashFamily::generate(1, 8);
        let m = minimizers(&seq, p.minimizer_params()).len();
        let s = sketch_by_jem(&seq, p, &f);
        assert!(
            s.per_trial[0].len() * 4 < m,
            "sketch {} not much smaller than |Mo| = {m}",
            s.per_trial[0].len()
        );
    }

    #[test]
    fn shared_subsequence_produces_shared_sketches() {
        // A query that is a verbatim ℓ-window of the subject must share at
        // least one sketch with it on most trials (the basis of mapping).
        let subject = rng_seq(5000, 13);
        let query = subject[2000..3000].to_vec();
        let p = JemParams::new(11, 10, 1000).unwrap();
        let f = HashFamily::generate(16, 99);
        let ss = sketch_by_jem(&subject, p, &f);
        let qs = sketch_by_jem(&query, p, &f);
        let mut collisions = 0;
        for t in 0..16 {
            let sub: std::collections::HashSet<&u64> = ss.per_trial[t].iter().collect();
            if qs.per_trial[t].iter().any(|c| sub.contains(c)) {
                collisions += 1;
            }
        }
        assert!(
            collisions >= 12,
            "only {collisions}/16 trials collided for a verbatim window"
        );
    }
}
