//! The minimizer-based Jaccard estimator (JEM) sketch — Algorithm 1.
//!
//! Given a sequence `s`, the minimizer list `Mo(s, w)` is generated and an
//! interval of length ℓ (the query end-segment length) is slid over the
//! minimizer *positions*: for each minimizer `⟨k_i, p_i⟩`, the interval
//! `M_i = {⟨k_j, p_j⟩ : p_i ≤ p_j ≤ p_i + ℓ}` is formed, and for each trial
//! `t ∈ [1, T]` the k-mer minimizing `h_t` over `M_i` joins trial `t`'s
//! sketch set. Sketches are thereby generated *at the resolution of the end
//! segment length* on both subjects and queries, which is the paper's key
//! departure from Mashmap (no positional post-filtering needed).
//!
//! [`sketch_by_jem`] runs in `O(|Mo|·T)` using one monotone deque per trial
//! (the intervals advance monotonically); [`sketch_by_jem_naive`] is the
//! direct transliteration of Algorithm 1 used by tests.

use crate::hash::HashFamily;
use crate::minimizer::{minimizers, Minimizer, MinimizerParams};
use jem_seq::SeqError;
use std::collections::VecDeque;

/// Parameters of the JEM sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JemParams {
    /// k-mer size.
    pub k: usize,
    /// Minimizer window size `w` (number of consecutive k-mers).
    pub w: usize,
    /// Interval / end-segment length ℓ in bases.
    pub ell: usize,
}

impl JemParams {
    /// Construct and validate.
    pub fn new(k: usize, w: usize, ell: usize) -> Result<Self, SeqError> {
        MinimizerParams::new(k, w)?;
        if ell == 0 {
            return Err(SeqError::InvalidParameter(
                "interval length ell must be >= 1".into(),
            ));
        }
        Ok(JemParams { k, w, ell })
    }

    /// Paper defaults: `k = 16`, `w = 100`, `ℓ = 1000`.
    pub fn paper_default() -> Self {
        JemParams {
            k: 16,
            w: 100,
            ell: 1000,
        }
    }

    /// The embedded minimizer parameters.
    pub fn minimizer_params(&self) -> MinimizerParams {
        MinimizerParams {
            k: self.k,
            w: self.w,
        }
    }
}

/// A JEM sketch: for each trial `t`, the sorted, deduplicated set of k-mer
/// codes selected over all ℓ-intervals of the minimizer list.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct JemSketch {
    /// `per_trial[t]` = sorted unique sketch k-mer codes for trial `t`.
    pub per_trial: Vec<Vec<u64>>,
}

impl JemSketch {
    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.per_trial.len()
    }

    /// Total number of (trial, code) entries.
    pub fn total_entries(&self) -> usize {
        self.per_trial.iter().map(Vec::len).sum()
    }

    /// True if no trial selected any sketch (input had no minimizers).
    pub fn is_empty(&self) -> bool {
        self.per_trial.iter().all(Vec::is_empty)
    }
}

/// Compute the JEM sketch of `seq` — efficient version of Algorithm 1.
///
/// ```
/// use jem_sketch::{sketch_by_jem, HashFamily, JemParams};
///
/// let params = JemParams::new(11, 10, 200).unwrap();
/// let family = HashFamily::generate(8, 42); // T = 8 trials
/// let seq: Vec<u8> = (0..2000).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
/// let sketch = sketch_by_jem(&seq, params, &family);
/// assert_eq!(sketch.trials(), 8);
/// assert!(!sketch.is_empty());
/// ```
pub fn sketch_by_jem(seq: &[u8], params: JemParams, family: &HashFamily) -> JemSketch {
    let mins = minimizers(seq, params.minimizer_params());
    sketch_minimizer_list(&mins, params.ell, family)
}

/// Compute the JEM sketch from a precomputed minimizer list.
///
/// Exposed separately so the mapper can reuse the minimizer list when it
/// needs both the sketch and the list itself (e.g. the Mashmap baseline and
/// ablations share minimizer extraction).
pub fn sketch_minimizer_list(mins: &[Minimizer], ell: usize, family: &HashFamily) -> JemSketch {
    let rec = jem_obs::recorder();
    let _span = jem_obs::Span::enter(rec, "sketch/select");
    let t_count = family.len();
    let mut per_trial: Vec<Vec<u64>> = vec![Vec::new(); t_count];
    if mins.is_empty() || t_count == 0 {
        return JemSketch { per_trial };
    }

    // One monotone deque per trial over (index, hash, code); fronts hold the
    // current interval minimum. Entries are pushed once as the right edge
    // advances, so total work is O(|mins| * T).
    let mut deques: Vec<VecDeque<(usize, u64, u64)>> = vec![VecDeque::new(); t_count];
    let mut end = 0usize;

    for i in 0..mins.len() {
        let hi = u64::from(mins[i].pos) + ell as u64;
        // Advance the right edge: include every minimizer with p_j <= p_i + ell.
        while end < mins.len() && u64::from(mins[end].pos) <= hi {
            let code = mins[end].code;
            for (t, h) in family.iter() {
                let hv = h.hash(code);
                let dq = &mut deques[t];
                while let Some(&(_, bh, bc)) = dq.back() {
                    // Keep earlier entries on ties: pop only strictly worse.
                    if (bh, bc) > (hv, code) {
                        dq.pop_back();
                    } else {
                        break;
                    }
                }
                dq.push_back((end, hv, code));
            }
            end += 1;
        }
        // Retire entries left of the interval start and take the minimum.
        for dq in deques.iter_mut() {
            while let Some(&(idx, _, _)) = dq.front() {
                if idx < i {
                    dq.pop_front();
                } else {
                    break;
                }
            }
        }
        for (t, dq) in deques.iter().enumerate() {
            let &(_, _, code) = dq.front().expect("interval contains minimizer i itself");
            per_trial[t].push(code);
        }
    }

    for list in per_trial.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    if rec.enabled() {
        rec.add(
            "sketch.sketches_emitted",
            per_trial.iter().map(|l| l.len() as u64).sum(),
        );
    }
    JemSketch { per_trial }
}

/// Direct transliteration of Algorithm 1 (quadratic; for tests).
pub fn sketch_by_jem_naive(seq: &[u8], params: JemParams, family: &HashFamily) -> JemSketch {
    let mins = minimizers(seq, params.minimizer_params());
    let mut per_trial: Vec<Vec<u64>> = vec![Vec::new(); family.len()];
    for (i, mi) in mins.iter().enumerate() {
        // M_i = {⟨k_j, p_j⟩ : p_i ≤ p_j ≤ p_i + ℓ}
        let hi = u64::from(mi.pos) + params.ell as u64;
        let interval: Vec<&Minimizer> = mins[i..]
            .iter()
            .take_while(|m| u64::from(m.pos) <= hi)
            .collect();
        for (t, h) in family.iter() {
            let best = interval
                .iter()
                .map(|m| (h.hash(m.code), m.code))
                .min()
                .expect("interval contains m_i");
            per_trial[t].push(best.1);
        }
    }
    for list in per_trial.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    JemSketch { per_trial }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn params_validation() {
        assert!(JemParams::new(16, 100, 0).is_err());
        assert!(JemParams::new(0, 100, 1000).is_err());
        assert!(JemParams::new(16, 0, 1000).is_err());
        let p = JemParams::paper_default();
        assert_eq!((p.k, p.w, p.ell), (16, 100, 1000));
    }

    #[test]
    fn empty_input_empty_sketch() {
        let f = HashFamily::generate(8, 1);
        let s = sketch_by_jem(b"", JemParams::new(5, 4, 100).unwrap(), &f);
        assert!(s.is_empty());
        assert_eq!(s.trials(), 8);
    }

    #[test]
    fn matches_naive_small() {
        let f = HashFamily::generate(10, 42);
        for (n, k, w, ell) in [(200, 5, 4, 50), (500, 7, 10, 100), (300, 16, 8, 60)] {
            let seq = rng_seq(n, n as u64);
            let p = JemParams::new(k, w, ell).unwrap();
            assert_eq!(
                sketch_by_jem(&seq, p, &f),
                sketch_by_jem_naive(&seq, p, &f),
                "n={n} k={k} w={w} ell={ell}"
            );
        }
    }

    #[test]
    fn matches_naive_with_ambiguous() {
        let mut seq = rng_seq(400, 9);
        seq[100] = b'N';
        seq[101] = b'N';
        seq[250] = b'N';
        let f = HashFamily::generate(6, 5);
        let p = JemParams::new(5, 6, 80).unwrap();
        assert_eq!(sketch_by_jem(&seq, p, &f), sketch_by_jem_naive(&seq, p, &f));
    }

    #[test]
    fn single_minimizer_sequence() {
        // Short sequence → one minimizer → each trial sketches exactly it.
        let seq = b"ACGTGCA";
        let f = HashFamily::generate(5, 3);
        let p = JemParams::new(3, 100, 1000).unwrap();
        let s = sketch_by_jem(seq, p, &f);
        for t in 0..5 {
            assert_eq!(s.per_trial[t].len(), 1);
        }
        // All trials sketch the same sole minimizer.
        let m = minimizers(seq, p.minimizer_params());
        assert_eq!(m.len(), 1);
        assert!(s.per_trial.iter().all(|v| v == &vec![m[0].code]));
    }

    #[test]
    fn sketch_entries_are_minimizer_codes() {
        let seq = rng_seq(2000, 77);
        let p = JemParams::new(9, 12, 150).unwrap();
        let f = HashFamily::generate(8, 6);
        let codes: std::collections::HashSet<u64> = minimizers(&seq, p.minimizer_params())
            .iter()
            .map(|m| m.code)
            .collect();
        let s = sketch_by_jem(&seq, p, &f);
        for list in &s.per_trial {
            for c in list {
                assert!(
                    codes.contains(c),
                    "sketch code not a minimizer of the input"
                );
            }
        }
    }

    #[test]
    fn trial_lists_sorted_unique() {
        let seq = rng_seq(3000, 5);
        let s = sketch_by_jem(
            &seq,
            JemParams::new(8, 10, 200).unwrap(),
            &HashFamily::generate(4, 2),
        );
        for list in &s.per_trial {
            for w in list.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn sketch_smaller_than_minimizer_list() {
        // Interval sketching selects ~one code per interval; with long
        // intervals the per-trial sketch must be far smaller than |Mo|.
        let seq = rng_seq(20_000, 31);
        let p = JemParams::new(16, 20, 2000).unwrap();
        let f = HashFamily::generate(1, 8);
        let m = minimizers(&seq, p.minimizer_params()).len();
        let s = sketch_by_jem(&seq, p, &f);
        assert!(
            s.per_trial[0].len() * 4 < m,
            "sketch {} not much smaller than |Mo| = {m}",
            s.per_trial[0].len()
        );
    }

    #[test]
    fn shared_subsequence_produces_shared_sketches() {
        // A query that is a verbatim ℓ-window of the subject must share at
        // least one sketch with it on most trials (the basis of mapping).
        let subject = rng_seq(5000, 13);
        let query = subject[2000..3000].to_vec();
        let p = JemParams::new(11, 10, 1000).unwrap();
        let f = HashFamily::generate(16, 99);
        let ss = sketch_by_jem(&subject, p, &f);
        let qs = sketch_by_jem(&query, p, &f);
        let mut collisions = 0;
        for t in 0..16 {
            let sub: std::collections::HashSet<&u64> = ss.per_trial[t].iter().collect();
            if qs.per_trial[t].iter().any(|c| sub.contains(c)) {
                collisions += 1;
            }
        }
        assert!(
            collisions >= 12,
            "only {collisions}/16 trials collided for a verbatim window"
        );
    }
}
