//! Pluggable sketch-position schemes.
//!
//! The JEM sketch (Algorithm 1) is agnostic to *how* the position list
//! `Mo(s, w)` is chosen — it only needs `(code, position)` tuples sorted by
//! position. [`SketchScheme`] abstracts that choice: the paper's windowed
//! minimizers, or closed syncmers (the quality-oriented alternative
//! implementing the paper's future-work item i).

use crate::jem::{select_into, sketch_minimizer_list, JemSketch, SketchScratch};
use crate::minimizer::{minimizers, minimizers_into, Minimizer, MinimizerParams, WinnowScratch};
use crate::syncmer::{closed_syncmers, closed_syncmers_into, SyncmerParams};
use crate::HashFamily;
use jem_seq::SeqError;

/// How sketch positions are selected from a sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SketchScheme {
    /// Window minimizers (the paper's scheme): smallest canonical k-mer of
    /// `w` consecutive k-mers, winnowing-deduplicated.
    Minimizer {
        /// Window size `w`.
        w: usize,
    },
    /// Closed syncmers: context-free selection where the minimal `s`-mer of
    /// the k-mer sits at its first or last offset.
    ClosedSyncmer {
        /// Inner s-mer size.
        s: usize,
    },
}

impl SketchScheme {
    /// Validate against a k-mer size.
    pub fn validate(&self, k: usize) -> Result<(), SeqError> {
        match *self {
            SketchScheme::Minimizer { w } => MinimizerParams::new(k, w).map(|_| ()),
            SketchScheme::ClosedSyncmer { s } => SyncmerParams::new(k, s).map(|_| ()),
        }
    }

    /// Extract the position list for `seq`.
    pub fn extract(&self, seq: &[u8], k: usize) -> Vec<Minimizer> {
        match *self {
            SketchScheme::Minimizer { w } => match MinimizerParams::new(k, w) {
                Ok(p) => minimizers(seq, p),
                Err(_) => Vec::new(),
            },
            SketchScheme::ClosedSyncmer { s } => match SyncmerParams::new(k, s) {
                Ok(p) => closed_syncmers(seq, p),
                Err(_) => Vec::new(),
            },
        }
    }

    /// Allocation-reusing variant of [`extract`](Self::extract): clears and
    /// refills `out` (invalid parameters leave it empty, matching the
    /// owning variant's `Vec::new()`).
    pub fn extract_into(
        &self,
        seq: &[u8],
        k: usize,
        winnow: &mut WinnowScratch,
        out: &mut Vec<Minimizer>,
    ) {
        match *self {
            SketchScheme::Minimizer { w } => match MinimizerParams::new(k, w) {
                Ok(p) => minimizers_into(seq, p, winnow, out),
                Err(_) => out.clear(),
            },
            SketchScheme::ClosedSyncmer { s } => match SyncmerParams::new(k, s) {
                Ok(p) => closed_syncmers_into(seq, p, winnow, out),
                Err(_) => out.clear(),
            },
        }
    }

    /// Expected selection density (fraction of k-mers chosen).
    pub fn expected_density(&self, k: usize) -> f64 {
        match *self {
            SketchScheme::Minimizer { w } => 2.0 / (w as f64 + 1.0),
            SketchScheme::ClosedSyncmer { s } => 2.0 / (k - s + 1) as f64,
        }
    }
}

/// JEM sketch of `seq` under an arbitrary position scheme: Algorithm 1 with
/// its minimizer list swapped for the scheme's selection.
pub fn sketch_by_scheme(
    seq: &[u8],
    k: usize,
    scheme: SketchScheme,
    ell: usize,
    family: &HashFamily,
) -> JemSketch {
    sketch_minimizer_list(&scheme.extract(seq, k), ell, family)
}

/// Allocation-free variant of [`sketch_by_scheme`]: reuses `scratch` and
/// overwrites `out`. Byte-identical to [`sketch_by_scheme`] on every input.
pub fn sketch_by_scheme_into(
    seq: &[u8],
    k: usize,
    scheme: SketchScheme,
    ell: usize,
    family: &HashFamily,
    scratch: &mut SketchScratch,
    out: &mut JemSketch,
) {
    let SketchScratch {
        mins,
        winnow,
        ends,
        starts,
        codes,
        hashes,
        stack,
    } = scratch;
    scheme.extract_into(seq, k, winnow, mins);
    select_into(mins, ell, family, ends, starts, codes, hashes, stack, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sketch_by_jem, JemParams};

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn minimizer_scheme_matches_direct_jem() {
        let seq = rng_seq(5_000, 1);
        let family = HashFamily::generate(8, 2);
        let params = JemParams::new(12, 10, 300).unwrap();
        let via_scheme =
            sketch_by_scheme(&seq, 12, SketchScheme::Minimizer { w: 10 }, 300, &family);
        let direct = sketch_by_jem(&seq, params, &family);
        assert_eq!(via_scheme, direct);
    }

    #[test]
    fn syncmer_scheme_produces_nonempty_sketch() {
        let seq = rng_seq(5_000, 3);
        let family = HashFamily::generate(8, 4);
        let sketch = sketch_by_scheme(
            &seq,
            16,
            SketchScheme::ClosedSyncmer { s: 11 },
            300,
            &family,
        );
        assert!(!sketch.is_empty());
        assert_eq!(sketch.trials(), 8);
    }

    #[test]
    fn validation_dispatches() {
        assert!(SketchScheme::Minimizer { w: 0 }.validate(16).is_err());
        assert!(SketchScheme::Minimizer { w: 100 }.validate(16).is_ok());
        assert!(SketchScheme::ClosedSyncmer { s: 16 }.validate(16).is_err());
        assert!(SketchScheme::ClosedSyncmer { s: 11 }.validate(16).is_ok());
    }

    #[test]
    fn densities() {
        assert!((SketchScheme::Minimizer { w: 99 }.expected_density(16) - 0.02).abs() < 1e-12);
        assert!(
            (SketchScheme::ClosedSyncmer { s: 11 }.expected_density(16) - 2.0 / 6.0).abs() < 1e-12
        );
    }

    #[test]
    fn shared_window_collides_under_syncmers_too() {
        let subject = rng_seq(8_000, 9);
        let query = subject[3_000..4_000].to_vec();
        let family = HashFamily::generate(12, 5);
        let scheme = SketchScheme::ClosedSyncmer { s: 11 };
        let ss = sketch_by_scheme(&subject, 16, scheme, 1_000, &family);
        let qs = sketch_by_scheme(&query, 16, scheme, 1_000, &family);
        let mut collisions = 0;
        for t in 0..12 {
            let sub: std::collections::HashSet<&u64> = ss.per_trial[t].iter().collect();
            if qs.per_trial[t].iter().any(|c| sub.contains(c)) {
                collisions += 1;
            }
        }
        assert!(collisions >= 10, "only {collisions}/12 trials collided");
    }
}
