//! # jem-sketch — sketching primitives for JEM-Mapper
//!
//! Implements the sketching layer of the paper:
//!
//! * [`hash`] — the family of `T` linear-congruential hash functions
//!   `h_t(x) = (A_t·x + B_t) mod P_t` applied to canonical k-mer ranks
//!   (paper §III-B-2, implementation notes). Constants are generated a
//!   priori from a seed, exactly as the paper prescribes.
//! * [`minimizer`] — window-`w` minimizers under lexicographic order of
//!   canonical k-mers (paper §III-B-2), extracted in O(n) by a two-pass
//!   winnow over block 2-bit encoded runs; the minimizer list `Mo(s, w)`
//!   keeps `(kmer, position)` tuples
//!   sorted by position and deduplicates per the winnowing rule ("added only
//!   if they change or the current minimizer goes out of bounds").
//! * [`minhash`] — the classical Broder MinHash sketch over all k-mers of a
//!   sequence (the paper's baseline comparator in Fig. 6).
//! * [`jem`] — the minimizer-based Jaccard estimator sketch, Algorithm 1:
//!   intervals of length ℓ slid over the minimizer list, `T` MinHashes per
//!   interval.
//! * [`jaccard`] — exact Jaccard, the minimizer Jaccard estimate
//!   `J_m(A,B;w) = J(M(A,w), M(B,w))`, and MinHash collision estimators.

// `unsafe` is forbidden except under the `simd` feature, whose only unsafe
// code is the AVX2 `target_feature` wrappers in `hash` (runtime-detected,
// byte-identical to the safe fallback).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod jaccard;
pub mod jem;
pub mod minhash;
pub mod minimizer;
pub mod scheme;
pub mod syncmer;

pub use hash::{reduce_p61, HashFamily, LcgHash};
pub use jaccard::{exact_jaccard, kmer_set, minimizer_jaccard, sketch_jaccard_estimate};
pub use jem::{
    sketch_by_jem, sketch_by_jem_into, sketch_minimizer_list, sketch_minimizer_list_into,
    JemParams, JemSketch, SketchScratch,
};
pub use minhash::{classic_minhash_seq, classic_minhash_set, ClassicSketch};
pub use minimizer::{
    minimizers, minimizers_into, minimizers_naive, Minimizer, MinimizerParams, WinnowScratch,
};
pub use scheme::{sketch_by_scheme, sketch_by_scheme_into, SketchScheme};
pub use syncmer::{closed_syncmers, closed_syncmers_into, is_closed_syncmer, SyncmerParams};
