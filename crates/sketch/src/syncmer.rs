//! Closed syncmers — an alternative sketch-position scheme.
//!
//! The paper's future work item (i) asks for "algorithmic optimizations to
//! further improve quality of mapping". Syncmers (Edgar 2021) are the
//! natural candidate: a k-mer is a *closed syncmer* if the smallest of its
//! `s`-mers sits at the first or last offset. Selection is decided by the
//! k-mer *alone* (no window context), so a substitution can only affect the
//! k-mers that overlap it — unlike minimizers, where one mutation can
//! reshuffle selections across a whole window. This "conservation" property
//! makes syncmer sketches more robust on error-bearing reads.
//!
//! Expected density is `2/(k−s+1)` (vs `2/(w+1)` for minimizers), so
//! matched-density comparisons pick `s ≈ k − w` when possible.
//!
//! Selections are made on *canonical* k-mers, so the selected code set is
//! strand-invariant, and the output is interchangeable with
//! [`crate::minimizer::minimizers`]: the same `(code, pos)` tuples feed
//! [`crate::jem::sketch_minimizer_list`].

use crate::minimizer::{Minimizer, WinnowScratch};
use jem_seq::block::RunCodes;
use jem_seq::kmer::{kmer_mask, roll_canonical, MAX_K};
use jem_seq::SeqError;

/// Parameters of closed-syncmer extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncmerParams {
    /// k-mer size.
    pub k: usize,
    /// Inner s-mer size (`1 ≤ s < k`).
    pub s: usize,
}

impl SyncmerParams {
    /// Construct and validate.
    pub fn new(k: usize, s: usize) -> Result<Self, SeqError> {
        if k == 0 || k > jem_seq::kmer::MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        if s == 0 || s >= k {
            return Err(SeqError::InvalidParameter(format!(
                "syncmer s must satisfy 1 <= s < k (got s={s}, k={k})"
            )));
        }
        Ok(SyncmerParams { k, s })
    }

    /// Expected selection density `2/(k−s+1)` (fraction of k-mers chosen).
    pub fn expected_density(&self) -> f64 {
        2.0 / (self.k - self.s + 1) as f64
    }
}

/// Scrambling rank of an `s`-mer (splitmix64).
///
/// Selection must rank s-mers by a *hash*, not lexicographically: the
/// decision runs on canonical k-mers, and a k-mer is canonical exactly
/// because its prefix compares small — lexicographic ranking would
/// therefore over-select offset 0 and inflate density well above
/// `2/(k−s+1)`. Hashing decorrelates the two.
#[inline]
pub fn smer_rank(smer: u64) -> u64 {
    let mut z = smer.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Is the packed `k`-mer `code` a closed syncmer for inner size `s`?
///
/// True iff the `s`-mer with minimal [`smer_rank`] (leftmost tie) occurs at
/// offset `0` or offset `k − s`.
pub fn is_closed_syncmer(code: u64, k: usize, s: usize) -> bool {
    let mask = kmer_mask(s);
    let last = k - s;
    let mut best_offset = 0usize;
    let mut best = smer_rank((code >> (2 * last)) & mask); // offset 0
    for offset in 1..=last {
        let rank = smer_rank((code >> (2 * (last - offset))) & mask);
        if rank < best {
            best = rank;
            best_offset = offset;
        }
    }
    best_offset == 0 || best_offset == last
}

/// Extract closed syncmers of a sequence as `(canonical code, position)`
/// tuples sorted by position — drop-in replacement for the minimizer list.
pub fn closed_syncmers(seq: &[u8], params: SyncmerParams) -> Vec<Minimizer> {
    let mut scratch = WinnowScratch::default();
    let mut out = Vec::new();
    closed_syncmers_into(seq, params, &mut scratch, &mut out);
    out
}

/// Allocation-reusing variant of [`closed_syncmers`]: clears `out` and
/// refills it, keeping its capacity across calls, and reuses `scratch`'s
/// block-encoding buffers. Pre-sizes to the expected density `2/(k−s+1)`
/// so a cold buffer grows at most once.
///
/// Canonical codes roll branch-free over the block-encoded valid runs
/// (see [`jem_seq::block`]) — byte-identical to the per-byte
/// `CanonicalKmerIter` path, which the equivalence suite pins.
pub fn closed_syncmers_into(
    seq: &[u8],
    params: SyncmerParams,
    scratch: &mut WinnowScratch,
    out: &mut Vec<Minimizer>,
) {
    out.clear();
    let SyncmerParams { k, s } = params;
    if k == 0 || k > MAX_K || s == 0 || s >= k {
        return;
    }
    out.reserve((2 * seq.len()).div_ceil(k - s + 1));
    let encoded = &mut scratch.encoded;
    encoded.encode_into(seq);
    let mask = kmer_mask(k);
    let rev_shift = (2 * (k - 1)) as u32;
    for &run in encoded.runs() {
        let len = run.len as usize;
        if len < k {
            continue;
        }
        let mut codes = RunCodes::new(encoded, run);
        let mut fwd = 0u64;
        let mut rev = 0u64;
        for _ in 0..k - 1 {
            let c = codes.next_code();
            (fwd, rev) = roll_canonical(fwd, rev, c, mask, rev_shift);
        }
        let start = run.start as usize;
        for i in 0..len - k + 1 {
            let c = codes.next_code();
            (fwd, rev) = roll_canonical(fwd, rev, c, mask, rev_shift);
            let code = fwd.min(rev);
            if is_closed_syncmer(code, k, s) {
                out.push(Minimizer {
                    code,
                    pos: (start + i) as u32,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::Kmer;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn params_validation() {
        assert!(SyncmerParams::new(16, 0).is_err());
        assert!(SyncmerParams::new(16, 16).is_err());
        assert!(SyncmerParams::new(0, 1).is_err());
        let p = SyncmerParams::new(16, 11).unwrap();
        assert!((p.expected_density() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn definition_matches_manual_rank_scan() {
        // Recompute the argmin of smer_rank by hand for a batch of k-mers
        // and check is_closed_syncmer agrees with the definition.
        let (k, s) = (9usize, 4usize);
        let seq = rng_seq(500, 4);
        for w in seq.windows(k) {
            let code = Kmer::from_bytes(w).unwrap().code();
            let last = k - s;
            let argmin = (0..=last)
                .min_by_key(|&o| {
                    let smer = Kmer::from_bytes(&w[o..o + s]).unwrap().code();
                    (smer_rank(smer), o)
                })
                .unwrap();
            assert_eq!(
                is_closed_syncmer(code, k, s),
                argmin == 0 || argmin == last,
                "kmer {}",
                String::from_utf8_lossy(w)
            );
        }
    }

    #[test]
    fn density_close_to_expected() {
        let seq = rng_seq(50_000, 1);
        let p = SyncmerParams::new(16, 11).unwrap();
        let selected = closed_syncmers(&seq, p);
        let n_kmers = (seq.len() - p.k + 1) as f64;
        let density = selected.len() as f64 / n_kmers;
        let expect = p.expected_density();
        assert!(
            (density - expect).abs() < expect * 0.2,
            "density {density} vs {expect}"
        );
    }

    #[test]
    fn codes_strand_invariant() {
        let seq = rng_seq(5_000, 2);
        let rc = jem_seq::alphabet::revcomp_bytes(&seq);
        let p = SyncmerParams::new(12, 7).unwrap();
        let a: std::collections::HashSet<u64> =
            closed_syncmers(&seq, p).iter().map(|m| m.code).collect();
        let b: std::collections::HashSet<u64> =
            closed_syncmers(&rc, p).iter().map(|m| m.code).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn positions_sorted_and_valid() {
        let seq = rng_seq(2_000, 3);
        let p = SyncmerParams::new(14, 9).unwrap();
        let list = closed_syncmers(&seq, p);
        assert!(!list.is_empty());
        for pair in list.windows(2) {
            assert!(pair[0].pos < pair[1].pos);
        }
        assert!(list.iter().all(|m| (m.pos as usize) + p.k <= seq.len()));
    }

    #[test]
    fn selection_is_context_free() {
        // The same k-mer is selected (or not) regardless of its neighbours —
        // the property minimizers lack.
        let p = SyncmerParams::new(9, 5).unwrap();
        let core = b"ACGGTCATT";
        let code = Kmer::from_bytes(core).unwrap().canonical().code();
        let expect = is_closed_syncmer(code, 9, 5);
        for (left, right) in [
            (&b"AAAA"[..], &b"TTTT"[..]),
            (b"GGGG", b"CCCC"),
            (b"TACG", b"GATC"),
        ] {
            let mut seq = left.to_vec();
            seq.extend_from_slice(core);
            seq.extend_from_slice(right);
            let found = closed_syncmers(&seq, p)
                .iter()
                .any(|m| m.pos == 4 && m.code == code);
            assert_eq!(found, expect, "context changed the decision");
        }
    }

    #[test]
    fn conservation_beats_minimizers_under_mutation() {
        // Mutate 2% of bases and compare how much of the selected-position
        // set survives for syncmers vs density-matched minimizers. The
        // conservation advantage is the whole point of the scheme.
        use crate::minimizer::{minimizers, MinimizerParams};
        let k = 16;
        let seq = rng_seq(30_000, 7);
        let mut mutated = seq.clone();
        let mut state = 99u64;
        for base in mutated.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11);
            if state.is_multiple_of(50) {
                *base = match *base {
                    b'A' => b'C',
                    b'C' => b'G',
                    b'G' => b'T',
                    _ => b'A',
                };
            }
        }
        let survival = |orig: &[Minimizer], mutd: &[Minimizer]| {
            let set: std::collections::HashSet<(u64, u32)> =
                mutd.iter().map(|m| (m.code, m.pos)).collect();
            let kept = orig
                .iter()
                .filter(|m| set.contains(&(m.code, m.pos)))
                .count();
            kept as f64 / orig.len().max(1) as f64
        };
        // Density-matched: syncmer s=11 → 2/6; minimizer w=5 → 2/6.
        let sp = SyncmerParams::new(k, 11).unwrap();
        let mp = MinimizerParams::new(k, 5).unwrap();
        let sync_survival = survival(&closed_syncmers(&seq, sp), &closed_syncmers(&mutated, sp));
        let mini_survival = survival(&minimizers(&seq, mp), &minimizers(&mutated, mp));
        assert!(
            sync_survival >= mini_survival - 0.02,
            "syncmer survival {sync_survival:.3} should not trail minimizers {mini_survival:.3}"
        );
        assert!(
            sync_survival > 0.5,
            "2% mutations should keep most syncmers"
        );
    }

    #[test]
    fn empty_and_short_inputs() {
        let p = SyncmerParams::new(12, 7).unwrap();
        assert!(closed_syncmers(b"", p).is_empty());
        assert!(closed_syncmers(b"ACGT", p).is_empty());
        assert!(closed_syncmers(b"NNNNNNNNNNNNNNNN", p).is_empty());
    }
}
