//! Window minimizers under lexicographic order of canonical k-mers.
//!
//! Given a sequence `s`, k-mer size `k` and window size `w`, the minimizer of
//! a window of `w` consecutive k-mers is the lexicographically smallest
//! *canonical* k-mer in that window (paper §III-B-2; the paper uses the
//! lexicographically smallest k-mer as its "uniformly random" hash, citing
//! its refs. 23 and 24). The minimizer list `Mo(s, w)` contains `(kmer, position)`
//! tuples sorted by position, with a tuple appended "only if the minimizer
//! changes or the current one goes out of bounds" — i.e. classic winnowing
//! deduplication.
//!
//! [`minimizers`] runs in O(n): the sequence is block-2-bit encoded once
//! ([`jem_seq::block`]), canonical codes roll branch-free over each maximal
//! valid run into a flat buffer, and a second pass selects leftmost window
//! minima with two predictable compares per k-mer.
//! [`minimizers_naive`] is the quadratic reference used by tests.

use jem_seq::block::{BlockEncoded, Run, RunCodes};
use jem_seq::kmer::{kmer_mask, roll_canonical, MAX_K};
use jem_seq::{CanonicalKmerIter, Kmer, SeqError};

/// Parameters for minimizer extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinimizerParams {
    /// k-mer size (`1..=32`).
    pub k: usize,
    /// Window size: a minimizer is selected from `w` consecutive k-mers.
    pub w: usize,
}

impl MinimizerParams {
    /// Construct and validate parameters.
    pub fn new(k: usize, w: usize) -> Result<Self, SeqError> {
        if k == 0 || k > jem_seq::kmer::MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        if w == 0 {
            return Err(SeqError::InvalidParameter(
                "window size w must be >= 1".into(),
            ));
        }
        Ok(MinimizerParams { k, w })
    }

    /// Paper defaults: `k = 16`, `w = 100`.
    pub fn paper_default() -> Self {
        MinimizerParams { k: 16, w: 100 }
    }
}

/// One entry of the minimizer list `Mo(s, w)`: a canonical k-mer and the
/// 0-based start position of its window occurrence on the sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Minimizer {
    /// Canonical k-mer code (lexicographic rank in `Π*_k`).
    pub code: u64,
    /// 0-based position of the k-mer occurrence on the sequence.
    pub pos: u32,
}

/// Reusable winnowing state backing [`minimizers_into`] (and the syncmer
/// extractor, which shares the block encoding buffers).
///
/// `codes` is a flat buffer of canonical k-mer codes for the run currently
/// being winnowed: the rolling-code pass and the window-minimum scan are
/// split into two simple loops over it, replacing the
/// `VecDeque<(usize, u32, u64)>` of the previous kernel. `encoded` holds
/// the block 2-bit encoding of the current sequence (see
/// [`jem_seq::block`]), reused across calls.
#[derive(Clone, Debug, Default)]
pub struct WinnowScratch {
    codes: Vec<u64>,
    pub(crate) encoded: BlockEncoded,
}

/// Extract the minimizer list `Mo(s, w)` in O(n) with a two-pass
/// winnow over the block-encoded runs.
///
/// Runs of valid bases separated by ambiguity codes are winnowed
/// independently (a window never spans an `N`). Sequences shorter than a
/// full window still produce the minimizer of whatever k-mers exist, so no
/// short contig is silently dropped. Ties inside a window keep the leftmost
/// occurrence.
///
/// ```
/// use jem_sketch::{minimizers, MinimizerParams};
///
/// let params = MinimizerParams::new(5, 4).unwrap();
/// let mins = minimizers(b"ACGGTCATTCAGGATACCAG", params);
/// assert!(!mins.is_empty());
/// // Positions are sorted and in range.
/// assert!(mins.windows(2).all(|w| w[0].pos <= w[1].pos));
/// ```
pub fn minimizers(seq: &[u8], params: MinimizerParams) -> Vec<Minimizer> {
    let mut scratch = WinnowScratch::default();
    let mut out = Vec::new();
    minimizers_into(seq, params, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`minimizers`]: writes the minimizer list
/// into `out` (cleared first), reusing `scratch`'s code buffer and encoder
/// storage. Produces exactly the same list as [`minimizers`] for every
/// input.
pub fn minimizers_into(
    seq: &[u8],
    params: MinimizerParams,
    scratch: &mut WinnowScratch,
    out: &mut Vec<Minimizer>,
) {
    let MinimizerParams { k, w } = params;
    let rec = jem_obs::recorder();
    // Span construction and counter updates are hoisted behind one enabled()
    // check so a disabled recorder costs nothing on the per-sequence path.
    let enabled = rec.enabled();
    let _span = enabled.then(|| jem_obs::Span::enter(rec, "sketch/minimizers"));
    out.clear();
    // Expected winnowing density is 2/(w+1): pre-size the output so growth
    // never interrupts the scan (⌈2n/(w+1)⌉ is a slight over-estimate).
    out.reserve((2 * seq.len()).div_ceil(w + 1));
    if k == 0 || k > MAX_K || w == 0 {
        return;
    }

    let WinnowScratch { codes, encoded } = scratch;
    encoded.encode_into(seq);
    let mask = kmer_mask(k);
    let rev_shift = (2 * (k - 1)) as u32;
    for &run in encoded.runs() {
        let len = run.len as usize;
        if len >= k {
            winnow_run(encoded, run, k, w, mask, rev_shift, codes, out);
        }
    }
    if enabled {
        // k-mers scanned = Σ over runs of max(0, run_len − k + 1); computed
        // arithmetically instead of counting in the hot loop.
        let windows: u64 = encoded
            .runs()
            .iter()
            .map(|r| (r.len as usize).saturating_sub(k - 1) as u64)
            .sum();
        rec.add("sketch.sequences", 1);
        rec.add("sketch.windows_scanned", windows);
        rec.add("sketch.minimizers_kept", out.len() as u64);
    }
}

/// Winnow one valid run in two flat passes.
///
/// Pass 1 rolls canonical codes branch-free over the packed words into the
/// `codes` scratch buffer. Pass 2 tracks the leftmost window minimum with
/// two predictable compares per k-mer: a strictly-smaller code takes over
/// immediately (strict, so the leftmost of a tie survives), and when the
/// current minimum falls out of the window the last `w` codes are rescanned.
/// Rescans happen at the winnowing density ~2/(w+1) and cost `w`, so the
/// scan stays O(n) amortized. Emits follow the winnowing dedup rule (a
/// tuple is appended only when the `(pos, code)` occurrence changes), and a
/// run with fewer than `w` k-mers emits its overall leftmost minimum, both
/// exactly as the per-byte reference does.
#[allow(clippy::too_many_arguments)]
#[inline]
fn winnow_run(
    encoded: &BlockEncoded,
    run: Run,
    k: usize,
    w: usize,
    mask: u64,
    rev_shift: u32,
    codes_buf: &mut Vec<u64>,
    out: &mut Vec<Minimizer>,
) {
    let len = run.len as usize;
    let m = len - k + 1; // number of k-mers in this run (caller checks len >= k)
    if codes_buf.len() < m {
        codes_buf.resize(m, 0);
    }
    let codes = &mut codes_buf[..m];

    // Pass 1: canonical codes of every k-mer in the run.
    let mut stream = RunCodes::new(encoded, run);
    let mut fwd = 0u64;
    let mut rev = 0u64;
    for _ in 0..k - 1 {
        let c = stream.next_code();
        (fwd, rev) = roll_canonical(fwd, rev, c, mask, rev_shift);
    }
    for slot in codes.iter_mut() {
        let c = stream.next_code();
        (fwd, rev) = roll_canonical(fwd, rev, c, mask, rev_shift);
        *slot = fwd.min(rev);
    }

    // Pass 2: leftmost window minimum, emit on change.
    let codes = &codes[..];
    let start = run.start as usize;
    let mut min_j = 0usize;
    let mut min_code = codes[0];
    if m < w {
        // Short run: one window over everything, emit its leftmost minimum.
        for (j, &c) in codes.iter().enumerate().skip(1) {
            if c < min_code {
                min_code = c;
                min_j = j;
            }
        }
        out.push(Minimizer {
            code: min_code,
            pos: (start + min_j) as u32,
        });
        return;
    }
    // Warm-up: leftmost minimum of the first w-1 k-mers.
    for (j, &c) in codes[..w - 1].iter().enumerate().skip(1) {
        if c < min_code {
            min_code = c;
            min_j = j;
        }
    }
    // `pos` never reaches u32::MAX (the encoder caps sequences at u32::MAX
    // bases), so this sentinel can never equal a real first entry.
    let mut last = (u32::MAX, 0u64);
    for j in w - 1..m {
        let c = codes[j];
        if c < min_code {
            // Strictly smaller than the previous window minimum, hence
            // strictly smaller than everything else in this window.
            min_code = c;
            min_j = j;
        } else if min_j + w <= j {
            // The minimum fell out of the window [j-w+1, j]: rescan it for
            // the leftmost minimum (strict compare keeps the leftmost tie).
            let lo = j + 1 - w;
            min_j = lo;
            min_code = codes[lo];
            for (t, &cc) in codes[lo + 1..=j].iter().enumerate() {
                if cc < min_code {
                    min_code = cc;
                    min_j = lo + 1 + t;
                }
            }
        }
        let entry = ((start + min_j) as u32, min_code);
        // Winnowing dedup: emit only on change (pos identifies occurrence).
        if entry != last {
            out.push(Minimizer {
                code: entry.1,
                pos: entry.0,
            });
            last = entry;
        }
    }
}

/// Quadratic reference implementation of [`minimizers`] used by tests.
pub fn minimizers_naive(seq: &[u8], params: MinimizerParams) -> Vec<Minimizer> {
    let MinimizerParams { k, w } = params;
    let kmers: Vec<(usize, Kmer)> = match CanonicalKmerIter::new(seq, k) {
        Ok(it) => it.collect(),
        Err(_) => return Vec::new(),
    };
    // Split into runs of consecutive positions.
    let mut runs: Vec<&[(usize, Kmer)]> = Vec::new();
    let mut start = 0;
    for i in 1..kmers.len() {
        if kmers[i].0 != kmers[i - 1].0 + 1 {
            runs.push(&kmers[start..i]);
            start = i;
        }
    }
    if !kmers.is_empty() {
        runs.push(&kmers[start..]);
    }

    let mut out = Vec::new();
    for run in runs {
        if run.is_empty() {
            continue;
        }
        if run.len() < w {
            // Short run: single window over everything.
            let (pos, km) = run
                .iter()
                .min_by_key(|(p, km)| (km.code(), *p))
                .expect("non-empty run");
            out.push(Minimizer {
                code: km.code(),
                pos: *pos as u32,
            });
            continue;
        }
        let mut last: Option<(u32, u64)> = None;
        for win in run.windows(w) {
            let (pos, km) = win
                .iter()
                .min_by_key(|(p, km)| (km.code(), *p))
                .expect("window");
            let entry = (*pos as u32, km.code());
            if last != Some(entry) {
                out.push(Minimizer {
                    code: entry.1,
                    pos: entry.0,
                });
                last = Some(entry);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;

    fn p(k: usize, w: usize) -> MinimizerParams {
        MinimizerParams::new(k, w).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(MinimizerParams::new(0, 5).is_err());
        assert!(MinimizerParams::new(33, 5).is_err());
        assert!(MinimizerParams::new(16, 0).is_err());
        assert_eq!(
            MinimizerParams::paper_default(),
            MinimizerParams { k: 16, w: 100 }
        );
    }

    #[test]
    fn single_window_minimizer() {
        // 6 bases, k=3 -> 4 k-mers, w=4 -> exactly one window.
        let seq = b"ACGTGC";
        let m = minimizers(seq, p(3, 4));
        assert_eq!(m.len(), 1);
        // Canonical 3-mers: ACG(pos0)=ACG/CGT->min(ACG,ACG?)..; verify against naive.
        assert_eq!(m, minimizers_naive(seq, p(3, 4)));
    }

    #[test]
    fn short_sequence_still_emits() {
        // Fewer k-mers than w: still emit the run minimum (one entry).
        let seq = b"ACGTGCAT";
        let m = minimizers(seq, p(3, 100));
        assert_eq!(m.len(), 1);
        assert_eq!(m, minimizers_naive(seq, p(3, 100)));
    }

    #[test]
    fn no_kmers_no_minimizers() {
        assert!(minimizers(b"AC", p(3, 4)).is_empty());
        assert!(minimizers(b"", p(3, 4)).is_empty());
        assert!(minimizers(b"NNNNNNN", p(3, 4)).is_empty());
    }

    #[test]
    fn positions_sorted_and_deduped() {
        let seq: Vec<u8> = (0..500).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
        let m = minimizers(&seq, p(5, 8));
        for pair in m.windows(2) {
            assert!(pair[0].pos <= pair[1].pos, "positions must be sorted");
            assert_ne!(pair[0], pair[1], "adjacent duplicates must be winnowed");
        }
    }

    #[test]
    fn matches_naive_on_patterned_input() {
        for (k, w) in [(3, 2), (3, 5), (5, 8), (7, 3), (16, 10)] {
            let seq: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * i + 3 * i) % 4]).collect();
            assert_eq!(
                minimizers(&seq, p(k, w)),
                minimizers_naive(&seq, p(k, w)),
                "k={k} w={w}"
            );
        }
    }

    #[test]
    fn matches_naive_with_ambiguous_breaks() {
        let seq = b"ACGTGCATNNACGTTTGCATGGANCCGTA";
        for (k, w) in [(3, 2), (3, 4), (4, 6)] {
            assert_eq!(
                minimizers(seq, p(k, w)),
                minimizers_naive(seq, p(k, w)),
                "k={k} w={w}"
            );
        }
    }

    #[test]
    fn every_window_is_covered() {
        // Coverage invariant: every window of w consecutive k-mers contains
        // at least one selected minimizer occurrence.
        let seq: Vec<u8> = (0..400).map(|i| b"ACGT"[(i * 13 + 5) % 4]).collect();
        let (k, w) = (5, 6);
        let m = minimizers(&seq, p(k, w));
        let positions: std::collections::HashSet<u32> = m.iter().map(|mm| mm.pos).collect();
        let n_kmers = seq.len() - k + 1;
        for start in 0..=(n_kmers - w) {
            let covered = (start..start + w).any(|i| positions.contains(&(i as u32)));
            assert!(covered, "window starting at k-mer {start} has no minimizer");
        }
    }

    #[test]
    fn density_bounds() {
        // Expected winnowing density is ~2/(w+1); allow a generous band.
        let seq: Vec<u8> = (0..20_000)
            .scan(12345u64, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect();
        let (k, w) = (16, 100);
        let m = minimizers(&seq, p(k, w));
        let n_kmers = (seq.len() - k + 1) as f64;
        let density = m.len() as f64 / n_kmers;
        let expect = 2.0 / (w as f64 + 1.0);
        assert!(
            density > expect * 0.5 && density < expect * 2.0,
            "density {density} vs {expect}"
        );
    }

    #[test]
    fn strand_symmetric_codes() {
        // The *set* of minimizer codes of a sequence and its revcomp agree
        // (canonical k-mers + symmetric windows). Positions differ.
        let seq: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 11 + 2) % 4]).collect();
        let rc = revcomp_bytes(&seq);
        let (k, w) = (7, 5);
        let a: std::collections::HashSet<u64> =
            minimizers(&seq, p(k, w)).iter().map(|m| m.code).collect();
        let b: std::collections::HashSet<u64> =
            minimizers(&rc, p(k, w)).iter().map(|m| m.code).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn homopolymer_collapses_to_one() {
        // All windows share the same minimum; winnowing dedup keeps changes
        // only, but the *position* advances as old occurrences expire.
        let seq = vec![b'A'; 100];
        let m = minimizers(&seq, p(4, 8));
        // code must always be AAAA = 0
        assert!(m.iter().all(|mm| mm.code == 0));
        assert_eq!(minimizers(&seq, p(4, 8)), minimizers_naive(&seq, p(4, 8)));
    }
}
