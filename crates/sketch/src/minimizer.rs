//! Window minimizers under lexicographic order of canonical k-mers.
//!
//! Given a sequence `s`, k-mer size `k` and window size `w`, the minimizer of
//! a window of `w` consecutive k-mers is the lexicographically smallest
//! *canonical* k-mer in that window (paper §III-B-2; the paper uses the
//! lexicographically smallest k-mer as its "uniformly random" hash, citing
//! its refs. 23 and 24). The minimizer list `Mo(s, w)` contains `(kmer, position)`
//! tuples sorted by position, with a tuple appended "only if the minimizer
//! changes or the current one goes out of bounds" — i.e. classic winnowing
//! deduplication.
//!
//! [`minimizers`] runs in O(n) using a monotone deque; [`minimizers_naive`]
//! is the quadratic reference used by tests.

use jem_seq::{CanonicalKmerIter, Kmer, SeqError};
use std::collections::VecDeque;

/// Parameters for minimizer extraction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MinimizerParams {
    /// k-mer size (`1..=32`).
    pub k: usize,
    /// Window size: a minimizer is selected from `w` consecutive k-mers.
    pub w: usize,
}

impl MinimizerParams {
    /// Construct and validate parameters.
    pub fn new(k: usize, w: usize) -> Result<Self, SeqError> {
        if k == 0 || k > jem_seq::kmer::MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        if w == 0 {
            return Err(SeqError::InvalidParameter(
                "window size w must be >= 1".into(),
            ));
        }
        Ok(MinimizerParams { k, w })
    }

    /// Paper defaults: `k = 16`, `w = 100`.
    pub fn paper_default() -> Self {
        MinimizerParams { k: 16, w: 100 }
    }
}

/// One entry of the minimizer list `Mo(s, w)`: a canonical k-mer and the
/// 0-based start position of its window occurrence on the sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Minimizer {
    /// Canonical k-mer code (lexicographic rank in `Π*_k`).
    pub code: u64,
    /// 0-based position of the k-mer occurrence on the sequence.
    pub pos: u32,
}

/// Reusable winnowing state: the monotone deque backing
/// [`minimizers_into`]. One per sketching scratch; reusing it across calls
/// keeps the hot path free of per-sequence heap allocation (the `VecDeque`
/// is a contiguous ring buffer, so reuse also keeps it cache-resident).
#[derive(Clone, Debug, Default)]
pub struct WinnowScratch {
    deque: VecDeque<(usize, u32, u64)>,
}

/// Extract the minimizer list `Mo(s, w)` in O(n) with a monotone deque.
///
/// Runs of valid bases separated by ambiguity codes are winnowed
/// independently (a window never spans an `N`). Sequences shorter than a
/// full window still produce the minimizer of whatever k-mers exist, so no
/// short contig is silently dropped. Ties inside a window keep the leftmost
/// occurrence.
///
/// ```
/// use jem_sketch::{minimizers, MinimizerParams};
///
/// let params = MinimizerParams::new(5, 4).unwrap();
/// let mins = minimizers(b"ACGGTCATTCAGGATACCAG", params);
/// assert!(!mins.is_empty());
/// // Positions are sorted and in range.
/// assert!(mins.windows(2).all(|w| w[0].pos <= w[1].pos));
/// ```
pub fn minimizers(seq: &[u8], params: MinimizerParams) -> Vec<Minimizer> {
    let mut scratch = WinnowScratch::default();
    let mut out = Vec::new();
    minimizers_into(seq, params, &mut scratch, &mut out);
    out
}

/// Allocation-free variant of [`minimizers`]: writes the minimizer list
/// into `out` (cleared first), reusing `scratch`'s deque storage. Produces
/// exactly the same list as [`minimizers`] for every input.
pub fn minimizers_into(
    seq: &[u8],
    params: MinimizerParams,
    scratch: &mut WinnowScratch,
    out: &mut Vec<Minimizer>,
) {
    let MinimizerParams { k, w } = params;
    let rec = jem_obs::recorder();
    let _span = jem_obs::Span::enter(rec, "sketch/minimizers");
    let mut windows_scanned = 0u64;
    out.clear();
    // Expected winnowing density is 2/(w+1): pre-size the output so growth
    // never interrupts the scan (⌈2n/(w+1)⌉ is a slight over-estimate).
    out.reserve((2 * seq.len()).div_ceil(w + 1));
    let iter = match CanonicalKmerIter::new(seq, k) {
        Ok(it) => it,
        Err(_) => return,
    };

    // Monotone deque of (index-in-run, pos, code); front is the window min.
    let deque = &mut scratch.deque;
    deque.clear();
    let mut prev_pos: Option<usize> = None; // position of previous yielded k-mer
    let mut idx_in_run = 0usize;
    let mut last_emitted: Option<(u32, u64)> = None;

    let flush_short_run =
        |deque: &VecDeque<(usize, u32, u64)>, count: usize, out: &mut Vec<Minimizer>| {
            // Run ended with fewer than w k-mers: emit the run minimum so
            // short contigs/segments are never silently dropped.
            if count > 0 && count < w {
                if let Some(&(_, pos, code)) = deque.front() {
                    out.push(Minimizer { code, pos });
                }
            }
        };

    for (pos, kmer) in iter {
        windows_scanned += 1;
        // Detect run breaks (KmerIter skips over ambiguous bases, so
        // consecutive yielded positions jump by more than 1 at a break).
        let is_new_run = matches!(prev_pos, Some(pp) if pos != pp + 1);
        if is_new_run {
            flush_short_run(deque, idx_in_run, out);
            deque.clear();
            idx_in_run = 0;
            last_emitted = None;
        }
        prev_pos = Some(pos);

        let code = kmer.code();
        // Pop strictly larger entries: `<=` keeps the leftmost on ties.
        while let Some(&(_, _, back_code)) = deque.back() {
            if back_code > code {
                deque.pop_back();
            } else {
                break;
            }
        }
        deque.push_back((idx_in_run, pos as u32, code));
        idx_in_run += 1;

        if idx_in_run >= w {
            // Window of the last w k-mers is full: evict out-of-window front.
            let window_lo = idx_in_run - w;
            while let Some(&(i, _, _)) = deque.front() {
                if i < window_lo {
                    deque.pop_front();
                } else {
                    break;
                }
            }
            let &(_, mpos, mcode) = deque.front().expect("window is non-empty");
            // Winnowing dedup: emit only on change (pos identifies occurrence).
            if last_emitted != Some((mpos, mcode)) {
                out.push(Minimizer {
                    code: mcode,
                    pos: mpos,
                });
                last_emitted = Some((mpos, mcode));
            }
        }
    }
    // Tail: if the final run never filled a window, emit its overall min.
    flush_short_run(deque, idx_in_run, out);
    if rec.enabled() {
        rec.add("sketch.sequences", 1);
        rec.add("sketch.windows_scanned", windows_scanned);
        rec.add("sketch.minimizers_kept", out.len() as u64);
    }
}

/// Quadratic reference implementation of [`minimizers`] used by tests.
pub fn minimizers_naive(seq: &[u8], params: MinimizerParams) -> Vec<Minimizer> {
    let MinimizerParams { k, w } = params;
    let kmers: Vec<(usize, Kmer)> = match CanonicalKmerIter::new(seq, k) {
        Ok(it) => it.collect(),
        Err(_) => return Vec::new(),
    };
    // Split into runs of consecutive positions.
    let mut runs: Vec<&[(usize, Kmer)]> = Vec::new();
    let mut start = 0;
    for i in 1..kmers.len() {
        if kmers[i].0 != kmers[i - 1].0 + 1 {
            runs.push(&kmers[start..i]);
            start = i;
        }
    }
    if !kmers.is_empty() {
        runs.push(&kmers[start..]);
    }

    let mut out = Vec::new();
    for run in runs {
        if run.is_empty() {
            continue;
        }
        if run.len() < w {
            // Short run: single window over everything.
            let (pos, km) = run
                .iter()
                .min_by_key(|(p, km)| (km.code(), *p))
                .expect("non-empty run");
            out.push(Minimizer {
                code: km.code(),
                pos: *pos as u32,
            });
            continue;
        }
        let mut last: Option<(u32, u64)> = None;
        for win in run.windows(w) {
            let (pos, km) = win
                .iter()
                .min_by_key(|(p, km)| (km.code(), *p))
                .expect("window");
            let entry = (*pos as u32, km.code());
            if last != Some(entry) {
                out.push(Minimizer {
                    code: entry.1,
                    pos: entry.0,
                });
                last = Some(entry);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jem_seq::alphabet::revcomp_bytes;

    fn p(k: usize, w: usize) -> MinimizerParams {
        MinimizerParams::new(k, w).unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(MinimizerParams::new(0, 5).is_err());
        assert!(MinimizerParams::new(33, 5).is_err());
        assert!(MinimizerParams::new(16, 0).is_err());
        assert_eq!(
            MinimizerParams::paper_default(),
            MinimizerParams { k: 16, w: 100 }
        );
    }

    #[test]
    fn single_window_minimizer() {
        // 6 bases, k=3 -> 4 k-mers, w=4 -> exactly one window.
        let seq = b"ACGTGC";
        let m = minimizers(seq, p(3, 4));
        assert_eq!(m.len(), 1);
        // Canonical 3-mers: ACG(pos0)=ACG/CGT->min(ACG,ACG?)..; verify against naive.
        assert_eq!(m, minimizers_naive(seq, p(3, 4)));
    }

    #[test]
    fn short_sequence_still_emits() {
        // Fewer k-mers than w: still emit the run minimum (one entry).
        let seq = b"ACGTGCAT";
        let m = minimizers(seq, p(3, 100));
        assert_eq!(m.len(), 1);
        assert_eq!(m, minimizers_naive(seq, p(3, 100)));
    }

    #[test]
    fn no_kmers_no_minimizers() {
        assert!(minimizers(b"AC", p(3, 4)).is_empty());
        assert!(minimizers(b"", p(3, 4)).is_empty());
        assert!(minimizers(b"NNNNNNN", p(3, 4)).is_empty());
    }

    #[test]
    fn positions_sorted_and_deduped() {
        let seq: Vec<u8> = (0..500).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
        let m = minimizers(&seq, p(5, 8));
        for pair in m.windows(2) {
            assert!(pair[0].pos <= pair[1].pos, "positions must be sorted");
            assert_ne!(pair[0], pair[1], "adjacent duplicates must be winnowed");
        }
    }

    #[test]
    fn matches_naive_on_patterned_input() {
        for (k, w) in [(3, 2), (3, 5), (5, 8), (7, 3), (16, 10)] {
            let seq: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * i + 3 * i) % 4]).collect();
            assert_eq!(
                minimizers(&seq, p(k, w)),
                minimizers_naive(&seq, p(k, w)),
                "k={k} w={w}"
            );
        }
    }

    #[test]
    fn matches_naive_with_ambiguous_breaks() {
        let seq = b"ACGTGCATNNACGTTTGCATGGANCCGTA";
        for (k, w) in [(3, 2), (3, 4), (4, 6)] {
            assert_eq!(
                minimizers(seq, p(k, w)),
                minimizers_naive(seq, p(k, w)),
                "k={k} w={w}"
            );
        }
    }

    #[test]
    fn every_window_is_covered() {
        // Coverage invariant: every window of w consecutive k-mers contains
        // at least one selected minimizer occurrence.
        let seq: Vec<u8> = (0..400).map(|i| b"ACGT"[(i * 13 + 5) % 4]).collect();
        let (k, w) = (5, 6);
        let m = minimizers(&seq, p(k, w));
        let positions: std::collections::HashSet<u32> = m.iter().map(|mm| mm.pos).collect();
        let n_kmers = seq.len() - k + 1;
        for start in 0..=(n_kmers - w) {
            let covered = (start..start + w).any(|i| positions.contains(&(i as u32)));
            assert!(covered, "window starting at k-mer {start} has no minimizer");
        }
    }

    #[test]
    fn density_bounds() {
        // Expected winnowing density is ~2/(w+1); allow a generous band.
        let seq: Vec<u8> = (0..20_000)
            .scan(12345u64, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect();
        let (k, w) = (16, 100);
        let m = minimizers(&seq, p(k, w));
        let n_kmers = (seq.len() - k + 1) as f64;
        let density = m.len() as f64 / n_kmers;
        let expect = 2.0 / (w as f64 + 1.0);
        assert!(
            density > expect * 0.5 && density < expect * 2.0,
            "density {density} vs {expect}"
        );
    }

    #[test]
    fn strand_symmetric_codes() {
        // The *set* of minimizer codes of a sequence and its revcomp agree
        // (canonical k-mers + symmetric windows). Positions differ.
        let seq: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 11 + 2) % 4]).collect();
        let rc = revcomp_bytes(&seq);
        let (k, w) = (7, 5);
        let a: std::collections::HashSet<u64> =
            minimizers(&seq, p(k, w)).iter().map(|m| m.code).collect();
        let b: std::collections::HashSet<u64> =
            minimizers(&rc, p(k, w)).iter().map(|m| m.code).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn homopolymer_collapses_to_one() {
        // All windows share the same minimum; winnowing dedup keeps changes
        // only, but the *position* advances as old occurrences expire.
        let seq = vec![b'A'; 100];
        let m = minimizers(&seq, p(4, 8));
        // code must always be AAAA = 0
        assert!(m.iter().all(|mm| mm.code == 0));
        assert_eq!(minimizers(&seq, p(4, 8)), minimizers_naive(&seq, p(4, 8)));
    }
}
