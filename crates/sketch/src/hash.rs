//! The LCG hash family `h_t(x) = (A_t·x + B_t) mod P_t`.
//!
//! The paper (implementation notes, §III-B-2) generates the `T` trial hash
//! functions as linear congruential transforms of the canonical k-mer rank
//! `x`, with constants `A_t`, `B_t`, `P_t` "randomly generated a priori".
//! We fix `P_t` to the Mersenne prime `2^61 − 1` (large enough for any
//! `k ≤ 30` rank universe, and `mod` reduces to cheap shift/add) and draw
//! `A_t ∈ [1, P)`, `B_t ∈ [0, P)` from a seeded xorshift generator so the
//! family is fully reproducible.

/// The Mersenne prime `2^61 − 1` used as the default modulus.
pub const MERSENNE_P61: u64 = (1u64 << 61) - 1;

/// One linear-congruential hash function over `Z_P`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LcgHash {
    /// Multiplier `A_t ∈ [1, P)`.
    pub a: u64,
    /// Offset `B_t ∈ [0, P)`.
    pub b: u64,
    /// Prime modulus `P_t`.
    pub p: u64,
}

impl LcgHash {
    /// Construct a hash; panics on degenerate parameters.
    pub fn new(a: u64, b: u64, p: u64) -> Self {
        assert!(p > 1, "modulus must exceed 1");
        assert!(a >= 1 && a < p, "multiplier must lie in [1, P)");
        assert!(b < p, "offset must lie in [0, P)");
        LcgHash { a, b, p }
    }

    /// Evaluate `h(x) = (A·x + B) mod P` with 128-bit intermediates.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let v = (self.a as u128) * (x as u128) + (self.b as u128);
        (v % (self.p as u128)) as u64
    }
}

/// A family of `T` independent LCG hash functions (one per MinHash trial).
#[derive(Clone, Debug)]
pub struct HashFamily {
    fns: Vec<LcgHash>,
    seed: u64,
}

impl HashFamily {
    /// Generate `t` hash functions deterministically from `seed`.
    ///
    /// Uses a splitmix64/xorshift sequence, so identical `(t, seed)` pairs
    /// produce identical families across processes — required for the
    /// distributed driver, where every rank must sketch with the same family.
    pub fn generate(t: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || -> u64 {
            // splitmix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let fns = (0..t)
            .map(|_| {
                let a = 1 + next() % (MERSENNE_P61 - 1);
                let b = next() % MERSENNE_P61;
                LcgHash::new(a, b, MERSENNE_P61)
            })
            .collect();
        HashFamily { fns, seed }
    }

    /// Number of trials `T`.
    #[inline]
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True if the family holds no hash functions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }

    /// The seed this family was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `t`-th hash function.
    #[inline]
    pub fn get(&self, t: usize) -> &LcgHash {
        &self.fns[t]
    }

    /// Iterate over all hash functions with their trial index.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LcgHash)> {
        self.fns.iter().enumerate()
    }

    /// Evaluate trial `t` on `x`.
    #[inline]
    pub fn hash(&self, t: usize, x: u64) -> u64 {
        self.fns[t].hash(x)
    }

    /// Restrict to the first `t` trials (for trial-sweep experiments).
    pub fn truncated(&self, t: usize) -> HashFamily {
        assert!(
            t <= self.fns.len(),
            "cannot truncate {} trials to {t}",
            self.fns.len()
        );
        HashFamily {
            fns: self.fns[..t].to_vec(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let f1 = HashFamily::generate(30, 42);
        let f2 = HashFamily::generate(30, 42);
        assert_eq!(f1.len(), 30);
        for t in 0..30 {
            assert_eq!(f1.get(t), f2.get(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let f1 = HashFamily::generate(10, 1);
        let f2 = HashFamily::generate(10, 2);
        assert!((0..10).any(|t| f1.get(t) != f2.get(t)));
    }

    #[test]
    fn trials_are_distinct() {
        let f = HashFamily::generate(100, 7);
        for t in 1..100 {
            assert_ne!(f.get(t - 1), f.get(t), "adjacent trials must differ");
        }
    }

    #[test]
    fn hash_respects_modulus() {
        let f = HashFamily::generate(5, 3);
        for t in 0..5 {
            for x in [0u64, 1, 17, u32::MAX as u64, (1 << 32) - 1] {
                assert!(f.hash(t, x) < MERSENNE_P61);
            }
        }
    }

    #[test]
    fn hash_is_injective_like_on_small_domain() {
        // An LCG over a prime modulus is a bijection of Z_P, so distinct
        // 16-mer ranks (< 2^32 << P) never collide.
        let h = HashFamily::generate(1, 9);
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..2000 {
            assert!(seen.insert(h.hash(0, x)), "collision at {x}");
        }
    }

    #[test]
    fn minwise_probability_approximates_uniform() {
        // Over an *unstructured* item set, each of n items should be the
        // minimum under a random trial with probability ~1/n. (A linear
        // family is only 2-universal, not min-wise independent: structured
        // sets such as arithmetic progressions measurably bias their extreme
        // elements. The paper's tool uses the same family; the sketches only
        // need approximate min-wise behaviour on k-mer-code sets, which are
        // unstructured in practice.)
        let n = 16usize;
        let trials = 4000;
        let f = HashFamily::generate(trials, 1234);
        // splitmix-style scrambled items
        let items: Vec<u64> = (0..n as u64)
            .map(|x| {
                let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 31)
            })
            .collect();
        let mut wins = vec![0usize; n];
        for t in 0..trials {
            let argmin = (0..n).min_by_key(|&i| f.hash(t, items[i])).unwrap();
            wins[argmin] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (x, &w) in wins.iter().enumerate() {
            let dev = (w as f64 - expect).abs() / expect;
            assert!(dev < 0.6, "item {x} won {w} times, expected ~{expect}");
        }
    }

    #[test]
    fn truncation_preserves_prefix() {
        let f = HashFamily::generate(30, 5);
        let g = f.truncated(10);
        assert_eq!(g.len(), 10);
        for t in 0..10 {
            assert_eq!(f.get(t), g.get(t));
        }
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn over_truncation_panics() {
        HashFamily::generate(5, 0).truncated(6);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn zero_multiplier_rejected() {
        LcgHash::new(0, 1, 97);
    }
}
