//! The LCG hash family `h_t(x) = (A_t·x + B_t) mod P_t`.
//!
//! The paper (implementation notes, §III-B-2) generates the `T` trial hash
//! functions as linear congruential transforms of the canonical k-mer rank
//! `x`, with constants `A_t`, `B_t`, `P_t` "randomly generated a priori".
//! We fix `P_t` to the Mersenne prime `2^61 − 1` (large enough for any
//! `k ≤ 30` rank universe, and `mod` reduces to cheap shift/add — see
//! [`reduce_p61`]) and draw `A_t ∈ [1, P)`, `B_t ∈ [0, P)` from a seeded
//! xorshift generator so the family is fully reproducible.
//!
//! The family stores its coefficients in two flat arrays (`A` and `B` side
//! by side) so the hot path — evaluating *all* `T` trials on one k-mer code
//! — is a single linear pass over contiguous memory with no division:
//! [`HashFamily::hash_all_into`].

/// The Mersenne prime `2^61 − 1` used as the default modulus.
pub const MERSENNE_P61: u64 = (1u64 << 61) - 1;

/// Lane width of the fixed-size chunks the batched hash kernels iterate in.
///
/// Eight `u64` lanes span two AVX2 registers (or four SSE2 ones); the chunk
/// loops are written over `[u64; LANES]` arrays with no early exits so LLVM
/// unrolls and autovectorizes them on stable Rust.
pub const LANES: usize = 8;

/// Fold a partial sum `s < 2^63` into `[0, P)` for `P = 2^61 − 1`.
///
/// `s >> 61` is at most 3, so one fold plus a single conditional subtract
/// (written branchless so it vectorizes as a compare/select) is exact.
#[inline(always)]
fn p61_fold_63(s: u64) -> u64 {
    let f = (s & MERSENNE_P61) + (s >> 61); // ≤ P + 2
    f - (MERSENNE_P61 & (u64::from(f >= MERSENNE_P61).wrapping_neg()))
}

/// Evaluate `(a·x + b) mod (2^61 − 1)` for `x < 2^32` without u128 products.
///
/// The multiplier splits as `a = a_hi·2^32 + a_lo` with `a_hi < 2^29` (since
/// `a < P < 2^61`), so both partial products fit `u64`:
/// `m1 = a_hi·x < 2^61`, `m0 = a_lo·x < 2^64`. Using `2^61 ≡ 1 (mod P)`:
///
/// ```text
/// a·x + b = m1·2^32 + m0 + b
///         ≡ (m1 >> 29) + ((m1 & (2^29−1)) << 32)   // m1·2^32, folded
///         + (m0 >> 61) + (m0 & P)                  // m0, folded
///         + b                               (mod P)
/// ```
///
/// Every summand is < 2^61, the total is < 2^63, and [`p61_fold_63`]
/// finishes the reduction — the mathematically identical residue to
/// [`reduce_p61`] of the u128 product, hence byte-identical sketches. All
/// operations are 32×32→64 multiplies, shifts, masks and adds, which is
/// precisely the set SSE2/AVX2 provide for 64-bit lanes.
#[inline(always)]
fn hash32_one(a: u64, b: u64, x: u64) -> u64 {
    debug_assert!(x <= u64::from(u32::MAX));
    let a_hi = a >> 32;
    let a_lo = a & 0xFFFF_FFFF;
    let m1 = a_hi * x;
    let m0 = a_lo * x;
    let s = (m1 >> 29) + ((m1 & ((1u64 << 29) - 1)) << 32) + (m0 >> 61) + (m0 & MERSENNE_P61) + b;
    p61_fold_63(s)
}

/// Scalar u128 evaluation for codes that may exceed 2^32 (`k > 16`).
#[inline(always)]
fn hash_wide_one(a: u64, b: u64, x: u64) -> u64 {
    reduce_p61(u128::from(a) * u128::from(x) + u128::from(b))
}

/// Reduce `v` modulo the Mersenne prime `P = 2^61 − 1` with shifts and adds.
///
/// Because `2^61 ≡ 1 (mod P)`, any `v = hi·2^61 + lo` satisfies
/// `v ≡ hi + lo (mod P)`; folding twice brings the value under `2^61 + 16`,
/// and one conditional subtract lands it in `[0, P)`. Exact for every
/// `v < 2^125`, which covers the largest product the family can form
/// (`(P−1)·u64::MAX + (P−1) < 2^125`).
#[inline]
pub fn reduce_p61(v: u128) -> u64 {
    const P: u64 = MERSENNE_P61;
    // First fold: (v & P) < 2^61 and (v >> 61) < 2^64, so the sum < 2^65.
    let folded = (v & u128::from(P)) + (v >> 61);
    // Second fold: now (folded >> 61) < 16, so the sum fits u64 easily.
    let folded = (folded as u64 & P) + (folded >> 61) as u64;
    if folded >= P {
        folded - P
    } else {
        folded
    }
}

/// One trial over a block of codes: the portable lane loop.
///
/// Iterates `LANES`-wide fixed-size chunks; each chunk first checks (with a
/// branch-free OR-fold) that every code fits 32 bits — always true for
/// `k ≤ 16`, the paper's default — and takes the vectorizable 32-bit-split
/// path, falling back to scalar u128 arithmetic otherwise. `#[inline(always)]`
/// so the `simd`-feature AVX2 wrapper recompiles this exact body with wider
/// registers enabled (same arithmetic → byte-identical output).
#[inline(always)]
fn hash_codes_kernel(a: u64, b: u64, codes: &[u64], out: &mut [u64]) {
    debug_assert_eq!(codes.len(), out.len());
    let mut xs_chunks = codes.chunks_exact(LANES);
    let mut out_chunks = out.chunks_exact_mut(LANES);
    for (xs, os) in (&mut xs_chunks).zip(&mut out_chunks) {
        let xs: &[u64; LANES] = xs.try_into().expect("exact chunk");
        let os: &mut [u64; LANES] = os.try_into().expect("exact chunk");
        let mut or_fold = 0u64;
        for &x in xs.iter() {
            or_fold |= x;
        }
        if or_fold >> 32 == 0 {
            for i in 0..LANES {
                os[i] = hash32_one(a, b, xs[i]);
            }
        } else {
            for i in 0..LANES {
                os[i] = hash_wide_one(a, b, xs[i]);
            }
        }
    }
    for (&x, o) in xs_chunks
        .remainder()
        .iter()
        .zip(out_chunks.into_remainder())
    {
        *o = hash_wide_one(a, b, x);
    }
}

/// All trials on one code: lanes run over the SoA coefficient arrays.
#[inline(always)]
fn hash_all_kernel(a: &[u64], b: &[u64], x: u64, out: &mut [u64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    let mut out_chunks = out.chunks_exact_mut(LANES);
    if x >> 32 == 0 {
        for ((aa, bb), os) in (&mut a_chunks).zip(&mut b_chunks).zip(&mut out_chunks) {
            let aa: &[u64; LANES] = aa.try_into().expect("exact chunk");
            let bb: &[u64; LANES] = bb.try_into().expect("exact chunk");
            let os: &mut [u64; LANES] = os.try_into().expect("exact chunk");
            for i in 0..LANES {
                os[i] = hash32_one(aa[i], bb[i], x);
            }
        }
    } else {
        for ((aa, bb), os) in (&mut a_chunks).zip(&mut b_chunks).zip(&mut out_chunks) {
            for i in 0..LANES {
                os[i] = hash_wide_one(aa[i], bb[i], x);
            }
        }
    }
    for ((&aa, &bb), o) in a_chunks
        .remainder()
        .iter()
        .zip(b_chunks.remainder())
        .zip(out_chunks.into_remainder())
    {
        *o = hash_wide_one(aa, bb, x);
    }
}

/// Runtime-dispatched AVX2 versions of the lane kernels, enabled by the
/// `simd` cargo feature. Each wrapper recompiles the *same* portable kernel
/// body under `target_feature(enable = "avx2")` — identical arithmetic, so
/// the output is byte-identical to the fallback; only the instruction
/// selection differs. `unsafe fn` form is required at the crate's MSRV
/// (safe `#[target_feature]` needs a newer toolchain); the only safety
/// obligation is the CPU check, done once at the call site.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod simd {
    /// Does this CPU support AVX2? (cached by std's feature detection)
    #[inline]
    pub fn have_avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 ([`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_codes_avx2(a: u64, b: u64, codes: &[u64], out: &mut [u64]) {
        super::hash_codes_kernel(a, b, codes, out);
    }

    /// # Safety
    /// Caller must ensure the CPU supports AVX2 ([`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_all_avx2(a: &[u64], b: &[u64], x: u64, out: &mut [u64]) {
        super::hash_all_kernel(a, b, x, out);
    }
}

/// Dispatch one-trial/many-codes to the best available kernel.
#[inline]
fn hash_codes_dispatch(a: u64, b: u64, codes: &[u64], out: &mut [u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::have_avx2() {
        // SAFETY: AVX2 presence verified at runtime just above.
        #[allow(unsafe_code)]
        unsafe {
            simd::hash_codes_avx2(a, b, codes, out)
        };
        return;
    }
    hash_codes_kernel(a, b, codes, out);
}

/// Dispatch all-trials/one-code to the best available kernel.
#[inline]
fn hash_all_dispatch(a: &[u64], b: &[u64], x: u64, out: &mut [u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::have_avx2() {
        // SAFETY: AVX2 presence verified at runtime just above.
        #[allow(unsafe_code)]
        unsafe {
            simd::hash_all_avx2(a, b, x, out)
        };
        return;
    }
    hash_all_kernel(a, b, x, out);
}

/// One linear-congruential hash function over `Z_P`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LcgHash {
    /// Multiplier `A_t ∈ [1, P)`.
    pub a: u64,
    /// Offset `B_t ∈ [0, P)`.
    pub b: u64,
    /// Prime modulus `P_t`.
    pub p: u64,
}

impl LcgHash {
    /// Construct a hash; panics on degenerate parameters.
    pub fn new(a: u64, b: u64, p: u64) -> Self {
        assert!(p > 1, "modulus must exceed 1");
        assert!(a >= 1 && a < p, "multiplier must lie in [1, P)");
        assert!(b < p, "offset must lie in [0, P)");
        LcgHash { a, b, p }
    }

    /// Evaluate `h(x) = (A·x + B) mod P` with 128-bit intermediates.
    ///
    /// The Mersenne modulus takes the shift/add fast path ([`reduce_p61`]);
    /// any other prime falls back to the generic 128-bit `%`. Both produce
    /// the mathematically identical residue.
    #[inline]
    pub fn hash(&self, x: u64) -> u64 {
        let v = (self.a as u128) * (x as u128) + (self.b as u128);
        if self.p == MERSENNE_P61 {
            reduce_p61(v)
        } else {
            (v % (self.p as u128)) as u64
        }
    }
}

/// A family of `T` independent LCG hash functions (one per MinHash trial),
/// all over the Mersenne modulus `2^61 − 1`, with coefficients stored in
/// flat struct-of-arrays form for the batched evaluation path.
#[derive(Clone, Debug)]
pub struct HashFamily {
    a: Vec<u64>,
    b: Vec<u64>,
    seed: u64,
}

impl HashFamily {
    /// Generate `t` hash functions deterministically from `seed`.
    ///
    /// Uses a splitmix64/xorshift sequence, so identical `(t, seed)` pairs
    /// produce identical families across processes — required for the
    /// distributed driver, where every rank must sketch with the same family.
    pub fn generate(t: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || -> u64 {
            // splitmix64
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut a = Vec::with_capacity(t);
        let mut b = Vec::with_capacity(t);
        for _ in 0..t {
            a.push(1 + next() % (MERSENNE_P61 - 1));
            b.push(next() % MERSENNE_P61);
        }
        HashFamily { a, b, seed }
    }

    /// Number of trials `T`.
    #[inline]
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// True if the family holds no hash functions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// The seed this family was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `t`-th hash function.
    #[inline]
    pub fn get(&self, t: usize) -> LcgHash {
        LcgHash {
            a: self.a[t],
            b: self.b[t],
            p: MERSENNE_P61,
        }
    }

    /// Iterate over all hash functions with their trial index.
    pub fn iter(&self) -> impl Iterator<Item = (usize, LcgHash)> + '_ {
        (0..self.len()).map(|t| (t, self.get(t)))
    }

    /// Evaluate trial `t` on `x`.
    #[inline]
    pub fn hash(&self, t: usize, x: u64) -> u64 {
        reduce_p61((self.a[t] as u128) * (x as u128) + (self.b[t] as u128))
    }

    /// Evaluate *all* `T` trials on `x` in one batched pass.
    ///
    /// `out` is resized to `T`; `out[t]` receives `h_t(x)`. Delegates to
    /// [`hash_all_lanes`](Self::hash_all_lanes), the lane-parallel sweep.
    #[inline]
    pub fn hash_all_into(&self, x: u64, out: &mut Vec<u64>) {
        self.hash_all_lanes(x, out);
    }

    /// Lane-parallel evaluation of all `T` trials on one code.
    ///
    /// Sweeps the SoA `A`/`B` arrays in [`LANES`]-wide chunks; for
    /// `x < 2^32` (every `k ≤ 16` code) the inner step is the 32-bit-split
    /// reduction of [`hash32_one`], which autovectorizes (and takes an AVX2
    /// `target_feature` path under the `simd` cargo feature). Byte-identical
    /// to calling [`hash`](Self::hash) per trial on every input.
    #[inline]
    pub fn hash_all_lanes(&self, x: u64, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.a.len(), 0);
        hash_all_dispatch(&self.a, &self.b, x, out);
    }

    /// Evaluate trial `t` on a whole block of codes: `out[i] = h_t(codes[i])`.
    ///
    /// The selection kernel's batched form — coefficients broadcast, lanes
    /// run across the code array. `out` is resized to `codes.len()`.
    /// Byte-identical to calling [`hash`](Self::hash) per code.
    #[inline]
    pub fn hash_codes_into(&self, t: usize, codes: &[u64], out: &mut Vec<u64>) {
        // Only adjust the length when it changes: across a trial-major loop
        // the buffer is already the right size, and the kernel overwrites
        // every slot, so a re-zeroing resize would be a wasted memset.
        if out.len() != codes.len() {
            out.clear();
            out.resize(codes.len(), 0);
        }
        hash_codes_dispatch(self.a[t], self.b[t], codes, out);
    }

    /// Restrict to the first `t` trials (for trial-sweep experiments).
    pub fn truncated(&self, t: usize) -> HashFamily {
        assert!(
            t <= self.len(),
            "cannot truncate {} trials to {t}",
            self.len()
        );
        HashFamily {
            a: self.a[..t].to_vec(),
            b: self.b[..t].to_vec(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let f1 = HashFamily::generate(30, 42);
        let f2 = HashFamily::generate(30, 42);
        assert_eq!(f1.len(), 30);
        for t in 0..30 {
            assert_eq!(f1.get(t), f2.get(t));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let f1 = HashFamily::generate(10, 1);
        let f2 = HashFamily::generate(10, 2);
        assert!((0..10).any(|t| f1.get(t) != f2.get(t)));
    }

    #[test]
    fn trials_are_distinct() {
        let f = HashFamily::generate(100, 7);
        for t in 1..100 {
            assert_ne!(f.get(t - 1), f.get(t), "adjacent trials must differ");
        }
    }

    #[test]
    fn hash_respects_modulus() {
        let f = HashFamily::generate(5, 3);
        for t in 0..5 {
            for x in [0u64, 1, 17, u32::MAX as u64, (1 << 32) - 1] {
                assert!(f.hash(t, x) < MERSENNE_P61);
            }
        }
    }

    #[test]
    fn fast_reduction_matches_generic_modulo() {
        // reduce_p61 must equal the 128-bit `%` on every reachable product,
        // including the adversarial corners of both x and the coefficients.
        let p = MERSENNE_P61;
        let xs = [0u64, 1, p - 1, p, p + 1, u64::MAX];
        let coeffs = [1u64, 2, p / 2, p - 1];
        for &a in &coeffs {
            for &b in &[0u64, 1, p - 1] {
                for &x in &xs {
                    let v = (a as u128) * (x as u128) + (b as u128);
                    assert_eq!(reduce_p61(v), (v % (p as u128)) as u64, "a={a} b={b} x={x}");
                }
            }
        }
    }

    #[test]
    fn fast_path_matches_generic_lcg() {
        // LcgHash::hash takes the shift/add path iff p is the Mersenne
        // prime; both paths must agree there.
        let h = LcgHash::new(123_456_789, 987_654_321, MERSENNE_P61);
        for x in [0u64, 1, 7, u32::MAX as u64, u64::MAX] {
            let v = (h.a as u128) * (x as u128) + (h.b as u128);
            assert_eq!(h.hash(x), (v % (h.p as u128)) as u64);
        }
    }

    #[test]
    fn non_mersenne_modulus_still_supported() {
        let h = LcgHash::new(5, 3, 97);
        assert_eq!(h.hash(10), 5 * 10 + 3);
        assert!(h.hash(u64::MAX) < 97);
    }

    #[test]
    fn batched_evaluation_matches_per_trial() {
        let f = HashFamily::generate(30, 11);
        let mut out = Vec::new();
        for x in [0u64, 1, 42, MERSENNE_P61, u64::MAX] {
            f.hash_all_into(x, &mut out);
            assert_eq!(out.len(), 30);
            for (t, &got) in out.iter().enumerate() {
                assert_eq!(got, f.hash(t, x), "trial {t} x={x}");
                assert_eq!(got, f.get(t).hash(x), "scalar path trial {t} x={x}");
            }
        }
    }

    #[test]
    fn split_path_matches_u128_reduction_on_corners() {
        // The 32-bit-split lane arithmetic must equal reduce_p61 of the full
        // u128 product for every x < 2^32, across adversarial coefficients.
        let p = MERSENNE_P61;
        let coeffs_a = [
            1u64,
            2,
            (1 << 29) - 1,
            1 << 29,
            (1 << 32) - 1,
            1 << 32,
            p / 2,
            p - 1,
        ];
        let coeffs_b = [0u64, 1, (1 << 32) - 1, p - 1];
        let xs = [0u64, 1, 2, 0xFFFF, 0xFFFF_FFFE, 0xFFFF_FFFF];
        for &a in &coeffs_a {
            for &b in &coeffs_b {
                for &x in &xs {
                    let expect = reduce_p61(u128::from(a) * u128::from(x) + u128::from(b));
                    assert_eq!(hash32_one(a, b, x), expect, "a={a} b={b} x={x}");
                }
            }
        }
    }

    #[test]
    fn hash_codes_into_matches_per_code() {
        let f = HashFamily::generate(30, 17);
        // Mixed block: small codes (k<=16), large codes (k>16), ragged tail.
        let mut codes: Vec<u64> = (0..100u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> if i % 3 == 0 { 0 } else { 33 })
            .collect();
        codes.push(u64::MAX);
        codes.push(0);
        let mut out = Vec::new();
        for t in [0usize, 7, 29] {
            f.hash_codes_into(t, &codes, &mut out);
            assert_eq!(out.len(), codes.len());
            for (i, &x) in codes.iter().enumerate() {
                assert_eq!(out[i], f.hash(t, x), "t={t} i={i} x={x}");
            }
        }
        // Blocks shorter than one lane chunk go through the remainder path.
        f.hash_codes_into(0, &codes[..3], &mut out);
        assert_eq!(out.len(), 3);
        for (i, &x) in codes[..3].iter().enumerate() {
            assert_eq!(out[i], f.hash(0, x));
        }
        f.hash_codes_into(0, &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hash_all_lanes_matches_per_trial() {
        // T = 30 exercises 3 full lane chunks + a remainder of 6.
        let f = HashFamily::generate(30, 23);
        let mut out = Vec::new();
        for x in [0u64, 1, 42, (1 << 32) - 1, 1 << 32, MERSENNE_P61, u64::MAX] {
            f.hash_all_lanes(x, &mut out);
            assert_eq!(out.len(), 30);
            for (t, &got) in out.iter().enumerate() {
                assert_eq!(got, f.hash(t, x), "trial {t} x={x}");
            }
        }
    }

    #[test]
    fn hash_is_injective_like_on_small_domain() {
        // An LCG over a prime modulus is a bijection of Z_P, so distinct
        // 16-mer ranks (< 2^32 << P) never collide.
        let h = HashFamily::generate(1, 9);
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..2000 {
            assert!(seen.insert(h.hash(0, x)), "collision at {x}");
        }
    }

    #[test]
    fn minwise_probability_approximates_uniform() {
        // Over an *unstructured* item set, each of n items should be the
        // minimum under a random trial with probability ~1/n. (A linear
        // family is only 2-universal, not min-wise independent: structured
        // sets such as arithmetic progressions measurably bias their extreme
        // elements. The paper's tool uses the same family; the sketches only
        // need approximate min-wise behaviour on k-mer-code sets, which are
        // unstructured in practice.)
        let n = 16usize;
        let trials = 4000;
        let f = HashFamily::generate(trials, 1234);
        // splitmix-style scrambled items
        let items: Vec<u64> = (0..n as u64)
            .map(|x| {
                let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^ (z >> 31)
            })
            .collect();
        let mut wins = vec![0usize; n];
        for t in 0..trials {
            let argmin = (0..n).min_by_key(|&i| f.hash(t, items[i])).unwrap();
            wins[argmin] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (x, &w) in wins.iter().enumerate() {
            let dev = (w as f64 - expect).abs() / expect;
            assert!(dev < 0.6, "item {x} won {w} times, expected ~{expect}");
        }
    }

    #[test]
    fn truncation_preserves_prefix() {
        let f = HashFamily::generate(30, 5);
        let g = f.truncated(10);
        assert_eq!(g.len(), 10);
        for t in 0..10 {
            assert_eq!(f.get(t), g.get(t));
        }
    }

    #[test]
    #[should_panic(expected = "cannot truncate")]
    fn over_truncation_panics() {
        HashFamily::generate(5, 0).truncated(6);
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn zero_multiplier_rejected() {
        LcgHash::new(0, 1, 97);
    }
}
