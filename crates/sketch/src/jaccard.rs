//! Jaccard similarity: exact, minimizer-estimated, and MinHash-estimated.
//!
//! `J(A,B) = |A∩B| / |A∪B|`; the minimizer Jaccard estimate of the paper is
//! `J_m(A,B;w) = J(M(A,w), M(B,w))` where `M(·,w)` is the minimizer sketch
//! (set of minimizer k-mers).

use crate::hash::HashFamily;
use crate::minhash::classic_minhash_set;
use crate::minimizer::{minimizers, MinimizerParams};
use jem_seq::CanonicalKmerIter;
use std::collections::HashSet;

/// The set of canonical k-mer codes of a sequence.
pub fn kmer_set(seq: &[u8], k: usize) -> HashSet<u64> {
    match CanonicalKmerIter::new(seq, k) {
        Ok(it) => it.map(|(_, km)| km.code()).collect(),
        Err(_) => HashSet::new(),
    }
}

/// Exact Jaccard similarity of two u64 sets. Empty ∪ empty is defined as 0.
pub fn exact_jaccard(a: &HashSet<u64>, b: &HashSet<u64>) -> f64 {
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Exact Jaccard of the canonical k-mer sets of two sequences.
pub fn kmer_jaccard(a: &[u8], b: &[u8], k: usize) -> f64 {
    exact_jaccard(&kmer_set(a, k), &kmer_set(b, k))
}

/// The minimizer Jaccard estimate `J_m(A,B;w)` between two sequences.
pub fn minimizer_jaccard(a: &[u8], b: &[u8], params: MinimizerParams) -> f64 {
    let ma: HashSet<u64> = minimizers(a, params).iter().map(|m| m.code).collect();
    let mb: HashSet<u64> = minimizers(b, params).iter().map(|m| m.code).collect();
    exact_jaccard(&ma, &mb)
}

/// Broder's T-trial MinHash estimate of `J(A,B)` over u64 sets.
pub fn sketch_jaccard_estimate(a: &[u64], b: &[u64], family: &HashFamily) -> f64 {
    classic_minhash_set(a, family).collision_rate(&classic_minhash_set(b, family))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_seq(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .scan(seed, |s, _| {
                *s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                Some(b"ACGT"[((*s >> 33) % 4) as usize])
            })
            .collect()
    }

    #[test]
    fn exact_jaccard_basics() {
        let a: HashSet<u64> = [1, 2, 3, 4].into_iter().collect();
        let b: HashSet<u64> = [3, 4, 5, 6].into_iter().collect();
        assert!((exact_jaccard(&a, &b) - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(exact_jaccard(&a, &a), 1.0);
        let empty = HashSet::new();
        assert_eq!(exact_jaccard(&a, &empty), 0.0);
        assert_eq!(exact_jaccard(&empty, &empty), 0.0);
    }

    #[test]
    fn kmer_jaccard_identical_sequences() {
        let s = rng_seq(500, 3);
        assert_eq!(kmer_jaccard(&s, &s, 8), 1.0);
    }

    #[test]
    fn kmer_jaccard_strand_invariant() {
        let s = rng_seq(500, 4);
        let rc = jem_seq::alphabet::revcomp_bytes(&s);
        assert_eq!(
            kmer_jaccard(&s, &rc, 9),
            1.0,
            "canonical k-mers are strand-free"
        );
    }

    #[test]
    fn unrelated_sequences_low_jaccard() {
        let a = rng_seq(2000, 10);
        let b = rng_seq(2000, 20);
        assert!(kmer_jaccard(&a, &b, 12) < 0.01);
    }

    #[test]
    fn overlapping_sequences_graded_jaccard() {
        // b shares its first half with a: Jaccard must land strictly
        // between the unrelated and identical extremes, near 1/3.
        let a = rng_seq(4000, 30);
        let mut b = a[..2000].to_vec();
        b.extend(rng_seq(2000, 31));
        let j = kmer_jaccard(&a, &b, 12);
        assert!(j > 0.2 && j < 0.5, "jaccard {j} out of expected band");
    }

    #[test]
    fn minimizer_jaccard_tracks_kmer_jaccard() {
        let a = rng_seq(4000, 50);
        let mut b = a[..3000].to_vec();
        b.extend(rng_seq(1000, 51));
        let p = MinimizerParams::new(12, 10).unwrap();
        let jm = minimizer_jaccard(&a, &b, p);
        let jk = kmer_jaccard(&a, &b, 12);
        // The minimizer estimate is biased (Belbasi et al. 2022) but must
        // land in the same qualitative band.
        assert!((jm - jk).abs() < 0.25, "J_m={jm} vs J={jk}");
        assert_eq!(minimizer_jaccard(&a, &a, p), 1.0);
    }

    #[test]
    fn minhash_estimate_converges() {
        let a: Vec<u64> = (0..200).collect();
        let b: Vec<u64> = (100..300).collect();
        // True J = 100/300 = 1/3.
        let f = HashFamily::generate(800, 17);
        let est = sketch_jaccard_estimate(&a, &b, &f);
        assert!((est - 1.0 / 3.0).abs() < 0.07, "estimate {est}");
    }
}
