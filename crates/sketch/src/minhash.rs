//! Classical Broder MinHash sketches.
//!
//! For each trial `t ∈ [1, T]`, the sketch of a set is the element with the
//! smallest value under hash function `h_t`; the paper's classical-MinHash
//! comparator (Fig. 6) applies this to the set of all canonical k-mers of a
//! sequence and stores the winning *k-mer code* (so collisions can be looked
//! up in a table keyed by k-mer).

use crate::hash::HashFamily;
use jem_seq::CanonicalKmerIter;

/// A classical MinHash sketch: one winning k-mer code per trial.
///
/// `values[t] == None` when the input had no valid k-mers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassicSketch {
    /// Per-trial winning element (k-mer code), `None` if the set was empty.
    pub values: Vec<Option<u64>>,
}

impl ClassicSketch {
    /// Number of trials `T`.
    pub fn trials(&self) -> usize {
        self.values.len()
    }

    /// Fraction of trials on which two sketches collide — the Broder
    /// estimator of the Jaccard similarity of the underlying sets.
    pub fn collision_rate(&self, other: &ClassicSketch) -> f64 {
        assert_eq!(self.trials(), other.trials(), "sketches must share T");
        if self.values.is_empty() {
            return 0.0;
        }
        let hits = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a.is_some() && a == b)
            .count();
        hits as f64 / self.values.len() as f64
    }
}

/// Classical MinHash of an arbitrary element set (u64-encoded items).
pub fn classic_minhash_set(items: &[u64], family: &HashFamily) -> ClassicSketch {
    let mut values = vec![None; family.len()];
    for (t, h) in family.iter() {
        let mut best: Option<(u64, u64)> = None; // (hash, item)
        for &x in items {
            let hv = h.hash(x);
            // Tie-break on the item itself for determinism.
            if best.is_none_or(|(bh, bx)| (hv, x) < (bh, bx)) {
                best = Some((hv, x));
            }
        }
        values[t] = best.map(|(_, x)| x);
    }
    ClassicSketch { values }
}

/// Classical MinHash over all canonical k-mers of a sequence.
///
/// Single pass over the sequence per call; all `T` trials are folded into
/// the same pass so the sequence is decoded once.
pub fn classic_minhash_seq(seq: &[u8], k: usize, family: &HashFamily) -> ClassicSketch {
    let mut best: Vec<Option<(u64, u64)>> = vec![None; family.len()];
    if let Ok(iter) = CanonicalKmerIter::new(seq, k) {
        for (_, kmer) in iter {
            let x = kmer.code();
            for (t, h) in family.iter() {
                let hv = h.hash(x);
                if best[t].is_none_or(|(bh, bx)| (hv, x) < (bh, bx)) {
                    best[t] = Some((hv, x));
                }
            }
        }
    }
    ClassicSketch {
        values: best.into_iter().map(|b| b.map(|(_, x)| x)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_gives_none() {
        let f = HashFamily::generate(4, 1);
        let s = classic_minhash_set(&[], &f);
        assert!(s.values.iter().all(Option::is_none));
        assert_eq!(s.trials(), 4);
    }

    #[test]
    fn identical_sets_always_collide() {
        let f = HashFamily::generate(32, 7);
        let items = [3u64, 17, 99, 1024];
        let a = classic_minhash_set(&items, &f);
        let b = classic_minhash_set(&items, &f);
        assert_eq!(a.collision_rate(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_rarely_collide() {
        let f = HashFamily::generate(64, 11);
        let a: Vec<u64> = (0..50).collect();
        let b: Vec<u64> = (1000..1050).collect();
        let sa = classic_minhash_set(&a, &f);
        let sb = classic_minhash_set(&b, &f);
        assert_eq!(
            sa.collision_rate(&sb),
            0.0,
            "disjoint sets cannot share a minimum"
        );
    }

    #[test]
    fn collision_rate_estimates_jaccard() {
        // |A ∩ B| / |A ∪ B| = 50 / 150 = 1/3; estimator should be close.
        let a: Vec<u64> = (0..100).collect();
        let b: Vec<u64> = (50..150).collect();
        let f = HashFamily::generate(600, 23);
        let est = classic_minhash_set(&a, &f).collision_rate(&classic_minhash_set(&b, &f));
        assert!(
            (est - 1.0 / 3.0).abs() < 0.08,
            "estimate {est} too far from 1/3"
        );
    }

    #[test]
    fn seq_sketch_matches_set_sketch() {
        let seq = b"ACGGTTACGATTTACCAGTGGATCGAACGGTTAC";
        let k = 5;
        let f = HashFamily::generate(16, 3);
        let from_seq = classic_minhash_seq(seq, k, &f);
        let items: Vec<u64> = jem_seq::CanonicalKmerIter::new(seq, k)
            .unwrap()
            .map(|(_, km)| km.code())
            .collect();
        let from_set = classic_minhash_set(&items, &f);
        assert_eq!(from_seq, from_set);
    }

    #[test]
    fn seq_with_no_kmers() {
        let f = HashFamily::generate(4, 9);
        let s = classic_minhash_seq(b"NN", 5, &f);
        assert!(s.values.iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "must share T")]
    fn mismatched_trials_panics() {
        let f4 = HashFamily::generate(4, 1);
        let f8 = HashFamily::generate(8, 1);
        let a = classic_minhash_set(&[1], &f4);
        let b = classic_minhash_set(&[1], &f8);
        a.collision_rate(&b);
    }
}
