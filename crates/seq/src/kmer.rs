//! Fixed-size k-mers packed into `u64`, with rolling iteration.
//!
//! A k-mer over the 2-bit alphabet occupies `2k` bits, so any `k ≤ 32` fits
//! in a `u64`. The packed value of a k-mer *is* its rank in the lexicographic
//! ordering `Π*_k` of all `4^k` k-mers (see [`crate::alphabet`]), which the
//! sketching layer uses directly as hash-function input.

use crate::alphabet::{decode_base, encode_base};
use crate::error::SeqError;

/// Maximum supported k-mer size (2 bits/base in a `u64`).
pub const MAX_K: usize = 32;

/// A k-mer packed into a `u64` together with its length.
///
/// Ordering of `Kmer` values of equal `k` by their `code` is exactly
/// lexicographic ordering of the underlying strings.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    code: u64,
    k: u8,
}

impl Kmer {
    /// Build a k-mer from ASCII bytes. Fails on ambiguous bases or bad `k`.
    pub fn from_bytes(seq: &[u8]) -> Result<Self, SeqError> {
        let k = seq.len();
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        let mut code = 0u64;
        for (pos, &b) in seq.iter().enumerate() {
            let c = encode_base(b).ok_or(SeqError::InvalidBase { byte: b, pos })?;
            code = (code << 2) | u64::from(c);
        }
        Ok(Kmer { code, k: k as u8 })
    }

    /// Construct from an already-packed code. `code` must fit in `2k` bits.
    #[inline]
    pub fn from_code(code: u64, k: usize) -> Result<Self, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        if k < MAX_K && code >> (2 * k) != 0 {
            return Err(SeqError::InvalidParameter(format!(
                "code 0x{code:x} does not fit in {k}-mer"
            )));
        }
        Ok(Kmer { code, k: k as u8 })
    }

    /// The packed 2-bit code — also the k-mer's lexicographic rank in `Π*_k`.
    #[inline]
    pub fn code(&self) -> u64 {
        self.code
    }

    /// K-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// Reverse complement.
    #[inline]
    pub fn revcomp(&self) -> Kmer {
        Kmer {
            code: revcomp_code(self.code, self.k as usize),
            k: self.k,
        }
    }

    /// Canonical form: the lexicographically smaller of the k-mer and its
    /// reverse complement ("canonical minimizer" sense of the paper).
    #[inline]
    pub fn canonical(&self) -> Kmer {
        let rc = self.revcomp();
        if rc.code < self.code {
            rc
        } else {
            *self
        }
    }

    /// Is this k-mer its own canonical form?
    #[inline]
    pub fn is_canonical(&self) -> bool {
        self.code <= revcomp_code(self.code, self.k as usize)
    }

    /// Decode back into ASCII bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let k = self.k as usize;
        let mut out = vec![0u8; k];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (k - 1 - i);
            *slot = decode_base(((self.code >> shift) & 3) as u8);
        }
        out
    }
}

impl std::fmt::Debug for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Kmer({})", String::from_utf8_lossy(&self.to_bytes()))
    }
}

impl std::fmt::Display for Kmer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&String::from_utf8_lossy(&self.to_bytes()))
    }
}

/// Reverse complement of a packed `k`-mer code.
///
/// Complementing is `XOR` with all-ones over the `2k` used bits (because
/// `comp(c) = 3 - c = c ^ 3` in this encoding); reversal swaps 2-bit groups
/// with the classic log-step bit trick.
#[inline]
pub fn revcomp_code(code: u64, k: usize) -> u64 {
    debug_assert!((1..=MAX_K).contains(&k));
    let mut x = !code; // complement every 2-bit group (upper garbage masked later)
                       // Reverse 2-bit groups within the u64.
    x = (x >> 2 & 0x3333_3333_3333_3333) | (x & 0x3333_3333_3333_3333) << 2;
    x = (x >> 4 & 0x0F0F_0F0F_0F0F_0F0F) | (x & 0x0F0F_0F0F_0F0F_0F0F) << 4;
    x = x.swap_bytes();
    // The k-mer now occupies the top 2k bits; shift down and mask.
    x >> (64 - 2 * k)
}

/// Bit-mask selecting the low `2k` bits of a packed code.
#[inline]
pub fn kmer_mask(k: usize) -> u64 {
    if k >= 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

/// One step of the canonical rolling pair: push 2-bit code `c` into the
/// forward code and its complement into the high end of the reverse code.
///
/// `mask` is [`kmer_mask`]`(k)` and `rev_shift` is `2 * (k - 1)`. This is the
/// single rolling update shared by [`CanonicalKmerIter`] (per-byte scalar
/// path) and the branch-free block-run path in [`crate::block`]; keeping one
/// definition is what makes the two byte-identical by construction.
#[inline(always)]
pub fn roll_canonical(fwd: u64, rev: u64, c: u64, mask: u64, rev_shift: u32) -> (u64, u64) {
    (((fwd << 2) | c) & mask, (rev >> 2) | ((3 - c) << rev_shift))
}

/// Rolling iterator over all k-mers of a byte sequence, in order.
///
/// Windows containing an ambiguous base are skipped; iteration resumes at the
/// first window entirely past the offending byte. Yields `(position, kmer)`
/// where `position` is the 0-based start offset of the k-mer in the sequence.
pub struct KmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    /// Next byte index to consume.
    next: usize,
    /// Packed code of the last `filled` bases.
    code: u64,
    /// How many consecutive valid bases end at `next - 1`.
    filled: usize,
}

impl<'a> KmerIter<'a> {
    /// Create a k-mer iterator; `k` must be in `1..=32`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        Ok(KmerIter {
            seq,
            k,
            mask: kmer_mask(k),
            next: 0,
            code: 0,
            filled: 0,
        })
    }
}

impl Iterator for KmerIter<'_> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.seq.len() {
            let b = self.seq[self.next];
            self.next += 1;
            match encode_base(b) {
                Some(c) => {
                    self.code = ((self.code << 2) | u64::from(c)) & self.mask;
                    self.filled += 1;
                    if self.filled >= self.k {
                        let pos = self.next - self.k;
                        return Some((
                            pos,
                            Kmer {
                                code: self.code,
                                k: self.k as u8,
                            },
                        ));
                    }
                }
                None => {
                    // Ambiguous base breaks the run; restart after it.
                    self.code = 0;
                    self.filled = 0;
                }
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.seq.len() - self.next;
        // At most one k-mer per remaining byte plus one pending.
        (0, Some(remaining + 1))
    }
}

/// Rolling iterator over *canonical* k-mers: yields `(position, canonical)`.
///
/// Maintains the forward and reverse-complement codes simultaneously so each
/// step is O(1) — no per-window revcomp recomputation.
pub struct CanonicalKmerIter<'a> {
    seq: &'a [u8],
    k: usize,
    mask: u64,
    next: usize,
    fwd: u64,
    rev: u64,
    filled: usize,
}

impl<'a> CanonicalKmerIter<'a> {
    /// Create a canonical k-mer iterator; `k` must be in `1..=32`.
    pub fn new(seq: &'a [u8], k: usize) -> Result<Self, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        Ok(CanonicalKmerIter {
            seq,
            k,
            mask: kmer_mask(k),
            next: 0,
            fwd: 0,
            rev: 0,
            filled: 0,
        })
    }
}

impl Iterator for CanonicalKmerIter<'_> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<Self::Item> {
        while self.next < self.seq.len() {
            let b = self.seq[self.next];
            self.next += 1;
            match encode_base(b) {
                Some(c) => {
                    let rev_shift = (2 * (self.k - 1)) as u32;
                    (self.fwd, self.rev) =
                        roll_canonical(self.fwd, self.rev, u64::from(c), self.mask, rev_shift);
                    self.filled += 1;
                    if self.filled >= self.k {
                        let pos = self.next - self.k;
                        let code = self.fwd.min(self.rev);
                        return Some((
                            pos,
                            Kmer {
                                code,
                                k: self.k as u8,
                            },
                        ));
                    }
                }
                None => {
                    self.fwd = 0;
                    self.rev = 0;
                    self.filled = 0;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for s in [
            &b"A"[..],
            b"ACGT",
            b"TTTT",
            b"GATTACA",
            b"ACGTACGTACGTACGTACGTACGTACGTACGT",
        ] {
            let k = Kmer::from_bytes(s).unwrap();
            assert_eq!(k.to_bytes(), s.to_vec());
            assert_eq!(k.k(), s.len());
        }
    }

    #[test]
    fn code_is_lexicographic_rank() {
        // AA=0, AC=1, AG=2, AT=3, CA=4 ... TT=15 (paper's Π*_2 example).
        let order = [
            "AA", "AC", "AG", "AT", "CA", "CC", "CG", "CT", "GA", "GC", "GG", "GT", "TA", "TC",
            "TG", "TT",
        ];
        for (rank, s) in order.iter().enumerate() {
            assert_eq!(
                Kmer::from_bytes(s.as_bytes()).unwrap().code(),
                rank as u64,
                "{s}"
            );
        }
    }

    #[test]
    fn rejects_bad_k_and_bases() {
        assert!(Kmer::from_bytes(b"").is_err());
        assert!(Kmer::from_bytes(&[b'A'; 33]).is_err());
        assert!(Kmer::from_bytes(b"ACNT").is_err());
        assert!(Kmer::from_code(4, 1).is_err()); // 1-mer codes are 0..=3
        assert!(Kmer::from_code(3, 1).is_ok());
    }

    #[test]
    fn revcomp_matches_string_revcomp() {
        for s in [
            &b"A"[..],
            b"AC",
            b"GATTACA",
            b"TTTTGGGG",
            b"ACGTACGTACGTACGTACGTACGTACGTACGT",
        ] {
            let k = Kmer::from_bytes(s).unwrap();
            let rc = crate::alphabet::revcomp_bytes(s);
            assert_eq!(k.revcomp().to_bytes(), rc, "{}", String::from_utf8_lossy(s));
        }
    }

    #[test]
    fn revcomp_involution() {
        let k = Kmer::from_bytes(b"ACCGTTGAGACCA").unwrap();
        assert_eq!(k.revcomp().revcomp(), k);
    }

    #[test]
    fn canonical_is_min_of_pair() {
        let k = Kmer::from_bytes(b"TTTT").unwrap();
        assert_eq!(k.canonical().to_bytes(), b"AAAA".to_vec());
        let palindromic = Kmer::from_bytes(b"ACGT").unwrap(); // own revcomp
        assert_eq!(palindromic.canonical(), palindromic);
        assert!(palindromic.is_canonical());
    }

    #[test]
    fn kmer_iter_positions_and_values() {
        let seq = b"ACGTA";
        let kmers: Vec<_> = KmerIter::new(seq, 3).unwrap().collect();
        assert_eq!(kmers.len(), 3);
        assert_eq!(kmers[0], (0, Kmer::from_bytes(b"ACG").unwrap()));
        assert_eq!(kmers[1], (1, Kmer::from_bytes(b"CGT").unwrap()));
        assert_eq!(kmers[2], (2, Kmer::from_bytes(b"GTA").unwrap()));
    }

    #[test]
    fn kmer_iter_skips_ambiguous_windows() {
        let seq = b"ACGNACGT";
        let kmers: Vec<_> = KmerIter::new(seq, 3).unwrap().collect();
        // Windows overlapping the N (positions 1..=3) are skipped.
        let positions: Vec<usize> = kmers.iter().map(|(p, _)| *p).collect();
        assert_eq!(positions, vec![0, 4, 5]);
        assert_eq!(kmers[1].1, Kmer::from_bytes(b"ACG").unwrap());
    }

    #[test]
    fn kmer_iter_short_sequence_yields_nothing() {
        assert_eq!(KmerIter::new(b"AC", 3).unwrap().count(), 0);
        assert_eq!(KmerIter::new(b"", 3).unwrap().count(), 0);
    }

    #[test]
    fn canonical_iter_matches_naive() {
        let seq = b"ACGGTTACGATTTACCAGTNGGATCGA";
        let k = 5;
        let naive: Vec<_> = KmerIter::new(seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.canonical()))
            .collect();
        let fast: Vec<_> = CanonicalKmerIter::new(seq, k).unwrap().collect();
        assert_eq!(naive, fast);
    }

    #[test]
    fn canonical_iter_strand_symmetric() {
        let seq = b"ACGGTTACGATTTACCAGTGGATCGA".to_vec();
        let rc = crate::alphabet::revcomp_bytes(&seq);
        let k = 7;
        let mut a: Vec<u64> = CanonicalKmerIter::new(&seq, k)
            .unwrap()
            .map(|(_, km)| km.code())
            .collect();
        let mut b: Vec<u64> = CanonicalKmerIter::new(&rc, k)
            .unwrap()
            .map(|(_, km)| km.code())
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "canonical k-mer multiset must be strand-invariant");
    }

    #[test]
    fn revcomp_code_k32_boundary() {
        let s = b"ACGTACGTACGTACGTACGTACGTACGTACGT"; // k = 32
        let k = Kmer::from_bytes(s).unwrap();
        assert_eq!(k.revcomp().to_bytes(), crate::alphabet::revcomp_bytes(s));
        assert_eq!(kmer_mask(32), u64::MAX);
    }
}
