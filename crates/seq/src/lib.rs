//! # jem-seq — DNA sequence substrate for JEM-Mapper
//!
//! This crate provides the low-level sequence machinery every other crate in
//! the workspace builds on:
//!
//! * [`alphabet`] — the 2-bit DNA alphabet (`A=0, C=1, G=2, T=3`), chosen so
//!   that numeric order of packed codes equals lexicographic order of the
//!   underlying strings (the paper's minimizer ordering and "canonical k-mer
//!   rank" both rely on lexicographic order).
//! * [`kmer`] — fixed-`k` k-mers packed into a `u64` (`k ≤ 32`), reverse
//!   complements, canonical forms, and rolling iteration over byte sequences.
//! * [`block`] — branch-free block 2-bit encoding: LUT-translated 32-base
//!   blocks packed into `u64` words with validity masks, split once into
//!   maximal valid runs for the sketching hot loops.
//! * [`packed`] — 2-bit packed sequences for memory-efficient storage of
//!   contigs and reads.
//! * [`record`] — named sequence records shared by the FASTA/FASTQ codecs.
//! * [`fasta`] / [`fastq`] — streaming parsers and writers.
//!
//! The crate is dependency-free and `forbid(unsafe_code)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod block;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod kmer;
pub mod packed;
pub mod record;

pub use alphabet::{complement_base, decode_base, encode_base, is_dna, revcomp_bytes};
pub use block::{BlockEncoded, Run, RunCodes};
pub use error::SeqError;
pub use fasta::{FastaReader, FastaWriter};
pub use fastq::{FastqReader, FastqWriter};
pub use kmer::{CanonicalKmerIter, Kmer, KmerIter};
pub use packed::PackedSeq;
pub use record::{FastqRecord, SeqRecord};
