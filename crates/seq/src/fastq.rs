//! Streaming FASTQ reader and writer (strict 4-line records).

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::error::SeqError;
use crate::record::{split_header, FastqRecord};

/// Streaming FASTQ parser over any `BufRead` source.
///
/// Accepts the common strict layout: `@header`, sequence line, `+`
/// separator (optionally repeating the header), quality line of the same
/// length as the sequence.
pub struct FastqReader<R: BufRead> {
    inner: R,
    line_no: u64,
    buf: String,
}

impl FastqReader<BufReader<File>> {
    /// Open a FASTQ file from disk.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SeqError> {
        Ok(FastqReader::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> FastqReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        FastqReader {
            inner,
            line_no: 0,
            buf: String::new(),
        }
    }

    /// Read all remaining records into a vector.
    pub fn read_all(self) -> Result<Vec<FastqRecord>, SeqError> {
        self.collect()
    }

    /// Read one line, trimmed of the trailing newline. `Ok(None)` at EOF.
    fn read_trimmed(&mut self) -> Result<Option<String>, SeqError> {
        loop {
            self.buf.clear();
            if self.inner.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let line = self.buf.trim_end_matches(['\n', '\r']);
            if !line.is_empty() {
                return Ok(Some(line.to_string()));
            }
            // Skip stray blank lines between records.
        }
    }

    fn format_err(&self, msg: impl Into<String>) -> SeqError {
        SeqError::Format {
            line: self.line_no,
            msg: msg.into(),
        }
    }

    fn next_record(&mut self) -> Result<Option<FastqRecord>, SeqError> {
        let header = match self.read_trimmed()? {
            None => return Ok(None),
            Some(h) => h,
        };
        let header = header
            .strip_prefix('@')
            .ok_or_else(|| self.format_err("expected '@' record header"))?
            .to_string();
        if header.trim().is_empty() {
            return Err(self.format_err("empty FASTQ header"));
        }
        let seq = self
            .read_trimmed()?
            .ok_or_else(|| self.format_err("truncated record: missing sequence line"))?;
        let plus = self
            .read_trimmed()?
            .ok_or_else(|| self.format_err("truncated record: missing '+' line"))?;
        if !plus.starts_with('+') {
            return Err(self.format_err("expected '+' separator line"));
        }
        let qual = self
            .read_trimmed()?
            .ok_or_else(|| self.format_err("truncated record: missing quality line"))?;
        if qual.len() != seq.len() {
            return Err(self.format_err(format!(
                "quality length {} != sequence length {}",
                qual.len(),
                seq.len()
            )));
        }
        let (id, desc) = split_header(&header);
        Ok(Some(FastqRecord {
            id,
            desc,
            seq: seq.into_bytes(),
            qual: qual.into_bytes(),
        }))
    }
}

impl<R: BufRead> Iterator for FastqReader<R> {
    type Item = Result<FastqRecord, SeqError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// FASTQ writer (strict 4-line records).
pub struct FastqWriter<W: Write> {
    inner: W,
}

impl FastqWriter<BufWriter<File>> {
    /// Create or truncate a FASTQ file on disk.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, SeqError> {
        Ok(FastqWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> FastqWriter<W> {
    /// Wrap a writer.
    pub fn new(inner: W) -> Self {
        FastqWriter { inner }
    }

    /// Write one record.
    ///
    /// Empty sequences are rejected: a zero-length read cannot be
    /// represented unambiguously in the 4-line layout (its blank sequence
    /// line is indistinguishable from stray blank lines that parsers skip).
    pub fn write_record(&mut self, rec: &FastqRecord) -> Result<(), SeqError> {
        debug_assert_eq!(rec.seq.len(), rec.qual.len());
        if rec.seq.is_empty() {
            return Err(SeqError::InvalidParameter(format!(
                "cannot write empty FASTQ record {:?}",
                rec.id
            )));
        }
        match &rec.desc {
            Some(d) => writeln!(self.inner, "@{} {}", rec.id, d)?,
            None => writeln!(self.inner, "@{}", rec.id)?,
        }
        self.inner.write_all(&rec.seq)?;
        writeln!(self.inner, "\n+")?;
        self.inner.write_all(&rec.qual)?;
        writeln!(self.inner)?;
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<(), SeqError> {
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<Vec<FastqRecord>, SeqError> {
        FastqReader::new(Cursor::new(s.as_bytes())).read_all()
    }

    #[test]
    fn single_record() {
        let recs = parse("@r1 hifi\nACGT\n+\nIIII\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].desc.as_deref(), Some("hifi"));
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[0].qual, b"IIII".to_vec());
    }

    #[test]
    fn plus_line_may_repeat_header() {
        let recs = parse("@r1\nAC\n+r1\nII\n").unwrap();
        assert_eq!(recs[0].seq, b"AC".to_vec());
    }

    #[test]
    fn multiple_records() {
        let recs = parse("@a\nA\n+\nI\n@b\nCC\n+\nJJ\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].id, "b");
    }

    #[test]
    fn quality_length_mismatch_is_error() {
        let err = parse("@a\nACGT\n+\nII\n").unwrap_err();
        assert!(err.to_string().contains("quality length"));
    }

    #[test]
    fn truncated_record_is_error() {
        assert!(parse("@a\nACGT\n+\n").is_err());
        assert!(parse("@a\nACGT\n").is_err());
        assert!(parse("@a\n").is_err());
    }

    #[test]
    fn missing_at_sign_is_error() {
        assert!(parse("r1\nACGT\n+\nIIII\n").is_err());
    }

    #[test]
    fn writer_reader_roundtrip() {
        let recs = vec![
            FastqRecord {
                id: "x".into(),
                desc: Some("d".into()),
                seq: b"ACGTACGT".to_vec(),
                qual: b"IIIIJJJJ".to_vec(),
            },
            FastqRecord::with_uniform_quality("y", b"TT".to_vec(), b'?'),
        ];
        let mut out = Vec::new();
        {
            let mut w = FastqWriter::new(&mut out);
            for r in &recs {
                w.write_record(r).unwrap();
            }
            w.flush().unwrap();
        }
        let back = FastqReader::new(Cursor::new(&out)).read_all().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_input() {
        assert!(parse("").unwrap().is_empty());
    }
}
