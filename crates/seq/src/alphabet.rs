//! The 2-bit DNA alphabet and base-level operations.
//!
//! Encoding is `A=0, C=1, G=2, T=3` (case-insensitive). Because the codes are
//! assigned in alphabetical order, the numeric value of a packed k-mer equals
//! its rank in the lexicographic ("canonical") ordering `Π*_k` of all k-mers —
//! the ordering the paper uses both for minimizer selection and as the domain
//! of the LCG hash family (`h_t(x)` is applied to the k-mer rank `x`).

/// Number of symbols in the DNA alphabet.
pub const ALPHABET_SIZE: usize = 4;

/// Sentinel stored in [`ENCODE_LUT`] for bytes that are not unambiguous DNA.
pub const INVALID_CODE: u8 = 0xFF;

/// Full 256-entry encoding table: `ENCODE_LUT[b as usize]` is the 2-bit code
/// of nucleotide `b` (either case) or [`INVALID_CODE`].
///
/// The block encoder ([`crate::block`]) translates whole 32-byte blocks
/// through this table with no per-byte branching; [`encode_base`] is the same
/// table wrapped in an `Option`.
pub const ENCODE_LUT: [u8; 256] = build_encode_lut();

const fn build_encode_lut() -> [u8; 256] {
    let mut t = [INVALID_CODE; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t
}

/// Encode an ASCII nucleotide into its 2-bit code.
///
/// Returns `None` for ambiguity codes (`N`, `R`, ...) and any non-nucleotide
/// byte. Lower-case input is accepted.
#[inline]
pub fn encode_base(b: u8) -> Option<u8> {
    let c = ENCODE_LUT[b as usize];
    if c == INVALID_CODE {
        None
    } else {
        Some(c)
    }
}

/// Decode a 2-bit code back to its upper-case ASCII nucleotide.
///
/// # Panics
/// Panics if `code > 3`.
#[inline]
pub fn decode_base(code: u8) -> u8 {
    match code {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        3 => b'T',
        _ => panic!("invalid 2-bit base code: {code}"),
    }
}

/// Complement of a 2-bit base code (`A<->T`, `C<->G`).
///
/// With this encoding the complement is simply `3 - code` (equivalently
/// `code ^ 3`), which is what [`crate::kmer::Kmer::revcomp`] exploits.
#[inline]
pub fn complement_code(code: u8) -> u8 {
    3 - (code & 3)
}

/// Complement of an ASCII nucleotide. Ambiguity codes map to `N`.
#[inline]
pub fn complement_base(b: u8) -> u8 {
    match b {
        b'A' | b'a' => b'T',
        b'C' | b'c' => b'G',
        b'G' | b'g' => b'C',
        b'T' | b't' => b'A',
        _ => b'N',
    }
}

/// Is `b` an unambiguous DNA nucleotide (ACGT, either case)?
#[inline]
pub fn is_dna(b: u8) -> bool {
    encode_base(b).is_some()
}

/// Reverse complement of an ASCII byte sequence, allocating a new vector.
pub fn revcomp_bytes(seq: &[u8]) -> Vec<u8> {
    seq.iter().rev().map(|&b| complement_base(b)).collect()
}

/// Reverse complement `seq` in place.
pub fn revcomp_in_place(seq: &mut [u8]) {
    seq.reverse();
    for b in seq.iter_mut() {
        *b = complement_base(*b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_matches_encode_base_for_all_bytes() {
        for b in 0u8..=255 {
            let expect = match b {
                b'A' | b'a' => Some(0),
                b'C' | b'c' => Some(1),
                b'G' | b'g' => Some(2),
                b'T' | b't' => Some(3),
                _ => None,
            };
            assert_eq!(encode_base(b), expect, "byte {b}");
            assert_eq!(ENCODE_LUT[b as usize], expect.unwrap_or(INVALID_CODE));
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (i, b) in [b'A', b'C', b'G', b'T'].iter().enumerate() {
            assert_eq!(encode_base(*b), Some(i as u8));
            assert_eq!(decode_base(i as u8), *b);
        }
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(encode_base(b'a'), Some(0));
        assert_eq!(encode_base(b'c'), Some(1));
        assert_eq!(encode_base(b'g'), Some(2));
        assert_eq!(encode_base(b't'), Some(3));
    }

    #[test]
    fn ambiguity_rejected() {
        for b in [b'N', b'n', b'R', b'Y', b'-', b' ', b'X', 0u8] {
            assert_eq!(encode_base(b), None);
            assert!(!is_dna(b));
        }
    }

    #[test]
    fn encoding_is_lexicographic() {
        // The property the whole sketch stack relies on.
        let order = [b'A', b'C', b'G', b'T'];
        for w in order.windows(2) {
            assert!(encode_base(w[0]).unwrap() < encode_base(w[1]).unwrap());
        }
    }

    #[test]
    fn complement_code_matches_base() {
        for c in 0u8..4 {
            let b = decode_base(c);
            assert_eq!(decode_base(complement_code(c)), complement_base(b));
        }
    }

    #[test]
    fn complement_is_involution() {
        for c in 0u8..4 {
            assert_eq!(complement_code(complement_code(c)), c);
        }
        for b in [b'A', b'C', b'G', b'T'] {
            assert_eq!(complement_base(complement_base(b)), b);
        }
    }

    #[test]
    fn revcomp_bytes_simple() {
        assert_eq!(revcomp_bytes(b"ACGT"), b"ACGT".to_vec());
        assert_eq!(revcomp_bytes(b"AACC"), b"GGTT".to_vec());
        assert_eq!(revcomp_bytes(b"GATTACA"), b"TGTAATC".to_vec());
        assert_eq!(revcomp_bytes(b""), Vec::<u8>::new());
    }

    #[test]
    fn revcomp_in_place_matches_alloc() {
        let mut s = b"ACGTTGCANNG".to_vec();
        let expect = revcomp_bytes(&s);
        revcomp_in_place(&mut s);
        assert_eq!(s, expect);
    }

    #[test]
    fn revcomp_is_involution_on_dna() {
        let s = b"ACGTACGTTTGGCCAA".to_vec();
        assert_eq!(revcomp_bytes(&revcomp_bytes(&s)), s);
    }
}
