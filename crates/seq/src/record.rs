//! Named sequence records shared by the FASTA/FASTQ codecs and the mappers.

/// A named DNA sequence (FASTA-style record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeqRecord {
    /// Record identifier (first whitespace-delimited token of the header).
    pub id: String,
    /// Remainder of the header line, if any.
    pub desc: Option<String>,
    /// Raw ASCII sequence bytes (may include ambiguity codes).
    pub seq: Vec<u8>,
}

impl SeqRecord {
    /// Convenience constructor without a description.
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> Self {
        SeqRecord {
            id: id.into(),
            desc: None,
            seq: seq.into(),
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

impl AsRef<[u8]> for SeqRecord {
    /// Lend the raw sequence bytes — lets sketch/index builders consume
    /// records without cloning their sequences.
    fn as_ref(&self) -> &[u8] {
        &self.seq
    }
}

/// A named DNA sequence with per-base qualities (FASTQ-style record).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FastqRecord {
    /// Record identifier.
    pub id: String,
    /// Remainder of the header line, if any.
    pub desc: Option<String>,
    /// Raw ASCII sequence bytes.
    pub seq: Vec<u8>,
    /// Phred+33 quality string, same length as `seq`.
    pub qual: Vec<u8>,
}

impl FastqRecord {
    /// Convenience constructor with a uniform quality value.
    pub fn with_uniform_quality(id: impl Into<String>, seq: Vec<u8>, phred33: u8) -> Self {
        let qual = vec![phred33; seq.len()];
        FastqRecord {
            id: id.into(),
            desc: None,
            seq,
            qual,
        }
    }

    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Drop the qualities, keeping a FASTA-style record.
    pub fn into_seq_record(self) -> SeqRecord {
        SeqRecord {
            id: self.id,
            desc: self.desc,
            seq: self.seq,
        }
    }
}

/// Split a FASTA/FASTQ header into `(id, desc)` at the first whitespace.
pub(crate) fn split_header(header: &str) -> (String, Option<String>) {
    match header.split_once(char::is_whitespace) {
        Some((id, rest)) => {
            let rest = rest.trim();
            (
                id.to_string(),
                if rest.is_empty() {
                    None
                } else {
                    Some(rest.to_string())
                },
            )
        }
        None => (header.to_string(), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_header_variants() {
        assert_eq!(split_header("read1"), ("read1".into(), None));
        assert_eq!(
            split_header("read1 len=100"),
            ("read1".into(), Some("len=100".into()))
        );
        assert_eq!(
            split_header("read1\tdescription"),
            ("read1".into(), Some("description".into()))
        );
        assert_eq!(split_header("read1   "), ("read1".into(), None));
    }

    #[test]
    fn record_basics() {
        let r = SeqRecord::new("x", b"ACGT".to_vec());
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let q = FastqRecord::with_uniform_quality("y", b"ACGT".to_vec(), b'I');
        assert_eq!(q.qual, b"IIII".to_vec());
        assert_eq!(q.into_seq_record().seq, b"ACGT".to_vec());
    }
}
