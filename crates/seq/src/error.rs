//! Error type shared across the sequence substrate.

use std::fmt;
use std::io;

/// Errors produced by the sequence substrate (parsing, packing, k-mer ops).
#[derive(Debug)]
pub enum SeqError {
    /// Underlying I/O failure while reading or writing sequence files.
    Io(io::Error),
    /// A FASTA/FASTQ stream violated the format at the given 1-based line.
    Format {
        /// 1-based line number where the problem was detected.
        line: u64,
        /// Human-readable description of the violation.
        msg: String,
    },
    /// A byte that is not an unambiguous nucleotide where one was required.
    InvalidBase {
        /// The offending byte.
        byte: u8,
        /// Position of the byte within the sequence.
        pos: usize,
    },
    /// Requested k-mer size is unsupported (must be `1..=32`).
    InvalidK(usize),
    /// A parameter combination that cannot be satisfied.
    InvalidParameter(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
            SeqError::Format { line, msg } => write!(f, "format error at line {line}: {msg}"),
            SeqError::InvalidBase { byte, pos } => {
                write!(
                    f,
                    "invalid base {:?} (0x{byte:02x}) at position {pos}",
                    *byte as char
                )
            }
            SeqError::InvalidK(k) => write!(f, "invalid k-mer size {k}: must be in 1..=32"),
            SeqError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SeqError::InvalidBase { byte: b'N', pos: 7 };
        assert!(e.to_string().contains("'N'"));
        assert!(e.to_string().contains("position 7"));
        let e = SeqError::InvalidK(33);
        assert!(e.to_string().contains("33"));
        let e = SeqError::Format {
            line: 12,
            msg: "bad header".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = io::Error::new(io::ErrorKind::UnexpectedEof, "boom");
        let e = SeqError::from(inner);
        assert!(std::error::Error::source(&e).is_some());
    }
}
