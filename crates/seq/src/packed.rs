//! 2-bit packed DNA sequences.
//!
//! Contig sets and read sets in the mapping workloads hold hundreds of
//! megabases; storing them packed (4 bases/byte) quarters the memory of the
//! resident sequence data. `PackedSeq` is append-only and supports random
//! base access, sub-slice extraction and k-mer-code extraction without
//! unpacking to ASCII first.

use crate::alphabet::{decode_base, encode_base};
use crate::block::BlockEncoded;
use crate::error::SeqError;
use crate::kmer::{kmer_mask, Kmer, MAX_K};

/// An immutable-length, 2-bit packed DNA sequence (ACGT only).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    /// 4 bases per byte, base `i` in bits `2*(i%4)..2*(i%4)+2` of byte `i/4`.
    data: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocate for `n` bases.
    pub fn with_capacity(n: usize) -> Self {
        PackedSeq {
            data: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Pack an ASCII sequence. Fails on the first ambiguous base.
    ///
    /// Runs through the block encoder ([`crate::block`]); the packed word
    /// layout there is exactly the little-endian byte image of this struct's
    /// `data`, so a fully-valid encoding converts by copying word bytes.
    pub fn from_bytes(seq: &[u8]) -> Result<Self, SeqError> {
        let mut enc = BlockEncoded::default();
        enc.encode_into(seq);
        if let Some(pos) = enc.first_invalid() {
            return Err(SeqError::InvalidBase {
                byte: seq[pos],
                pos,
            });
        }
        let n_bytes = seq.len().div_ceil(4);
        let mut data = Vec::with_capacity(enc.words().len() * 8);
        for w in enc.words() {
            data.extend_from_slice(&w.to_le_bytes());
        }
        data.truncate(n_bytes);
        Ok(PackedSeq {
            data,
            len: seq.len(),
        })
    }

    /// Pack an ASCII sequence, replacing ambiguous bases with `A`.
    ///
    /// Useful when downstream consumers (simulated pipelines) cannot handle
    /// gaps; callers that must *skip* ambiguous windows should iterate the
    /// raw bytes with [`crate::kmer::KmerIter`] instead.
    pub fn from_bytes_lossy(seq: &[u8]) -> Self {
        let mut p = PackedSeq::with_capacity(seq.len());
        for &b in seq {
            p.push_code(encode_base(b).unwrap_or(0));
        }
        p
    }

    /// Append one 2-bit base code (must be `< 4`).
    #[inline]
    pub fn push_code(&mut self, code: u8) {
        debug_assert!(code < 4);
        let slot = self.len % 4;
        if slot == 0 {
            self.data.push(0);
        }
        let last = self.data.last_mut().expect("just ensured non-empty");
        *last |= (code & 3) << (2 * slot);
        self.len += 1;
    }

    /// Append one ASCII base.
    pub fn push_base(&mut self, b: u8) -> Result<(), SeqError> {
        let c = encode_base(b).ok_or(SeqError::InvalidBase {
            byte: b,
            pos: self.len,
        })?;
        self.push_code(c);
        Ok(())
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// 2-bit code of base `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        assert!(
            i < self.len,
            "base index {i} out of range (len {})",
            self.len
        );
        (self.data[i / 4] >> (2 * (i % 4))) & 3
    }

    /// ASCII base at position `i`.
    #[inline]
    pub fn base_at(&self, i: usize) -> u8 {
        decode_base(self.code_at(i))
    }

    /// Unpack the whole sequence to ASCII.
    pub fn to_bytes(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.base_at(i)).collect()
    }

    /// Unpack the half-open base range `start..end` to ASCII.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice_bytes(&self, start: usize, end: usize) -> Vec<u8> {
        assert!(
            start <= end && end <= self.len,
            "bad slice {start}..{end} (len {})",
            self.len
        );
        (start..end).map(|i| self.base_at(i)).collect()
    }

    /// Packed code of the `k`-mer starting at base `start`.
    ///
    /// Returns `Err` for invalid `k` and `None`-free: the range must be in
    /// bounds (panics otherwise, mirroring slice semantics).
    pub fn kmer_at(&self, start: usize, k: usize) -> Result<Kmer, SeqError> {
        if k == 0 || k > MAX_K {
            return Err(SeqError::InvalidK(k));
        }
        assert!(
            start + k <= self.len,
            "k-mer {start}+{k} out of range (len {})",
            self.len
        );
        let mut code = 0u64;
        for i in start..start + k {
            code = (code << 2) | u64::from(self.code_at(i));
        }
        debug_assert_eq!(code & kmer_mask(k), code);
        Kmer::from_code(code, k)
    }

    /// Reverse complement as a new packed sequence.
    pub fn revcomp(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push_code(3 - self.code_at(i));
        }
        out
    }

    /// Approximate heap footprint in bytes (the packed payload).
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity()
    }
}

impl std::fmt::Debug for PackedSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len <= 60 {
            write!(
                f,
                "PackedSeq({})",
                String::from_utf8_lossy(&self.to_bytes())
            )
        } else {
            write!(
                f,
                "PackedSeq(len={}, {}...)",
                self.len,
                String::from_utf8_lossy(&self.slice_bytes(0, 24))
            )
        }
    }
}

impl std::str::FromStr for PackedSeq {
    type Err = SeqError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PackedSeq::from_bytes(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 100] {
            let seq: Vec<u8> = (0..n).map(|i| b"ACGT"[i % 4]).collect();
            let p = PackedSeq::from_bytes(&seq).unwrap();
            assert_eq!(p.len(), n);
            assert_eq!(p.to_bytes(), seq);
        }
    }

    #[test]
    fn rejects_ambiguous() {
        let err = PackedSeq::from_bytes(b"ACGNA").unwrap_err();
        match err {
            SeqError::InvalidBase { byte, pos } => {
                assert_eq!(byte, b'N');
                assert_eq!(pos, 3);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn lossy_replaces_with_a() {
        let p = PackedSeq::from_bytes_lossy(b"ANGT");
        assert_eq!(p.to_bytes(), b"AAGT".to_vec());
    }

    #[test]
    fn base_access() {
        let p = PackedSeq::from_bytes(b"GATTACA").unwrap();
        assert_eq!(p.base_at(0), b'G');
        assert_eq!(p.base_at(6), b'A');
        assert_eq!(p.slice_bytes(1, 4), b"ATT".to_vec());
        assert_eq!(p.slice_bytes(0, 0), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn base_access_out_of_range_panics() {
        let p = PackedSeq::from_bytes(b"ACGT").unwrap();
        p.code_at(4);
    }

    #[test]
    fn kmer_extraction_matches_bytes() {
        let p = PackedSeq::from_bytes(b"ACGTTGCA").unwrap();
        for start in 0..=5 {
            let km = p.kmer_at(start, 3).unwrap();
            let expect = Kmer::from_bytes(&p.slice_bytes(start, start + 3)).unwrap();
            assert_eq!(km, expect);
        }
    }

    #[test]
    fn revcomp_matches_byte_revcomp() {
        let p = PackedSeq::from_bytes(b"AACCGGTTAG").unwrap();
        assert_eq!(
            p.revcomp().to_bytes(),
            crate::alphabet::revcomp_bytes(b"AACCGGTTAG")
        );
    }

    #[test]
    fn packing_is_4x_denser() {
        let seq = vec![b'A'; 1000];
        let p = PackedSeq::from_bytes(&seq).unwrap();
        assert_eq!(p.data.len(), 250);
    }

    #[test]
    fn from_bytes_matches_push_path_bytewise() {
        // `PartialEq`/`Hash` derive over `data`, so the block-encoded
        // constructor must produce the exact bytes of the push_code path,
        // including tail padding.
        for n in [0usize, 1, 3, 4, 5, 31, 32, 33, 63, 64, 65, 127, 1000] {
            let seq: Vec<u8> = (0..n).map(|i| b"ACGT"[(i * 7 + i / 3) % 4]).collect();
            let fast = PackedSeq::from_bytes(&seq).unwrap();
            let mut slow = PackedSeq::with_capacity(n);
            for &b in &seq {
                slow.push_base(b).unwrap();
            }
            assert_eq!(fast.data, slow.data, "len {n}");
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn from_str_parses() {
        let p: PackedSeq = "ACGT".parse().unwrap();
        assert_eq!(p.to_bytes(), b"ACGT".to_vec());
        assert!("ACXT".parse::<PackedSeq>().is_err());
    }
}
