//! Block 2-bit encoding: the branch-free front end of the sketching kernel.
//!
//! [`CanonicalKmerIter`](crate::kmer::CanonicalKmerIter) pays a per-byte
//! `match encode_base(b)` — a data-dependent branch plus a reset path — for
//! every base it rolls over. This module removes that cost by splitting the
//! work into two phases done *once* per sequence:
//!
//! 1. **Translate + pack.** Each 32-byte block is pushed through the 256-entry
//!    [`ENCODE_LUT`], yielding a packed `u64` word (2 bits per base, base `i`
//!    of the sequence in bits `2*(i%32)` of word `i/32`) and a 32-bit validity
//!    mask marking ambiguous bytes. The loops are fixed-width with no
//!    early-exit branches, so LLVM unrolls and vectorizes them.
//! 2. **Run split.** The per-block masks are folded into a list of *maximal
//!    valid runs* ([`Run`]). Inside a run every base is a valid 2-bit code, so
//!    downstream k-mer loops ([`RunCodes`]) read codes by shift/mask with no
//!    validity checks and no reset logic at all.
//!
//! The word layout deliberately matches [`PackedSeq`](crate::packed::PackedSeq)
//! (base `i` in bits `2*(i%4)` of byte `i/4` — exactly the little-endian byte
//! image of the words here), so a fully-valid encoding converts to a
//! `PackedSeq` by memcpy of `to_le_bytes`.

use crate::alphabet::{ENCODE_LUT, INVALID_CODE};

/// Number of bases packed into each `u64` word (2 bits per base).
pub const BASES_PER_WORD: usize = 32;

/// One maximal run of consecutive unambiguous bases in the source sequence.
///
/// Runs are produced in position order, never empty, never adjacent (they are
/// separated by at least one invalid byte), and never overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// 0-based position of the run's first base in the source sequence.
    pub start: u32,
    /// Number of bases in the run (always ≥ 1).
    pub len: u32,
}

impl Run {
    /// One-past-the-end position of the run in the source sequence.
    #[inline]
    pub fn end(&self) -> usize {
        self.start as usize + self.len as usize
    }
}

/// A sequence block-encoded into 2-bit packed words plus its valid runs.
///
/// Reusable: [`encode_into`](Self::encode_into) clears and refills the
/// internal buffers without reallocating across sequences of similar length.
#[derive(Clone, Debug, Default)]
pub struct BlockEncoded {
    /// Base `i` occupies bits `2*(i%32) .. 2*(i%32)+2` of `words[i/32]`.
    /// Slots holding ambiguous bytes contain garbage and are never inside a
    /// run; slots past the sequence end are zero.
    words: Vec<u64>,
    runs: Vec<Run>,
    len: usize,
}

impl BlockEncoded {
    /// Encode `seq`, replacing any previous contents.
    ///
    /// Sequences longer than `u32::MAX` bases are not supported (positions are
    /// stored as `u32` throughout the sketch stack).
    pub fn encode_into(&mut self, seq: &[u8]) {
        assert!(
            u32::try_from(seq.len()).is_ok(),
            "sequence length {} exceeds u32 positions",
            seq.len()
        );
        self.words.clear();
        self.runs.clear();
        self.len = seq.len();
        self.words.reserve(seq.len().div_ceil(BASES_PER_WORD));
        let mut open_run: Option<usize> = None;
        let mut base_pos = 0usize;
        let mut blocks = seq.chunks_exact(BASES_PER_WORD);
        for block in blocks.by_ref() {
            let (word, invalid) = encode_block32(block.try_into().expect("exact chunk"));
            self.words.push(word);
            if invalid == 0 {
                // Common case for real DNA: the whole block is valid.
                open_run.get_or_insert(base_pos);
            } else {
                split_block_runs(
                    invalid,
                    base_pos,
                    BASES_PER_WORD,
                    &mut open_run,
                    &mut self.runs,
                );
            }
            base_pos += BASES_PER_WORD;
        }
        let tail = blocks.remainder();
        if !tail.is_empty() {
            let (word, invalid) = encode_tail(tail);
            self.words.push(word);
            if invalid == 0 {
                open_run.get_or_insert(base_pos);
            } else {
                split_block_runs(invalid, base_pos, tail.len(), &mut open_run, &mut self.runs);
            }
        }
        if let Some(start) = open_run {
            self.runs.push(Run {
                start: start as u32,
                len: (seq.len() - start) as u32,
            });
        }
    }

    /// Length of the encoded sequence in bases (valid or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the encoded sequence empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The maximal valid runs, in position order.
    #[inline]
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The packed 2-bit words (see type-level docs for the layout).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// 2-bit code of base `i`. Only meaningful inside a [`Run`]; slots holding
    /// ambiguous bytes contain unspecified garbage.
    #[inline]
    pub fn code_at(&self, i: usize) -> u8 {
        ((self.words[i / BASES_PER_WORD] >> (2 * (i % BASES_PER_WORD))) & 3) as u8
    }

    /// Position of the first ambiguous byte, or `None` if every base is valid.
    ///
    /// Derived from the run list: runs are maximal, so the base right after a
    /// first run starting at 0 is invalid unless that run covers everything.
    pub fn first_invalid(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        match self.runs.first() {
            Some(r) if r.start == 0 => {
                if r.len as usize == self.len {
                    None
                } else {
                    Some(r.len as usize)
                }
            }
            _ => Some(0),
        }
    }
}

/// Translate one full 32-byte block: packed word + invalid-position bitmask.
///
/// Fixed-width loops over a stack array so the mask/pack half vectorizes; the
/// LUT half is branch-free (a plain load per byte, no match, no Option).
#[inline]
fn encode_block32(block: &[u8; BASES_PER_WORD]) -> (u64, u32) {
    let mut codes = [0u8; BASES_PER_WORD];
    for i in 0..BASES_PER_WORD {
        codes[i] = ENCODE_LUT[block[i] as usize];
    }
    let mut word = 0u64;
    let mut invalid = 0u32;
    for (i, &c) in codes.iter().enumerate() {
        invalid |= u32::from(c == INVALID_CODE) << i;
        word |= u64::from(c & 3) << (2 * i);
    }
    (word, invalid)
}

/// Translate the final partial block. Slots past `block.len()` stay zero.
#[inline]
fn encode_tail(block: &[u8]) -> (u64, u32) {
    debug_assert!(block.len() < BASES_PER_WORD);
    let mut word = 0u64;
    let mut invalid = 0u32;
    for (i, &b) in block.iter().enumerate() {
        let c = ENCODE_LUT[b as usize];
        invalid |= u32::from(c == INVALID_CODE) << i;
        word |= u64::from(c & 3) << (2 * i);
    }
    (word, invalid)
}

/// Fold one block's invalid-position mask into the run list.
///
/// `open_run` carries the start of a run left open by the previous block (or
/// within this one). Only called for blocks that contain at least one invalid
/// byte — the all-valid fast path is handled inline by the caller.
fn split_block_runs(
    invalid: u32,
    base: usize,
    n: usize,
    open_run: &mut Option<usize>,
    runs: &mut Vec<Run>,
) {
    let mut off = 0usize;
    while off < n {
        if invalid & (1u32 << off) != 0 {
            if let Some(start) = open_run.take() {
                runs.push(Run {
                    start: start as u32,
                    len: (base + off - start) as u32,
                });
            }
            off += 1;
        } else {
            open_run.get_or_insert(base + off);
            // Jump to the next invalid offset (or the end of the block).
            let rest = invalid >> off;
            let step = if rest == 0 {
                n - off
            } else {
                rest.trailing_zeros() as usize
            };
            off += step.max(1);
        }
    }
}

/// Branch-light streaming reader of the 2-bit codes of one [`Run`].
///
/// Caches the current packed word and shifts two bits per base; the word
/// reload is one predictable branch taken every 32 bases. Reading past the
/// run's end is a logic error (debug-asserted, garbage in release).
pub struct RunCodes<'a> {
    words: &'a [u64],
    word_idx: usize,
    cur: u64,
    shift: u32,
    #[cfg(debug_assertions)]
    remaining: usize,
}

impl<'a> RunCodes<'a> {
    /// Start reading codes at the beginning of `run` within `enc`.
    #[inline]
    pub fn new(enc: &'a BlockEncoded, run: Run) -> Self {
        let start = run.start as usize;
        debug_assert!(run.end() <= enc.len);
        let word_idx = start / BASES_PER_WORD;
        RunCodes {
            words: &enc.words,
            word_idx,
            cur: enc.words.get(word_idx).copied().unwrap_or(0),
            shift: (2 * (start % BASES_PER_WORD)) as u32,
            #[cfg(debug_assertions)]
            remaining: run.len as usize,
        }
    }

    /// The next 2-bit code of the run.
    #[inline(always)]
    pub fn next_code(&mut self) -> u64 {
        #[cfg(debug_assertions)]
        {
            debug_assert!(self.remaining > 0, "RunCodes read past run end");
            self.remaining -= 1;
        }
        if self.shift == 64 {
            self.word_idx += 1;
            self.cur = self.words[self.word_idx];
            self.shift = 0;
        }
        let c = (self.cur >> self.shift) & 3;
        self.shift += 2;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_base;

    fn runs_of(seq: &[u8]) -> Vec<Run> {
        let mut enc = BlockEncoded::default();
        enc.encode_into(seq);
        enc.runs().to_vec()
    }

    /// Reference run-splitter: scan byte by byte.
    fn naive_runs(seq: &[u8]) -> Vec<Run> {
        let mut runs = Vec::new();
        let mut start: Option<usize> = None;
        for (i, &b) in seq.iter().enumerate() {
            match (encode_base(b), start) {
                (Some(_), None) => start = Some(i),
                (None, Some(s)) => {
                    runs.push(Run {
                        start: s as u32,
                        len: (i - s) as u32,
                    });
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            runs.push(Run {
                start: s as u32,
                len: (seq.len() - s) as u32,
            });
        }
        runs
    }

    #[test]
    fn empty_and_all_invalid() {
        let mut enc = BlockEncoded::default();
        enc.encode_into(b"");
        assert!(enc.is_empty());
        assert!(enc.runs().is_empty());
        assert_eq!(enc.first_invalid(), None);

        enc.encode_into(b"NNNNN");
        assert_eq!(enc.len(), 5);
        assert!(enc.runs().is_empty());
        assert_eq!(enc.first_invalid(), Some(0));
    }

    #[test]
    fn codes_match_encode_base_inside_runs() {
        let seq = b"ACGTacgtNNGGTTnACGTACGTACGTACGTACGTACGTACGTACGTXXTTTT";
        let mut enc = BlockEncoded::default();
        enc.encode_into(seq);
        for run in enc.runs() {
            for (i, &b) in seq.iter().enumerate().take(run.end()).skip(run.start as usize) {
                assert_eq!(enc.code_at(i), encode_base(b).unwrap(), "base {i}");
            }
        }
    }

    #[test]
    fn runs_match_naive_on_block_boundaries() {
        // Invalid bytes planted exactly around the 32- and 64-base seams.
        for bad in [0usize, 1, 30, 31, 32, 33, 62, 63, 64, 65, 94, 95] {
            let mut seq = vec![b'A'; 96];
            seq[bad] = b'N';
            assert_eq!(runs_of(&seq), naive_runs(&seq), "bad at {bad}");
        }
        // Consecutive invalid bytes straddling a seam.
        let mut seq = vec![b'C'; 96];
        for b in &mut seq[30..35] {
            *b = b'-';
        }
        assert_eq!(runs_of(&seq), naive_runs(&seq));
    }

    #[test]
    fn runs_match_naive_on_soup() {
        // Deterministic pseudo-random soup mixing valid/invalid bytes.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for len in [0usize, 1, 5, 31, 32, 33, 63, 64, 65, 200, 517] {
            let seq: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let r = (state >> 33) as u8;
                    match r % 7 {
                        0 => b'A',
                        1 => b'C',
                        2 => b'g',
                        3 => b't',
                        4 => b'N',
                        5 => r, // arbitrary non-IUPAC byte
                        _ => b'T',
                    }
                })
                .collect();
            assert_eq!(runs_of(&seq), naive_runs(&seq), "len {len}");
        }
    }

    #[test]
    fn run_codes_streams_whole_run() {
        let seq = b"NNACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTNN";
        let mut enc = BlockEncoded::default();
        enc.encode_into(seq);
        assert_eq!(enc.runs().len(), 1);
        let run = enc.runs()[0];
        let mut codes = RunCodes::new(&enc, run);
        for &b in &seq[run.start as usize..run.end()] {
            assert_eq!(codes.next_code() as u8, encode_base(b).unwrap());
        }
    }

    #[test]
    fn first_invalid_positions() {
        assert_eq!(first_invalid(b"ACGT"), None);
        assert_eq!(first_invalid(b"NACGT"), Some(0));
        assert_eq!(first_invalid(b"ACGNT"), Some(3));
        assert_eq!(first_invalid(b"ACGTN"), Some(4));
        let mut long = vec![b'A'; 40];
        long[33] = b'x';
        assert_eq!(first_invalid(&long), Some(33));
    }

    fn first_invalid(seq: &[u8]) -> Option<usize> {
        let mut enc = BlockEncoded::default();
        enc.encode_into(seq);
        enc.first_invalid()
    }
}
