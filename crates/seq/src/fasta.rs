//! Streaming FASTA reader and writer.
//!
//! The reader is a pull iterator over [`SeqRecord`]s and tolerates multi-line
//! sequences, trailing whitespace, empty lines between records, and `\r\n`
//! line endings. The writer wraps sequence lines at a configurable width.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::error::SeqError;
use crate::record::{split_header, SeqRecord};

/// Streaming FASTA parser over any `BufRead` source.
pub struct FastaReader<R: BufRead> {
    inner: R,
    line_no: u64,
    /// Header of the record currently being accumulated (without `>`).
    pending_header: Option<String>,
    buf: String,
    done: bool,
}

impl FastaReader<BufReader<File>> {
    /// Open a FASTA file from disk.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, SeqError> {
        Ok(FastaReader::new(BufReader::new(File::open(path)?)))
    }
}

impl<R: BufRead> FastaReader<R> {
    /// Wrap a buffered reader.
    pub fn new(inner: R) -> Self {
        FastaReader {
            inner,
            line_no: 0,
            pending_header: None,
            buf: String::new(),
            done: false,
        }
    }

    /// Read all remaining records into a vector.
    pub fn read_all(self) -> Result<Vec<SeqRecord>, SeqError> {
        self.collect()
    }

    fn next_record(&mut self) -> Result<Option<SeqRecord>, SeqError> {
        if self.done {
            return Ok(None);
        }
        let mut seq: Vec<u8> = Vec::new();
        loop {
            self.buf.clear();
            let n = self.inner.read_line(&mut self.buf)?;
            if n == 0 {
                self.done = true;
                return match self.pending_header.take() {
                    Some(h) => {
                        let (id, desc) = split_header(&h);
                        Ok(Some(SeqRecord { id, desc, seq }))
                    }
                    None if seq.is_empty() => Ok(None),
                    None => Err(SeqError::Format {
                        line: self.line_no,
                        msg: "sequence data before any '>' header".into(),
                    }),
                };
            }
            self.line_no += 1;
            let line = self.buf.trim_end();
            if let Some(header) = line.strip_prefix('>') {
                let header = header.trim().to_string();
                if header.is_empty() {
                    return Err(SeqError::Format {
                        line: self.line_no,
                        msg: "empty FASTA header".into(),
                    });
                }
                match self.pending_header.replace(header) {
                    Some(prev) => {
                        // Previous record is complete; emit it.
                        let (id, desc) = split_header(&prev);
                        return Ok(Some(SeqRecord { id, desc, seq }));
                    }
                    None => {
                        if !seq.is_empty() {
                            return Err(SeqError::Format {
                                line: self.line_no,
                                msg: "sequence data before any '>' header".into(),
                            });
                        }
                    }
                }
            } else if !line.is_empty() {
                if self.pending_header.is_none() {
                    return Err(SeqError::Format {
                        line: self.line_no,
                        msg: "sequence data before any '>' header".into(),
                    });
                }
                seq.extend_from_slice(line.as_bytes());
            }
        }
    }
}

impl<R: BufRead> Iterator for FastaReader<R> {
    type Item = Result<SeqRecord, SeqError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// FASTA writer with configurable line wrapping.
pub struct FastaWriter<W: Write> {
    inner: W,
    /// Maximum sequence-line width; 0 means no wrapping.
    pub line_width: usize,
}

impl FastaWriter<BufWriter<File>> {
    /// Create or truncate a FASTA file on disk.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, SeqError> {
        Ok(FastaWriter::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> FastaWriter<W> {
    /// Wrap a writer; defaults to 80-column wrapping.
    pub fn new(inner: W) -> Self {
        FastaWriter {
            inner,
            line_width: 80,
        }
    }

    /// Write one record.
    pub fn write_record(&mut self, rec: &SeqRecord) -> Result<(), SeqError> {
        match &rec.desc {
            Some(d) => writeln!(self.inner, ">{} {}", rec.id, d)?,
            None => writeln!(self.inner, ">{}", rec.id)?,
        }
        if self.line_width == 0 {
            self.inner.write_all(&rec.seq)?;
            writeln!(self.inner)?;
        } else {
            for chunk in rec.seq.chunks(self.line_width) {
                self.inner.write_all(chunk)?;
                writeln!(self.inner)?;
            }
            if rec.seq.is_empty() {
                // keep an (empty) sequence line for parse symmetry
            }
        }
        Ok(())
    }

    /// Write many records.
    pub fn write_all_records<'a>(
        &mut self,
        recs: impl IntoIterator<Item = &'a SeqRecord>,
    ) -> Result<(), SeqError> {
        for r in recs {
            self.write_record(r)?;
        }
        Ok(())
    }

    /// Flush the underlying writer.
    pub fn flush(&mut self) -> Result<(), SeqError> {
        self.inner.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(s: &str) -> Result<Vec<SeqRecord>, SeqError> {
        FastaReader::new(Cursor::new(s.as_bytes())).read_all()
    }

    #[test]
    fn single_record() {
        let recs = parse(">r1 a description\nACGT\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].desc.as_deref(), Some("a description"));
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
    }

    #[test]
    fn multiline_sequence_and_crlf() {
        let recs = parse(">r1\r\nACGT\r\nTTAA\r\n>r2\r\nGG\r\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, b"ACGTTTAA".to_vec());
        assert_eq!(recs[1].id, "r2");
        assert_eq!(recs[1].seq, b"GG".to_vec());
    }

    #[test]
    fn blank_lines_tolerated() {
        let recs = parse("\n>r1\nAC\n\nGT\n\n>r2\nTT\n").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
        assert_eq!(recs[1].seq, b"TT".to_vec());
    }

    #[test]
    fn missing_final_newline() {
        let recs = parse(">r1\nACGT").unwrap();
        assert_eq!(recs[0].seq, b"ACGT".to_vec());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("\n\n").unwrap().is_empty());
    }

    #[test]
    fn record_with_empty_sequence() {
        let recs = parse(">r1\n>r2\nAC\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].seq.is_empty());
        assert_eq!(recs[1].seq, b"AC".to_vec());
    }

    #[test]
    fn data_before_header_is_error() {
        let err = parse("ACGT\n>r1\nAC\n").unwrap_err();
        assert!(matches!(err, SeqError::Format { line: 1, .. }), "{err}");
    }

    #[test]
    fn empty_header_is_error() {
        assert!(parse(">\nACGT\n").is_err());
        assert!(parse(">   \nACGT\n").is_err());
    }

    #[test]
    fn writer_reader_roundtrip_with_wrapping() {
        let recs = vec![
            SeqRecord {
                id: "a".into(),
                desc: Some("d e s c".into()),
                seq: vec![b'A'; 205],
            },
            SeqRecord::new("b", b"ACGT".to_vec()),
            SeqRecord::new("c", Vec::new()),
        ];
        let mut out = Vec::new();
        {
            let mut w = FastaWriter::new(&mut out);
            w.line_width = 60;
            w.write_all_records(&recs).unwrap();
            w.flush().unwrap();
        }
        let back = FastaReader::new(Cursor::new(&out)).read_all().unwrap();
        assert_eq!(back, recs);
        // Check actual wrapping happened.
        let text = String::from_utf8(out).unwrap();
        assert!(text.lines().all(|l| l.len() <= 64));
    }

    #[test]
    fn writer_no_wrapping() {
        let rec = SeqRecord::new("a", vec![b'C'; 300]);
        let mut out = Vec::new();
        {
            let mut w = FastaWriter::new(&mut out);
            w.line_width = 0;
            w.write_record(&rec).unwrap();
            w.flush().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
    }
}
