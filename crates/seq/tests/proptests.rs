//! Property-based tests for the sequence substrate.

use jem_seq::{
    alphabet::revcomp_bytes, CanonicalKmerIter, FastaReader, FastaWriter, FastqReader, FastqRecord,
    FastqWriter, Kmer, KmerIter, PackedSeq, SeqRecord,
};
use proptest::prelude::*;

/// Strategy: an ACGT-only sequence of length `0..max`.
fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max)
}

/// Strategy: DNA with occasional ambiguity codes.
fn dna_with_n(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T', b'A', b'C', b'G', b'T', b'N']),
        0..max,
    )
}

proptest! {
    #[test]
    fn packed_roundtrip(seq in dna(300)) {
        let p = PackedSeq::from_bytes(&seq).unwrap();
        prop_assert_eq!(p.to_bytes(), seq);
    }

    #[test]
    fn packed_revcomp_involution(seq in dna(200)) {
        let p = PackedSeq::from_bytes(&seq).unwrap();
        prop_assert_eq!(p.revcomp().revcomp().to_bytes(), seq);
    }

    #[test]
    fn revcomp_bytes_involution(seq in dna(200)) {
        prop_assert_eq!(revcomp_bytes(&revcomp_bytes(&seq)), seq);
    }

    #[test]
    fn kmer_roundtrip(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let truncated = &seq[..seq.len().min(32)];
        let k = Kmer::from_bytes(truncated).unwrap();
        prop_assert_eq!(k.to_bytes(), truncated.to_vec());
    }

    #[test]
    fn kmer_revcomp_matches_string(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let truncated = &seq[..seq.len().min(32)];
        let k = Kmer::from_bytes(truncated).unwrap();
        prop_assert_eq!(k.revcomp().to_bytes(), revcomp_bytes(truncated));
    }

    #[test]
    fn kmer_order_is_lexicographic(a in dna(12), b in dna(12)) {
        // Compare equal-length prefixes only (order is defined per fixed k).
        let n = a.len().min(b.len());
        if n == 0 { return Ok(()); }
        let (a, b) = (&a[..n], &b[..n]);
        let ka = Kmer::from_bytes(a).unwrap();
        let kb = Kmer::from_bytes(b).unwrap();
        prop_assert_eq!(ka.code().cmp(&kb.code()), a.cmp(b));
    }

    #[test]
    fn kmer_iter_matches_windows(seq in dna_with_n(200), k in 1usize..9) {
        let got: Vec<(usize, Vec<u8>)> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.to_bytes()))
            .collect();
        let expect: Vec<(usize, Vec<u8>)> = seq
            .windows(k)
            .enumerate()
            .filter(|(_, w)| w.iter().all(|&b| jem_seq::is_dna(b)))
            .map(|(p, w)| (p, w.to_vec()))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn canonical_iter_matches_naive(seq in dna_with_n(200), k in 1usize..9) {
        let fast: Vec<_> = CanonicalKmerIter::new(&seq, k).unwrap().collect();
        let naive: Vec<_> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.canonical()))
            .collect();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn canonical_multiset_strand_invariant(seq in dna(200), k in 1usize..9) {
        let rc = revcomp_bytes(&seq);
        let mut a: Vec<u64> = CanonicalKmerIter::new(&seq, k).unwrap().map(|(_, km)| km.code()).collect();
        let mut b: Vec<u64> = CanonicalKmerIter::new(&rc, k).unwrap().map(|(_, km)| km.code()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fasta_roundtrip(records in prop::collection::vec((r"[a-zA-Z0-9_.]{1,12}", dna(120)), 0..6)) {
        let recs: Vec<SeqRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (id, seq))| SeqRecord::new(format!("{id}_{i}"), seq))
            .collect();
        let mut out = Vec::new();
        {
            let mut w = FastaWriter::new(&mut out);
            w.line_width = 37; // awkward width exercises wrapping
            w.write_all_records(&recs).unwrap();
            w.flush().unwrap();
        }
        let back = FastaReader::new(std::io::Cursor::new(&out)).read_all().unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn fastq_roundtrip(
        records in prop::collection::vec(
            (r"[a-zA-Z0-9_.]{1,12}", dna(100).prop_filter("nonempty", |s| !s.is_empty())),
            0..6,
        ),
    ) {
        let recs: Vec<FastqRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (id, seq))| FastqRecord::with_uniform_quality(format!("{id}_{i}"), seq, b'F'))
            .collect();
        let mut out = Vec::new();
        {
            let mut w = FastqWriter::new(&mut out);
            for r in &recs {
                w.write_record(r).unwrap();
            }
            w.flush().unwrap();
        }
        let back = FastqReader::new(std::io::Cursor::new(&out)).read_all().unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn packed_kmer_at_matches_slice(seq in dna(100), start in 0usize..80, k in 1usize..12) {
        prop_assume!(start + k <= seq.len());
        let p = PackedSeq::from_bytes(&seq).unwrap();
        let km = p.kmer_at(start, k).unwrap();
        prop_assert_eq!(km.to_bytes(), seq[start..start + k].to_vec());
    }
}
