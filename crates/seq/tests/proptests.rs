//! Property-based tests for the sequence substrate.

use jem_seq::{
    alphabet::revcomp_bytes, encode_base, BlockEncoded, CanonicalKmerIter, FastaReader,
    FastaWriter, FastqReader, FastqRecord, FastqWriter, Kmer, KmerIter, PackedSeq, RunCodes,
    SeqRecord,
};
use proptest::prelude::*;

/// Strategy: byte soup — upper/lowercase DNA weighted heavily so valid
/// runs appear, plus ambiguity codes and outright junk bytes.
fn byte_soup(max: usize) -> impl Strategy<Value = Vec<u8>> {
    let mut palette = Vec::new();
    for b in [b'A', b'C', b'G', b'T'] {
        palette.extend(std::iter::repeat_n(b, 6));
    }
    palette.extend([b'a', b'c', b'g', b't']);
    palette.extend([b'N', b'n', b'R', b'-', b'@', b' ', b'Z', 0u8, 0x80, 0xFF]);
    prop::collection::vec(prop::sample::select(palette), 0..max)
}

/// Strategy: an ACGT-only sequence of length `0..max`.
fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop::sample::select(vec![b'A', b'C', b'G', b'T']), 0..max)
}

/// Strategy: DNA with occasional ambiguity codes.
fn dna_with_n(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop::sample::select(vec![b'A', b'C', b'G', b'T', b'A', b'C', b'G', b'T', b'N']),
        0..max,
    )
}

proptest! {
    #[test]
    fn packed_roundtrip(seq in dna(300)) {
        let p = PackedSeq::from_bytes(&seq).unwrap();
        prop_assert_eq!(p.to_bytes(), seq);
    }

    #[test]
    fn packed_revcomp_involution(seq in dna(200)) {
        let p = PackedSeq::from_bytes(&seq).unwrap();
        prop_assert_eq!(p.revcomp().revcomp().to_bytes(), seq);
    }

    #[test]
    fn revcomp_bytes_involution(seq in dna(200)) {
        prop_assert_eq!(revcomp_bytes(&revcomp_bytes(&seq)), seq);
    }

    #[test]
    fn kmer_roundtrip(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let truncated = &seq[..seq.len().min(32)];
        let k = Kmer::from_bytes(truncated).unwrap();
        prop_assert_eq!(k.to_bytes(), truncated.to_vec());
    }

    #[test]
    fn kmer_revcomp_matches_string(seq in dna(33).prop_filter("nonempty", |s| !s.is_empty())) {
        let truncated = &seq[..seq.len().min(32)];
        let k = Kmer::from_bytes(truncated).unwrap();
        prop_assert_eq!(k.revcomp().to_bytes(), revcomp_bytes(truncated));
    }

    #[test]
    fn kmer_order_is_lexicographic(a in dna(12), b in dna(12)) {
        // Compare equal-length prefixes only (order is defined per fixed k).
        let n = a.len().min(b.len());
        if n == 0 { return Ok(()); }
        let (a, b) = (&a[..n], &b[..n]);
        let ka = Kmer::from_bytes(a).unwrap();
        let kb = Kmer::from_bytes(b).unwrap();
        prop_assert_eq!(ka.code().cmp(&kb.code()), a.cmp(b));
    }

    #[test]
    fn kmer_iter_matches_windows(seq in dna_with_n(200), k in 1usize..9) {
        let got: Vec<(usize, Vec<u8>)> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.to_bytes()))
            .collect();
        let expect: Vec<(usize, Vec<u8>)> = seq
            .windows(k)
            .enumerate()
            .filter(|(_, w)| w.iter().all(|&b| jem_seq::is_dna(b)))
            .map(|(p, w)| (p, w.to_vec()))
            .collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn canonical_iter_matches_naive(seq in dna_with_n(200), k in 1usize..9) {
        let fast: Vec<_> = CanonicalKmerIter::new(&seq, k).unwrap().collect();
        let naive: Vec<_> = KmerIter::new(&seq, k)
            .unwrap()
            .map(|(p, km)| (p, km.canonical()))
            .collect();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn canonical_multiset_strand_invariant(seq in dna(200), k in 1usize..9) {
        let rc = revcomp_bytes(&seq);
        let mut a: Vec<u64> = CanonicalKmerIter::new(&seq, k).unwrap().map(|(_, km)| km.code()).collect();
        let mut b: Vec<u64> = CanonicalKmerIter::new(&rc, k).unwrap().map(|(_, km)| km.code()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fasta_roundtrip(records in prop::collection::vec((r"[a-zA-Z0-9_.]{1,12}", dna(120)), 0..6)) {
        let recs: Vec<SeqRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (id, seq))| SeqRecord::new(format!("{id}_{i}"), seq))
            .collect();
        let mut out = Vec::new();
        {
            let mut w = FastaWriter::new(&mut out);
            w.line_width = 37; // awkward width exercises wrapping
            w.write_all_records(&recs).unwrap();
            w.flush().unwrap();
        }
        let back = FastaReader::new(std::io::Cursor::new(&out)).read_all().unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn fastq_roundtrip(
        records in prop::collection::vec(
            (r"[a-zA-Z0-9_.]{1,12}", dna(100).prop_filter("nonempty", |s| !s.is_empty())),
            0..6,
        ),
    ) {
        let recs: Vec<FastqRecord> = records
            .into_iter()
            .enumerate()
            .map(|(i, (id, seq))| FastqRecord::with_uniform_quality(format!("{id}_{i}"), seq, b'F'))
            .collect();
        let mut out = Vec::new();
        {
            let mut w = FastqWriter::new(&mut out);
            for r in &recs {
                w.write_record(r).unwrap();
            }
            w.flush().unwrap();
        }
        let back = FastqReader::new(std::io::Cursor::new(&out)).read_all().unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn packed_kmer_at_matches_slice(seq in dna(100), start in 0usize..80, k in 1usize..12) {
        prop_assume!(start + k <= seq.len());
        let p = PackedSeq::from_bytes(&seq).unwrap();
        let km = p.kmer_at(start, k).unwrap();
        prop_assert_eq!(km.to_bytes(), seq[start..start + k].to_vec());
    }

    /// The block encoder's per-position codes must match the scalar LUT,
    /// and its runs must be exactly the maximal valid stretches.
    #[test]
    fn block_encoder_matches_scalar(seq in byte_soup(300)) {
        let mut enc = BlockEncoded::default();
        enc.encode_into(&seq);
        prop_assert_eq!(enc.len(), seq.len());

        // Per-position code agreement on valid bases.
        for (i, &b) in seq.iter().enumerate() {
            if let Some(c) = encode_base(b) {
                prop_assert_eq!(enc.code_at(i), c, "position {}", i);
            }
        }

        // Runs are exactly the maximal valid stretches: disjoint, in
        // order, fully valid inside, invalid (or edge) on both flanks.
        let valid: Vec<bool> = seq.iter().map(|&b| encode_base(b).is_some()).collect();
        let mut expected = Vec::new();
        let mut i = 0usize;
        while i < seq.len() {
            if valid[i] {
                let start = i;
                while i < seq.len() && valid[i] { i += 1; }
                expected.push((start as u32, (i - start) as u32));
            } else {
                i += 1;
            }
        }
        let got: Vec<(u32, u32)> = enc.runs().iter().map(|r| (r.start, r.len)).collect();
        prop_assert_eq!(got, expected);
    }

    /// Streaming codes out of a packed run must reproduce `code_at` for
    /// every position, across arbitrary word alignments.
    #[test]
    fn run_codes_stream_matches_code_at(seq in byte_soup(300)) {
        let mut enc = BlockEncoded::default();
        enc.encode_into(&seq);
        for &run in enc.runs() {
            let mut stream = RunCodes::new(&enc, run);
            for i in run.start as usize..run.end() {
                prop_assert_eq!(stream.next_code(), u64::from(enc.code_at(i)), "pos {}", i);
            }
        }
    }

    /// Scratch reuse: re-encoding a different sequence into the same
    /// buffers must leave no stale state behind.
    #[test]
    fn block_encoder_reuse_is_clean(a in byte_soup(250), b in byte_soup(250)) {
        let mut reused = BlockEncoded::default();
        reused.encode_into(&a);
        reused.encode_into(&b);
        let mut fresh = BlockEncoded::default();
        fresh.encode_into(&b);
        prop_assert_eq!(reused.len(), fresh.len());
        let ra: Vec<(u32, u32)> = reused.runs().iter().map(|r| (r.start, r.len)).collect();
        let rb: Vec<(u32, u32)> = fresh.runs().iter().map(|r| (r.start, r.len)).collect();
        prop_assert_eq!(ra, rb);
        for r in fresh.runs() {
            for i in r.start as usize..r.end() {
                prop_assert_eq!(reused.code_at(i), fresh.code_at(i));
            }
        }
    }
}
