//! Per-client admission control: token-bucket quotas keyed by the client
//! identity carried in a [`Request::Tagged`] envelope.
//!
//! [`Request::Tagged`]: crate::Request::Tagged
//!
//! The serving tier already has two overload defenses — the bounded queue
//! (`Busy`) and per-request deadlines (`Expired`) — but both are *global*:
//! one greedy client fills the queue and every client sees `Busy`.
//! Admission control makes the rejection *per client*: each identity owns
//! a token bucket refilled at a configured rate, a mapping request costs
//! one token per segment, and a client whose bucket is dry is answered
//! [`Throttled`] with a computed `retry_after` hint while everyone else's
//! requests sail through untouched.
//!
//! [`Throttled`]: crate::Response::Throttled
//!
//! Design constraints, in the spirit of the rest of the crate:
//!
//! * **Bounded memory.** Client ids come off the wire, so the bucket map
//!   is capped; once `max_clients` distinct ids are tracked, unseen ids
//!   share the anonymous bucket (key `""`) rather than growing the map.
//!   An attacker rotating ids gains nothing: the rotations pool into one
//!   bucket and throttle collectively.
//! * **No background threads.** Buckets refill lazily on access from the
//!   elapsed wall time — the same trick as the lazy hit counters.
//! * **Quotas off by default.** A rate of `0.0` disables admission checks
//!   entirely, so existing deployments (and the existing test suites)
//!   never see a `Throttled` unless they opt in.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-client quota knobs. `rate == 0.0` means admission control is off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaConfig {
    /// Tokens refilled per second, per client. One mapped segment costs
    /// one token (a request costs at least one).
    pub rate: f64,
    /// Bucket capacity — the burst a client may spend instantly. `0.0`
    /// defaults to four seconds' worth of refill (at least one token).
    pub burst: f64,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate: 0.0,
            burst: 0.0,
        }
    }
}

impl QuotaConfig {
    /// Is admission control enabled at all?
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// The effective bucket capacity.
    pub fn effective_burst(&self) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            (self.rate * 4.0).max(1.0)
        }
    }

    /// Reject non-finite or negative knobs before they reach a bucket.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("rate", self.rate), ("burst", self.burst)] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("quota {name} must be finite and >= 0, got {v}"));
            }
        }
        Ok(())
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A bounded map of lazily-refilled token buckets, one per client id.
/// Shared by the server and router front-ends.
pub struct AdmissionControl {
    quota: QuotaConfig,
    max_clients: usize,
    buckets: Mutex<HashMap<String, Bucket>>,
}

/// How many distinct client ids the bucket map tracks before further ids
/// collapse into the shared anonymous bucket.
pub const MAX_TRACKED_CLIENTS: usize = 1024;

impl AdmissionControl {
    /// Build a controller for `quota`. With `quota.rate == 0.0` every
    /// admission check is a no-op `Ok`.
    pub fn new(quota: QuotaConfig) -> Self {
        AdmissionControl {
            quota,
            max_clients: MAX_TRACKED_CLIENTS,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    #[cfg(test)]
    fn with_max_clients(quota: QuotaConfig, max_clients: usize) -> Self {
        AdmissionControl {
            quota,
            max_clients,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Is admission control enabled?
    pub fn enabled(&self) -> bool {
        self.quota.enabled()
    }

    /// Charge `cost` tokens to `client` (the anonymous id `""` is a
    /// client like any other). `Ok` admits the request; `Err(retry_after)`
    /// rejects it with the wait until the bucket could afford it.
    pub fn try_admit(&self, client: &str, cost: u64) -> Result<(), Duration> {
        if !self.quota.enabled() {
            return Ok(());
        }
        let rate = self.quota.rate;
        let burst = self.quota.effective_burst();
        // A request larger than the whole bucket clamps to it: it drains
        // a full bucket rather than starving forever behind a rejection
        // whose retry hint (time until the bucket could afford it) would
        // never arrive.
        let cost = (cost.max(1) as f64).min(burst);
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("admission lock");
        // Bound the map: a brand-new id past the cap shares the anonymous
        // bucket instead of allocating another entry.
        let key: &str = if buckets.len() >= self.max_clients && !buckets.contains_key(client) {
            ""
        } else {
            client
        };
        let bucket = buckets.entry(key.to_string()).or_insert(Bucket {
            tokens: burst,
            last: now,
        });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate).min(burst);
        bucket.last = now;
        if bucket.tokens >= cost {
            bucket.tokens -= cost;
            Ok(())
        } else {
            // Never charge a rejected request; just report the deficit
            // (positive, since the clamped cost is affordable at burst).
            let deficit = (cost - bucket.tokens).max(0.0);
            let secs = deficit / rate;
            // Round up to a whole millisecond so an honest client that
            // sleeps exactly `retry_after` finds the tokens present.
            Err(Duration::from_millis((secs * 1000.0).ceil() as u64))
        }
    }

    /// Return `cost` tokens to `client`'s bucket — the undo of a
    /// [`AdmissionControl::try_admit`] whose request was subsequently
    /// rejected by a later gate (a full queue lane, shutdown). Uses the
    /// same cost clamp and bounded-map key resolution as the charge, so
    /// the refund lands in exactly the bucket that paid; capped at the
    /// burst so a refund can never mint tokens.
    pub fn refund(&self, client: &str, cost: u64) {
        if !self.quota.enabled() {
            return;
        }
        let burst = self.quota.effective_burst();
        let cost = (cost.max(1) as f64).min(burst);
        let mut buckets = self.buckets.lock().expect("admission lock");
        let key: &str = if buckets.contains_key(client) {
            client
        } else {
            ""
        };
        if let Some(bucket) = buckets.get_mut(key) {
            bucket.tokens = (bucket.tokens + cost).min(burst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    fn quota(rate: f64, burst: f64) -> QuotaConfig {
        QuotaConfig { rate, burst }
    }

    #[test]
    fn disabled_quota_admits_everything() {
        let ac = AdmissionControl::new(QuotaConfig::default());
        assert!(!ac.enabled());
        for _ in 0..10_000 {
            assert!(ac.try_admit("anyone", 1_000_000).is_ok());
        }
    }

    #[test]
    fn burst_then_throttle_with_sane_retry_after() {
        let ac = AdmissionControl::new(quota(10.0, 5.0));
        for _ in 0..5 {
            assert!(ac.try_admit("alice", 1).is_ok());
        }
        let wait = ac.try_admit("alice", 1).unwrap_err();
        // One token at 10/s is 100ms away; allow rounding slack.
        assert!(wait >= Duration::from_millis(1), "wait = {wait:?}");
        assert!(wait <= Duration::from_millis(150), "wait = {wait:?}");
    }

    #[test]
    fn clients_have_independent_buckets() {
        let ac = AdmissionControl::new(quota(1.0, 2.0));
        assert!(ac.try_admit("greedy", 2).is_ok());
        assert!(ac.try_admit("greedy", 1).is_err());
        // A different client is unaffected by greedy's empty bucket.
        assert!(ac.try_admit("polite", 1).is_ok());
    }

    #[test]
    fn bucket_refills_over_time() {
        let ac = AdmissionControl::new(quota(1000.0, 2.0));
        assert!(ac.try_admit("alice", 2).is_ok());
        assert!(ac.try_admit("alice", 1).is_err());
        sleep(Duration::from_millis(20));
        assert!(ac.try_admit("alice", 1).is_ok());
    }

    #[test]
    fn refill_caps_at_burst() {
        // 1000/s refills to the 3-token burst within the 50ms sleep, but
        // cannot refill 3 more tokens in the microseconds between the two
        // back-to-back calls below.
        let ac = AdmissionControl::new(quota(1000.0, 3.0));
        assert!(ac.try_admit("alice", 1).is_ok());
        sleep(Duration::from_millis(50));
        // However long the idle, the bucket holds at most `burst` tokens.
        assert!(ac.try_admit("alice", 3).is_ok());
        assert!(ac.try_admit("alice", 3).is_err());
    }

    #[test]
    fn oversized_cost_drains_the_bucket_then_reports_a_real_wait() {
        let ac = AdmissionControl::new(quota(10.0, 5.0));
        // A request costing more than the whole bucket clamps to the
        // burst: a full bucket affords it (and is drained to zero) rather
        // than rejecting it forever.
        assert!(ac.try_admit("alice", 1_000).is_ok());
        // With the bucket empty the retry hint is the time to a *full*
        // bucket — achievable, never zero.
        let wait = ac.try_admit("alice", 1_000).unwrap_err();
        assert!(wait > Duration::ZERO, "wait = {wait:?}");
        assert!(wait <= Duration::from_millis(600), "wait = {wait:?}");
    }

    #[test]
    fn id_rotation_past_the_cap_shares_one_bucket() {
        let ac = AdmissionControl::with_max_clients(quota(1.0, 1.0), 2);
        assert!(ac.try_admit("a", 1).is_ok());
        assert!(ac.try_admit("b", 1).is_ok());
        // The map is full: ids c and d resolve to the anonymous bucket,
        // which only affords one token between them.
        assert!(ac.try_admit("c", 1).is_ok());
        assert!(ac.try_admit("d", 1).is_err());
    }

    #[test]
    fn refund_restores_charged_tokens_without_minting() {
        let ac = AdmissionControl::new(quota(1.0, 2.0));
        assert!(ac.try_admit("alice", 2).is_ok());
        assert!(ac.try_admit("alice", 1).is_err(), "bucket drained");
        // The queue rejected the admitted request: the refund makes the
        // charge-then-reject sequence a no-op.
        ac.refund("alice", 2);
        assert!(ac.try_admit("alice", 2).is_ok());
        // Refunding into a full bucket cannot exceed the burst.
        ac.refund("alice", 2);
        ac.refund("alice", 2);
        assert!(ac.try_admit("alice", 2).is_ok());
        assert!(ac.try_admit("alice", 1).is_err());
        // Disabled quotas make refund a no-op, like try_admit.
        let off = AdmissionControl::new(QuotaConfig::default());
        off.refund("anyone", 10);
    }

    #[test]
    fn refund_past_the_cap_lands_in_the_anonymous_bucket() {
        let ac = AdmissionControl::with_max_clients(quota(1.0, 1.0), 2);
        assert!(ac.try_admit("a", 1).is_ok());
        assert!(ac.try_admit("b", 1).is_ok());
        // "c" resolves to the anonymous bucket; its refund must too.
        assert!(ac.try_admit("c", 1).is_ok());
        assert!(ac.try_admit("d", 1).is_err());
        ac.refund("c", 1);
        assert!(ac.try_admit("d", 1).is_ok());
    }

    #[test]
    fn zero_cost_charges_one_token() {
        let ac = AdmissionControl::new(quota(1.0, 1.0));
        assert!(ac.try_admit("alice", 0).is_ok());
        assert!(ac.try_admit("alice", 0).is_err());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(quota(-1.0, 0.0).validate().is_err());
        assert!(quota(f64::NAN, 0.0).validate().is_err());
        assert!(quota(1.0, f64::INFINITY).validate().is_err());
        assert!(quota(0.0, 0.0).validate().is_ok());
        assert!(quota(100.0, 50.0).validate().is_ok());
    }

    #[test]
    fn effective_burst_defaults_scale_with_rate() {
        assert_eq!(quota(10.0, 0.0).effective_burst(), 40.0);
        assert_eq!(quota(0.1, 0.0).effective_burst(), 1.0);
        assert_eq!(quota(10.0, 7.0).effective_burst(), 7.0);
    }
}
