//! The mapping server: accept loop, bounded queue, batching worker pool,
//! graceful shutdown.
//!
//! Threading model (DESIGN.md §10):
//!
//! * **accept thread** — owns the listener. Reads one request frame per
//!   connection, answers `Ping`/`Info` inline, enqueues `Map` jobs on the
//!   bounded queue (replying [`Response::Busy`] when it is full — the
//!   server never buffers unboundedly), and on `Shutdown` stops accepting
//!   and closes the queue.
//! * **worker threads** (fixed pool) — each owns one reused
//!   [`LazyHitCounter`] and a running query-id; workers pop up to `batch`
//!   queued requests per index pass, map every segment of the pass with
//!   the one counter (no per-request counter allocation or reset — the
//!   paper's lazy strategy is what makes the reuse free), and write each
//!   response back on its own connection.
//! * **shutdown** — [`ServerHandle::shutdown`] (or a remote
//!   [`crate::Request::Shutdown`]) flips the flag, wakes the accept loop,
//!   closes the queue; workers drain everything already queued, so every
//!   admitted request is answered, then exit. The final metrics snapshot
//!   is taken after the join, so it reflects the complete run.
//!
//! All instrumentation flows through one [`MetricsRecorder`] owned by the
//! server (not the process-global recorder): a resident service snapshots
//! its own lifetime without racing other pipelines in the process, and
//! tests can run many servers concurrently.

use crate::protocol::{read_frame, write_frame, Request, Response, ServerInfo};
use crate::queue::{BoundedQueue, PushError};
use crate::shard::ShardedIndex;
use crate::ServeError;
use jem_core::QuerySegment;
use jem_obs::{MetricsRecorder, Recorder, Snapshot, Span};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`start`]ed server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads mapping queued requests (≥ 1).
    pub workers: usize,
    /// Bounded request-queue capacity; a full queue answers `Busy` (≥ 1).
    pub queue_cap: usize,
    /// Max queued requests a worker folds into one index pass (≥ 1).
    pub batch: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Chaos knob (same spirit as `jem-psim`'s straggle fault): every
    /// worker sleeps this long before each index pass. `0` = off. Used by
    /// the saturation and drain tests to hold the queue full
    /// deterministically.
    pub straggle_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_cap: 64,
            batch: 16,
            io_timeout: Duration::from_secs(10),
            straggle_ms: 0,
        }
    }
}

impl ServerConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("workers", self.workers),
            ("queue_cap", self.queue_cap),
            ("batch", self.batch),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be at least 1")));
            }
        }
        Ok(())
    }
}

/// One admitted `Map` request: the segments plus the connection to answer.
struct Job {
    conn: TcpStream,
    segments: Vec<QuerySegment>,
    enqueued: Instant,
}

/// Handle to a running server: its address, its metrics, and the two ways
/// a run ends ([`ServerHandle::shutdown`] locally, [`ServerHandle::join`]
/// after a remote shutdown request).
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    recorder: Arc<MetricsRecorder>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metrics recorder (live; snapshot any time).
    pub fn recorder(&self) -> &MetricsRecorder {
        &self.recorder
    }

    /// Trigger a graceful shutdown and wait for it to finish: stop
    /// accepting, drain every queued request, join all threads. Returns
    /// the final metrics snapshot.
    pub fn shutdown(mut self) -> Snapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.join_inner()
    }

    /// Wait for the server to end on its own (a remote
    /// [`Request::Shutdown`](crate::Request::Shutdown)), then return the
    /// final metrics snapshot.
    pub fn join(mut self) -> Snapshot {
        self.join_inner()
    }

    fn join_inner(&mut self) -> Snapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.recorder.snapshot()
    }
}

/// Bind `addr` and start serving `index`. Returns once the listener is
/// live; mapping happens on background threads until shutdown.
pub fn start(
    index: ShardedIndex,
    addr: &str,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    config.validate()?;
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let index = Arc::new(index);
    let recorder = Arc::new(MetricsRecorder::new());
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(config.queue_cap));
    let shutdown = Arc::new(AtomicBool::new(false));

    // Startup gauges: shard balance of the resident table.
    for count in index.shard_entry_counts() {
        recorder.observe("serve.shard_entries", count as u64);
    }
    recorder.add("serve.started", 1);

    let info = ServerInfo {
        config: *index.mapper().config(),
        scheme: index.mapper().scheme(),
        subject_names: index.mapper().subject_names().to_vec(),
        shards: index.n_shards(),
        batch: config.batch,
    };

    let mut threads = Vec::with_capacity(config.workers);
    for _ in 0..config.workers {
        let index = Arc::clone(&index);
        let queue = Arc::clone(&queue);
        let recorder = Arc::clone(&recorder);
        let batch = config.batch;
        let straggle_ms = config.straggle_ms;
        threads.push(std::thread::spawn(move || {
            worker_loop(&index, &queue, &recorder, batch, straggle_ms)
        }));
    }

    let accept = {
        let queue = Arc::clone(&queue);
        let recorder = Arc::clone(&recorder);
        let shutdown = Arc::clone(&shutdown);
        let io_timeout = config.io_timeout;
        std::thread::spawn(move || {
            accept_loop(&listener, &info, &queue, &recorder, &shutdown, io_timeout);
            // Whatever ended the loop (local flag or remote request):
            // refuse new work, let workers drain and exit.
            shutdown.store(true, Ordering::SeqCst);
            queue.close();
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        workers: threads,
        recorder,
    })
}

/// Reply on `conn`, tolerating a peer that already hung up.
fn respond(conn: &mut TcpStream, recorder: &MetricsRecorder, resp: &Response) {
    if write_frame(conn, &resp.encode()).is_err() {
        recorder.add("serve.write_errors", 1);
    }
}

fn accept_loop(
    listener: &TcpListener,
    info: &ServerInfo,
    queue: &BoundedQueue<Job>,
    recorder: &MetricsRecorder,
    shutdown: &AtomicBool,
    io_timeout: Duration,
) {
    loop {
        let mut conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        recorder.add("serve.connections", 1);
        if conn.set_read_timeout(Some(io_timeout)).is_err()
            || conn.set_write_timeout(Some(io_timeout)).is_err()
        {
            continue;
        }
        match read_frame(&mut conn).and_then(|body| Request::decode(&body)) {
            Err(e) => {
                recorder.add("serve.protocol_errors", 1);
                respond(&mut conn, recorder, &Response::Error(e.to_string()));
            }
            Ok(Request::Ping) => respond(&mut conn, recorder, &Response::Pong),
            Ok(Request::Info) => respond(&mut conn, recorder, &Response::Info(info.clone())),
            Ok(Request::Shutdown) => {
                recorder.add("serve.shutdown_requests", 1);
                respond(&mut conn, recorder, &Response::ShuttingDown);
                return;
            }
            Ok(Request::Map { segments }) => {
                let job = Job {
                    conn,
                    segments,
                    enqueued: Instant::now(),
                };
                match queue.try_push(job) {
                    Ok(depth) => recorder.observe("serve.queue_depth", depth as u64),
                    Err((mut job, PushError::Full)) => {
                        recorder.add("serve.busy", 1);
                        respond(&mut job.conn, recorder, &Response::Busy);
                    }
                    Err((mut job, PushError::Closed)) => {
                        respond(&mut job.conn, recorder, &Response::ShuttingDown);
                    }
                }
            }
        }
    }
}

fn worker_loop(
    index: &ShardedIndex,
    queue: &BoundedQueue<Job>,
    recorder: &MetricsRecorder,
    batch: usize,
    straggle_ms: u64,
) {
    // One counter for the whole worker lifetime: the lazy strategy makes
    // cross-batch reuse free as long as query ids keep increasing.
    let mut counter = index.new_counter();
    let mut qid_base = 0u64;
    loop {
        let jobs = queue.pop_batch(batch);
        if jobs.is_empty() {
            return; // queue closed and drained
        }
        if straggle_ms > 0 {
            std::thread::sleep(Duration::from_millis(straggle_ms));
        }
        let _pass = Span::enter(recorder as &dyn Recorder, "serve/batch");
        let n_segments: usize = jobs.iter().map(|j| j.segments.len()).sum();
        recorder.observe("serve.batch_jobs", jobs.len() as u64);
        recorder.observe("serve.batch_segments", n_segments as u64);
        for mut job in jobs {
            let mut mappings = index.map_batch(&job.segments, qid_base, &mut counter);
            qid_base += job.segments.len() as u64;
            // The documented total order on `Mapping` — same normalization
            // as the offline parallel driver.
            mappings.sort_unstable();
            recorder.add("serve.requests", 1);
            recorder.add("serve.segments", job.segments.len() as u64);
            recorder.add("serve.mapped", mappings.len() as u64);
            respond(&mut job.conn, recorder, &Response::Mappings(mappings));
            let latency = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
            recorder.span_ns("serve/request", latency);
        }
        let stats = counter.stats.take();
        recorder.add("serve.collisions_probed", stats.probed);
        recorder.add("serve.lazy_resets", stats.lazy_resets);
        recorder.add("serve.resets_skipped", stats.resets_skipped);
        recorder.add("serve.ties", stats.ties);
    }
}
